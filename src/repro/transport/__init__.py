"""Transport-level substrates.

The main simulator's channels are FIFO by construction; this package shows
how the paper's channel properties are *implemented* when the underlying
network is not so kind: "the former [FIFO] requires a (1-bit) sequence
number on each message and an acknowledgement protocol" (Section 3).
"""

from repro.transport.stopwait import (
    DataFrame,
    AckFrame,
    StopAndWaitSender,
    StopAndWaitReceiver,
    LossyChannel,
)

__all__ = [
    "DataFrame",
    "AckFrame",
    "StopAndWaitSender",
    "StopAndWaitReceiver",
    "LossyChannel",
]
