"""The 1-bit sequence-number / acknowledgement FIFO link of Section 3.

A sans-I/O alternating-bit protocol: the sender transmits one frame at a
time, stamped with a single bit, retransmitting until the matching ack
arrives; the receiver delivers a frame exactly when its bit matches the
expected bit, acking every frame either way.  Over a channel that may lose
and duplicate (but not corrupt) frames, this yields the paper's reliable,
non-generating, FIFO channel.

The endpoints are pure state machines — ``offer``/``on_frame`` consume
inputs and return frames to transmit — so tests can drive arbitrary loss,
duplication and delay adversarially, and :class:`LossyChannel` provides a
seeded randomised harness on top.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Any, Optional

__all__ = [
    "DataFrame",
    "AckFrame",
    "StopAndWaitSender",
    "StopAndWaitReceiver",
    "LossyChannel",
]


@dataclass(frozen=True, slots=True)
class DataFrame:
    """A payload frame carrying the alternating bit."""

    bit: int
    payload: Any

    def __post_init__(self) -> None:
        if self.bit not in (0, 1):
            raise ValueError(f"sequence bit must be 0 or 1, got {self.bit}")


@dataclass(frozen=True, slots=True)
class AckFrame:
    """Acknowledgement of the frame carrying ``bit``."""

    bit: int

    def __post_init__(self) -> None:
        if self.bit not in (0, 1):
            raise ValueError(f"ack bit must be 0 or 1, got {self.bit}")


class StopAndWaitSender:
    """Sender endpoint of the alternating-bit protocol."""

    def __init__(self) -> None:
        self._bit = 0
        self._outstanding: Optional[DataFrame] = None
        self._queue: deque[Any] = deque()

    @property
    def idle(self) -> bool:
        """True when nothing is in flight and nothing is queued."""
        return self._outstanding is None and not self._queue

    @property
    def in_flight(self) -> Optional[DataFrame]:
        return self._outstanding

    def offer(self, payload: Any) -> Optional[DataFrame]:
        """Enqueue a payload; returns a frame to transmit if the link is free."""
        self._queue.append(payload)
        return self._pump()

    def on_ack(self, ack: AckFrame) -> Optional[DataFrame]:
        """Process an ack; returns the next frame to transmit, if any.

        A stale ack (wrong bit, or nothing outstanding) is ignored — that is
        what makes duplication harmless.
        """
        if self._outstanding is None or ack.bit != self._outstanding.bit:
            return None
        self._outstanding = None
        self._bit ^= 1
        return self._pump()

    def on_timeout(self) -> Optional[DataFrame]:
        """Retransmit the outstanding frame (None when idle)."""
        return self._outstanding

    def _pump(self) -> Optional[DataFrame]:
        if self._outstanding is not None or not self._queue:
            return None
        self._outstanding = DataFrame(self._bit, self._queue.popleft())
        return self._outstanding


class StopAndWaitReceiver:
    """Receiver endpoint: delivers in order, acks everything."""

    def __init__(self) -> None:
        self._expected = 0
        self.delivered: list[Any] = []

    def on_frame(self, frame: DataFrame) -> AckFrame:
        """Process a data frame; returns the ack to transmit.

        A duplicate (wrong-bit) frame is re-acked but not re-delivered —
        the non-generating property.
        """
        if frame.bit == self._expected:
            self.delivered.append(frame.payload)
            self._expected ^= 1
        return AckFrame(frame.bit)


class LossyChannel:
    """Randomised harness: run the protocol over a lossy, duplicating link.

    Each direction independently loses frames with probability ``loss`` and
    duplicates them with probability ``duplicate``.  :meth:`run` pushes a
    payload sequence through and returns what the receiver delivered; the
    alternating-bit protocol guarantees it equals the input exactly.
    """

    def __init__(
        self,
        loss: float = 0.2,
        duplicate: float = 0.1,
        seed: int = 0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not 0 <= loss < 1 or not 0 <= duplicate < 1:
            raise ValueError("loss and duplicate must be probabilities < 1")
        self.loss = loss
        self.duplicate = duplicate
        # An injected generator lets a harness share one seeded stream
        # across several channels; otherwise each channel derives its own
        # from the explicit seed.
        self.rng = rng if rng is not None else random.Random(seed)

    def _transmit(self, frame: Any) -> list[Any]:
        """Apply loss/duplication; returns the copies that arrive."""
        if self.rng.random() < self.loss:
            return []
        copies = [frame]
        while self.rng.random() < self.duplicate:
            copies.append(frame)
        return copies

    def run(self, payloads: list[Any], max_steps: int = 100_000) -> list[Any]:
        """Drive ``payloads`` across the link until all are delivered."""
        sender = StopAndWaitSender()
        receiver = StopAndWaitReceiver()
        to_receiver: deque[DataFrame] = deque()
        to_sender: deque[AckFrame] = deque()

        def transmit_data(frame: Optional[DataFrame]) -> None:
            if frame is not None:
                to_receiver.extend(self._transmit(frame))

        for payload in payloads:
            transmit_data(sender.offer(payload))

        steps = 0
        while not sender.idle:
            steps += 1
            if steps > max_steps:
                raise RuntimeError("stop-and-wait did not converge")
            if to_receiver:
                ack = receiver.on_frame(to_receiver.popleft())
                to_sender.extend(self._transmit(ack))
            elif to_sender:
                transmit_data(sender.on_ack(to_sender.popleft()))
            else:
                transmit_data(sender.on_timeout())
        return list(receiver.delivered)
