"""Oracle detector: perfect suspicion, a fixed delay after a real crash.

This detector satisfies F1's liveness clause exactly ("occurs in finite
time after a real crash") and never suspects a live process.  It stands
outside the asynchronous model — it reads simulator ground truth via the
network's crash-observer hook — which is legitimate for a detector: the
paper explicitly does not model the mechanism, only its interface.

Benchmarks use it because it injects *zero* messages, so protocol message
counts line up with Section 7.2's accounting.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.detectors.base import FailureDetector, Suspectable
from repro.ids import ProcessId

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.network import Network

__all__ = ["OracleDetector"]


class OracleDetector(FailureDetector):
    """Suspect every crashed group member after ``delay`` time units.

    Each owner gets its own instance.  When any process crashes (or quits),
    the owner will suspect it ``delay`` later — provided the victim is then
    relevant to the owner (in its view or being awaited) and the owner is
    itself still operational.
    """

    def __init__(self, network: "Network", delay: float = 5.0) -> None:
        super().__init__()
        if delay <= 0:
            raise ValueError("oracle delay must be positive")
        self.network = network
        self.delay = delay
        self._started = False
        self._watched: set[ProcessId] = set()

    def attach(self, owner: Suspectable) -> None:
        super().attach(owner)
        self.network.add_crash_observer(self._on_real_crash)

    def start(self) -> None:
        self._require_attached()
        self._started = True
        # Processes that crashed before we started still count.
        for pid in self.network.trace.quit_or_crashed():
            self._on_real_crash(pid)

    def stop(self) -> None:
        self._started = False

    def watch(self, target: ProcessId, reason: str = "") -> None:
        self._watched.add(target)
        # If the target is already down, the pending suspicion timer set by
        # _on_real_crash will cover it; nothing extra needed.

    def unwatch(self, target: ProcessId) -> None:
        self._watched.discard(target)

    def _on_real_crash(self, victim: ProcessId) -> None:
        owner = self.owner
        if owner is None or victim == owner.pid:
            return
        self.network.scheduler.after(self.delay, lambda: self._maybe_suspect(victim))

    def _maybe_suspect(self, victim: ProcessId) -> None:
        owner = self.owner
        if owner is None or not self._started:
            return
        own_process = self.network.get_process(owner.pid)
        if own_process is None or own_process.crashed:
            return
        relevant = victim in self._watched or owner.is_current_member(victim)
        if relevant:
            self._suspect(victim)
