"""SWIM-style randomized probing with Lifeguard local-health timeouts.

The heartbeat detector fans out to every member each round — O(n) messages
per process per round, quadratic group-wide, which dominates simulation
cost long before the GMP itself is stressed.  :class:`SwimDetector`
implements the SWIM failure-detector component (Das, Gupta & Motivala,
DSN 2002) over the same simulated network:

* **random k-probe** — each round the detector probes one member chosen by
  round-robin over a randomly shuffled permutation of its view (bounded
  staleness: every member is probed within one full traversal);
* **indirect probe relay** — a direct-probe timeout triggers a
  ``probe-req`` through ``indirect_probes`` helpers, so one slow link
  cannot by itself produce a verdict;
* **suspicion before verdict** — a fully failed probe round only *suspects*
  the target; the verdict (the owner's ``faulty_p(q)`` input) fires after
  ``suspicion_timeout`` with no life signal, leaving time for refutation;
* **piggybacked dissemination** — suspect/alive/faulty updates ride on
  probe traffic (bounded retransmit budgets), never on dedicated fan-outs.

:class:`LifeguardDetector` layers Lifeguard (Dadgar, Phanishayee & Currey,
arXiv:1707.00788): a **local-health multiplier** (LHM) raised by missed
acks and by hearing oneself suspected, which stretches this detector's
probe and suspicion timeouts while it has evidence that *it* — not its
peers — is the slow party.  That is exactly the false-positive trade the
QoS matrix measures (``repro bench --detectors``, docs/DETECTORS.md).

Simplifications vs the published protocols, on purpose: updates carry no
incarnation numbers (the GMP's join protocol owns incarnations here —
refutation is evidence-based: *any* message from a suspect clears the
suspicion), and the probe rate does not scale with LHM (only timeouts do).
All randomness flows through one injected :class:`random.Random`, so runs
are deterministic per seed; detector traffic is sent with
``category="detector"`` so benchmarks can separate it from the protocol's.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.detectors.base import NetworkDetector
from repro.ids import ProcessId

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.network import Network

__all__ = ["Probe", "ProbeAck", "ProbeReq", "SwimDetector", "LifeguardDetector"]

#: piggybacked update kinds: (kind, target) tuples.
SUSPECT = "suspect"
ALIVE = "alive"
FAULTY = "faulty"

Update = tuple[str, ProcessId]


@dataclass(frozen=True, slots=True)
class Probe:
    """One liveness probe.  ``origin`` is the requester on whose behalf a
    helper relays (``None`` for a direct probe)."""

    nonce: int
    origin: Optional[ProcessId] = None
    updates: tuple[Update, ...] = field(default=())


@dataclass(frozen=True, slots=True)
class ProbeAck:
    """Reply attesting ``target``'s liveness for ``origin``'s probe ``nonce``.

    Routed back the way the probe came: directly, or through the relay that
    forwarded the probe (which forwards the ack unchanged to ``origin``).
    """

    nonce: int
    origin: ProcessId
    target: ProcessId
    updates: tuple[Update, ...] = field(default=())


@dataclass(frozen=True, slots=True)
class ProbeReq:
    """Ask a helper to probe ``target`` on the sender's behalf."""

    nonce: int
    target: ProcessId
    updates: tuple[Update, ...] = field(default=())


class SwimDetector(NetworkDetector):
    """Randomized k-probe + indirect relay + piggybacked dissemination."""

    def __init__(
        self,
        network: "Network",
        period: float = 2.0,
        probe_timeout: float = 5.0,
        indirect_timeout: Optional[float] = None,
        suspicion_timeout: float = 8.0,
        indirect_probes: int = 3,
        piggyback: int = 6,
        gossip_budget: int = 8,
        rng: Optional[random.Random] = None,
        seed: int = 0,
    ) -> None:
        super().__init__(network)
        if period <= 0 or probe_timeout <= 0 or suspicion_timeout <= 0:
            raise ValueError("period and timeouts must be positive")
        if indirect_probes < 0:
            raise ValueError("indirect_probes must be non-negative")
        self.period = period
        self.probe_timeout = probe_timeout
        self.indirect_timeout = (
            indirect_timeout if indirect_timeout is not None else probe_timeout
        )
        self.suspicion_timeout = suspicion_timeout
        self.indirect_probes = indirect_probes
        self.piggyback = piggyback
        self.gossip_budget = gossip_budget
        #: all randomness (probe order, helper choice) flows through here.
        self.rng = rng if rng is not None else random.Random(seed)
        self._nonce = 0
        #: in-flight probes I originated: nonce -> target.
        self._pending: dict[int, ProcessId] = {}
        #: relays I am helping with: (origin, nonce) -> target.
        self._relays: dict[tuple[ProcessId, int], ProcessId] = {}
        #: active (unconfirmed) suspicions: target -> verdict deadline.
        self._suspicion_deadline: dict[ProcessId, float] = {}
        #: piggyback queue: (kind, target) -> remaining transmissions.
        self._gossip: dict[Update, int] = {}
        #: shuffled probe order, consumed from the end (round-robin SWIM).
        self._order: list[ProcessId] = []
        self._last_heard: dict[ProcessId, float] = {}
        self._rounds = 0
        self._round_msgs = 0
        self._msgs_sent = 0

    # ------------------------------------------------------------- lifecycle

    def start(self) -> None:
        self._require_attached()
        self._running = True
        now = self.network.scheduler.now
        for member in self.owner.current_members():
            self._last_heard.setdefault(member, now)
        self._tick()

    def stop(self) -> None:
        self._running = False

    # -------------------------------------------------------- health hooks

    def _timeout_scale(self) -> float:
        """Multiplier on probe/suspicion timeouts (Lifeguard overrides)."""
        return 1.0

    def _on_probe_missed(self) -> None:
        """A probe round ended with no ack at all (Lifeguard overrides)."""

    def _on_probe_acked(self) -> None:
        """A probe was answered in time (Lifeguard overrides)."""

    def _on_self_suspected(self) -> None:
        """Gossip says someone suspects *me* (Lifeguard overrides)."""

    # ----------------------------------------------------------------- ticks

    def rounds(self) -> int:
        """Completed probe rounds (for msgs/process/round accounting)."""
        return self._rounds

    def messages_sent(self) -> int:
        """Total detector messages this instance has sent."""
        return self._msgs_sent

    def _tick(self) -> None:
        if not self._running or self.owner is None:
            return
        if not self._own_process_alive():
            self._running = False
            return
        owner = self.owner
        obs = self.network.obs
        if obs is not None and self._rounds > 0:
            obs.observe_round_msgs(owner.pid, self._round_msgs)
        self._rounds += 1
        self._round_msgs = 0
        target = self._next_target()
        if target is not None:
            self._nonce += 1
            nonce = self._nonce
            self._pending[nonce] = target
            if obs is not None:
                probe_key = (owner.pid, target)
                if not obs.spans.is_open("detector.probe", probe_key):
                    obs.spans.begin(
                        "detector.probe",
                        probe_key,
                        at=self.network.scheduler.now,
                        proc=owner.pid,
                        target=target,
                    )
            self._send(target, Probe(nonce, None, self._take_updates()))
            self.network.scheduler.after(
                self.probe_timeout * self._timeout_scale(),
                lambda: self._direct_timeout(nonce),
            )
        self.network.scheduler.after(self.period, self._tick)

    def _next_target(self) -> Optional[ProcessId]:
        """Round-robin over a shuffled view permutation (classic SWIM).

        Reshuffling only when the permutation is exhausted bounds probe
        staleness: every member is probed within one full traversal.
        """
        owner = self.owner
        assert owner is not None
        me = owner.pid
        while self._order:
            candidate = self._order.pop()
            if (
                candidate != me
                and owner.is_current_member(candidate)
                and not owner.believes_faulty(candidate)
            ):
                return candidate
        members = [
            m
            for m in owner.current_members()
            if m != me and not owner.believes_faulty(m)
        ]
        if not members:
            return None
        # Prune liveness/suspicion state for departed members while we hold
        # the fresh view (the cheap, once-per-traversal moment).
        current = set(owner.current_members())
        for stale in [m for m in self._last_heard if m not in current]:
            del self._last_heard[stale]
        for stale in [m for m in self._suspicion_deadline if m not in current]:
            del self._suspicion_deadline[stale]
        for stale_key in [k for k, t in self._relays.items() if t not in current]:
            del self._relays[stale_key]
        self._order = members
        self.rng.shuffle(self._order)
        return self._order.pop()

    def _direct_timeout(self, nonce: int) -> None:
        """No direct ack in time: relay the probe through helpers."""
        if not self._running or not self._own_process_alive():
            return
        target = self._pending.get(nonce)
        if target is None:
            return  # answered (or target evidence arrived) in the meantime
        helpers = self._pick_helpers(target)
        if helpers:
            # Pop updates only once there is someone to carry them — their
            # retransmit budgets must not burn on messages never sent.
            updates = self._take_updates()
            for helper in helpers:
                self._send(helper, ProbeReq(nonce, target, updates))
        self.network.scheduler.after(
            self.indirect_timeout * self._timeout_scale(),
            lambda: self._probe_failed(nonce),
        )

    def _pick_helpers(self, target: ProcessId) -> list[ProcessId]:
        owner = self.owner
        assert owner is not None
        candidates = [
            m
            for m in owner.current_members()
            if m != owner.pid and m != target and not owner.believes_faulty(m)
        ]
        if len(candidates) <= self.indirect_probes:
            return candidates
        return self.rng.sample(candidates, self.indirect_probes)

    def _probe_failed(self, nonce: int) -> None:
        """Direct and indirect probes all unanswered: suspect the target."""
        if not self._running or not self._own_process_alive():
            return
        target = self._pending.pop(nonce, None)
        if target is None:
            return
        self._on_probe_missed()
        self._start_suspicion(target)

    # ------------------------------------------------------------ suspicion

    def _start_suspicion(self, target: ProcessId) -> None:
        owner = self.owner
        assert owner is not None
        if (
            target == owner.pid
            or owner.believes_faulty(target)
            or not owner.is_current_member(target)
            or target in self._suspicion_deadline
        ):
            return
        deadline = (
            self.network.scheduler.now
            + self.suspicion_timeout * self._timeout_scale()
        )
        self._suspicion_deadline[target] = deadline
        self._queue_update(SUSPECT, target)
        self.network.scheduler.at(
            deadline, lambda: self._suspicion_expired(target, deadline)
        )

    def _suspicion_expired(self, target: ProcessId, deadline: float) -> None:
        if not self._running or not self._own_process_alive():
            return
        if self._suspicion_deadline.get(target) != deadline:
            return  # refuted (evidence arrived) or superseded
        del self._suspicion_deadline[target]
        self._confirm_faulty(target)

    def _confirm_faulty(self, target: ProcessId) -> None:
        """Deliver the verdict and disseminate it."""
        now = self.network.scheduler.now
        self._record_suspicion(
            target, silence_start=self._last_heard.get(target, now), now=now
        )
        self._queue_update(FAULTY, target)
        self._suspect(target)

    # ------------------------------------------------------------ departures

    def forget(self, target: ProcessId) -> None:
        """Drop all operational state about a member that left the view.

        The lazy per-traversal pruning in :meth:`_next_target` would catch
        most of this eventually; churning owners (shardgroup leaf cells)
        call it eagerly so in-flight probes and queued gossip about the
        departed member die immediately.  The historical suspicion log is
        deliberately kept (see :meth:`FailureDetector.forget`).
        """
        self._last_heard.pop(target, None)
        self._suspicion_deadline.pop(target, None)
        for nonce in [n for n, t in self._pending.items() if t == target]:
            del self._pending[nonce]
        for key in [
            k for k, t in self._relays.items() if t == target or k[0] == target
        ]:
            del self._relays[key]
        for update in [u for u in self._gossip if u[1] == target]:
            del self._gossip[update]
        if target in self._order:
            self._order.remove(target)

    # --------------------------------------------------------------- gossip

    def _queue_update(self, kind: str, target: ProcessId) -> None:
        """Queue a piggybacked update with a fresh retransmit budget.

        Contradictory queued updates about the same target are dropped:
        the newest local knowledge wins (there are no incarnation numbers —
        see the module docstring).
        """
        if kind == SUSPECT and (ALIVE, target) in self._gossip:
            del self._gossip[(ALIVE, target)]
        elif kind == ALIVE and (SUSPECT, target) in self._gossip:
            del self._gossip[(SUSPECT, target)]
        elif kind == FAULTY:
            self._gossip.pop((SUSPECT, target), None)
            self._gossip.pop((ALIVE, target), None)
        self._gossip[(kind, target)] = self.gossip_budget

    def _take_updates(self) -> tuple[Update, ...]:
        """Pop up to ``piggyback`` updates for one outgoing message."""
        if not self._gossip:
            return ()
        taken: list[Update] = []
        exhausted: list[Update] = []
        for key, left in self._gossip.items():
            taken.append(key)
            if left <= 1:
                exhausted.append(key)
            else:
                self._gossip[key] = left - 1
            if len(taken) == self.piggyback:
                break
        for key in exhausted:
            del self._gossip[key]
        return tuple(taken)

    def _apply_updates(self, updates: tuple[Update, ...]) -> None:
        owner = self.owner
        if owner is None or not updates:
            return
        for kind, target in updates:
            if target == owner.pid:
                if kind == SUSPECT:
                    # Someone thinks I'm dead: defend myself on every
                    # message I send, and note the health signal.
                    self._on_self_suspected()
                    self._queue_update(ALIVE, owner.pid)
                continue
            if kind == FAULTY:
                if owner.is_current_member(target) and not owner.believes_faulty(
                    target
                ):
                    self._suspicion_deadline.pop(target, None)
                    self._confirm_faulty(target)
            elif kind == SUSPECT:
                if (SUSPECT, target) not in self._gossip and (
                    ALIVE,
                    target,
                ) not in self._gossip:
                    self._queue_update(SUSPECT, target)
                self._start_suspicion(target)
            elif kind == ALIVE:
                if target in self._suspicion_deadline:
                    del self._suspicion_deadline[target]
                    self._queue_update(ALIVE, target)

    # -------------------------------------------------------------- messages

    def on_message(self, sender: ProcessId, payload: object) -> bool:
        if not self._running:
            # A stopped detector must not keep attesting liveness, but it
            # still swallows detector traffic (matching heartbeat).
            return isinstance(payload, (Probe, ProbeAck, ProbeReq))
        if isinstance(payload, Probe):
            self._mark_alive(sender)
            self._apply_updates(payload.updates)
            if self.owner is not None and self._own_process_alive():
                origin = payload.origin if payload.origin is not None else sender
                self._send(
                    sender,
                    ProbeAck(
                        payload.nonce, origin, self.owner.pid, self._take_updates()
                    ),
                )
            return True
        if isinstance(payload, ProbeAck):
            owner = self.owner
            # Settle the probe nonce before _mark_alive: for a direct ack
            # the sender IS the target, so _mark_alive(sender) would cancel
            # the pending entry wholesale and the timely-ack health hook
            # (Lifeguard's LHM decay) would never fire.
            acked = (
                owner is not None
                and payload.origin == owner.pid
                and self._pending.pop(payload.nonce, None) is not None
            )
            self._mark_alive(sender)
            self._apply_updates(payload.updates)
            if owner is None:
                return True
            if payload.origin == owner.pid:
                # An answer to my probe (direct, or forwarded by a helper).
                if acked:
                    self._on_probe_acked()
                self._mark_alive(payload.target)
            else:
                # I relayed this probe: forward the ack to its origin, once.
                relay_key = (payload.origin, payload.nonce)
                if (
                    self._relays.pop(relay_key, None) is not None
                    and self._own_process_alive()
                    and not owner.believes_faulty(payload.origin)
                ):
                    self._send(payload.origin, payload)
            return True
        if isinstance(payload, ProbeReq):
            self._mark_alive(sender)
            self._apply_updates(payload.updates)
            owner = self.owner
            if (
                owner is not None
                and self._own_process_alive()
                and payload.target != owner.pid
                and not owner.believes_faulty(payload.target)
            ):
                self._relays[(sender, payload.nonce)] = payload.target
                self._send(
                    payload.target,
                    Probe(payload.nonce, sender, self._take_updates()),
                )
            return True
        return False

    def observed_traffic(self, sender: ProcessId) -> None:
        """Protocol hook: any protocol message from ``sender`` is evidence."""
        self._mark_alive(sender)

    def _mark_alive(self, subject: ProcessId) -> None:
        """Life evidence: refresh liveness, cancel probes, refute suspicion."""
        now = self.network.scheduler.now
        self._last_heard[subject] = now
        obs = self.network.obs
        if obs is not None and self.owner is not None:
            rtt = obs.spans.end("detector.probe", (self.owner.pid, subject), at=now)
            if rtt is not None:
                obs.observe_probe_rtt(self.owner.pid, rtt)
        pending = [n for n, t in self._pending.items() if t == subject]
        for nonce in pending:
            del self._pending[nonce]
        if subject in self._suspicion_deadline:
            # Direct evidence beats the pending verdict: refute and tell
            # everyone who may have heard our earlier suspect update.
            del self._suspicion_deadline[subject]
            self._queue_update(ALIVE, subject)

    def _send(self, to: ProcessId, payload: object) -> None:
        assert self.owner is not None
        self.network.send(self.owner.pid, to, payload, category="detector")
        self._round_msgs += 1
        self._msgs_sent += 1


class LifeguardDetector(SwimDetector):
    """SWIM + Lifeguard's local health aware timeouts (LHM).

    The local-health multiplier rises on evidence that *this* process is
    slow (its probes miss their acks; its peers suspect it) and decays on
    timely acks.  Probe and suspicion timeouts stretch by ``1 + LHM``, so a
    slow-but-live observer waits longer before judging its healthy peers —
    the mechanism that cuts false positives under slow-processing/flaky
    chaos without touching detection latency on a healthy node (LHM 0 means
    exactly SWIM's timeouts).
    """

    def __init__(self, *args: object, max_lhm: int = 8, **kwargs: object) -> None:
        super().__init__(*args, **kwargs)  # type: ignore[arg-type]
        if max_lhm < 1:
            raise ValueError("max_lhm must be at least 1")
        self.max_lhm = max_lhm
        self._lhm = 0

    def local_health(self) -> int:
        """The current LHM score (0 = healthy, ``max_lhm`` = saturated)."""
        return self._lhm

    def _timeout_scale(self) -> float:
        return 1.0 + self._lhm

    def _on_probe_missed(self) -> None:
        self._lhm = min(self.max_lhm, self._lhm + 1)

    def _on_probe_acked(self) -> None:
        self._lhm = max(0, self._lhm - 1)

    def _on_self_suspected(self) -> None:
        self._lhm = min(self.max_lhm, self._lhm + 1)
