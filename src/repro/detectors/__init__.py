"""Failure detection mechanisms (the paper's input F1).

The paper deliberately abstracts the detection mechanism: "*For whatever
reason, process p determines that q has crashed.  We are not concerned with
the details of the mechanism used here, but for liveness, we do assume that
it occurs in finite time after a real crash*" (F1, Section 2.2).  Three
implementations cover the design space:

* :class:`~repro.detectors.oracle.OracleDetector` — suspicion fires a fixed
  delay after a *real* crash (never spuriously).  This is the clean detector
  used by the complexity benchmarks, so message counts contain protocol
  traffic only, matching Section 7.2's accounting.
* :class:`~repro.detectors.heartbeat.HeartbeatDetector` — realistic
  ping/timeout detection over the same unreliable-timing network; it *can*
  suspect slow-but-live processes, which is exactly the perceived-failure
  phenomenon the paper is about.
* :class:`~repro.detectors.scripted.ScriptedDetector` — suspicions fire only
  when a test says so, enabling the adversarial schedules of Figures 4 and
  11 and Table 1's spurious-detection scenarios.

Gossip (F2) is not a detector concern: it is carried by the protocol
messages themselves (Faulty lists on commits, HiFaulty on interrogations)
and implemented in :mod:`repro.core.member`.
"""

from repro.detectors.base import FailureDetector, Suspectable
from repro.detectors.oracle import OracleDetector
from repro.detectors.heartbeat import HeartbeatDetector, Ping, Pong
from repro.detectors.scripted import ScriptedDetector

__all__ = [
    "FailureDetector",
    "Suspectable",
    "OracleDetector",
    "HeartbeatDetector",
    "Ping",
    "Pong",
    "ScriptedDetector",
]
