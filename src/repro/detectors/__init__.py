"""Failure detection mechanisms (the paper's input F1).

The paper deliberately abstracts the detection mechanism: "*For whatever
reason, process p determines that q has crashed.  We are not concerned with
the details of the mechanism used here, but for liveness, we do assume that
it occurs in finite time after a real crash*" (F1, Section 2.2).  Five
implementations cover the design space:

* :class:`~repro.detectors.oracle.OracleDetector` — suspicion fires a fixed
  delay after a *real* crash (never spuriously).  This is the clean detector
  used by the complexity benchmarks, so message counts contain protocol
  traffic only, matching Section 7.2's accounting.
* :class:`~repro.detectors.heartbeat.HeartbeatDetector` — realistic
  ping/timeout detection over the same unreliable-timing network; it *can*
  suspect slow-but-live processes, which is exactly the perceived-failure
  phenomenon the paper is about.  Costs O(n) messages per process per
  round.
* :class:`~repro.detectors.swim.SwimDetector` — SWIM-style randomized
  k-probing with indirect relays and piggybacked suspicion/alive
  dissemination: O(1) messages per process per round, the detector that
  keeps n >= 1000 groups affordable.
* :class:`~repro.detectors.swim.LifeguardDetector` — SWIM plus Lifeguard's
  local-health multiplier, stretching timeouts while the *observer* is the
  slow party, trading detection latency for fewer false positives under
  slow-processing/flaky-link conditions (see ``docs/DETECTORS.md`` and the
  ``detectors`` section of ``BENCH_results.json``).
* :class:`~repro.detectors.scripted.ScriptedDetector` — suspicions fire only
  when a test says so, enabling the adversarial schedules of Figures 4 and
  11 and Table 1's spurious-detection scenarios.

All detectors share one lifecycle contract: ``attach()`` must precede
``start()`` (explicit error otherwise) and a stopped detector neither
delivers suspicions nor advertises liveness on late deliveries.

Gossip (F2) is not a detector concern: it is carried by the protocol
messages themselves (Faulty lists on commits, HiFaulty on interrogations)
and implemented in :mod:`repro.core.member`.  The SWIM family's piggybacked
updates disseminate *detector* verdicts only.
"""

from repro.detectors.base import FailureDetector, NetworkDetector, Suspectable
from repro.detectors.oracle import OracleDetector
from repro.detectors.heartbeat import HeartbeatDetector, Ping, Pong
from repro.detectors.scripted import ScriptedDetector
from repro.detectors.swim import (
    LifeguardDetector,
    Probe,
    ProbeAck,
    ProbeReq,
    SwimDetector,
)

__all__ = [
    "FailureDetector",
    "NetworkDetector",
    "Suspectable",
    "OracleDetector",
    "HeartbeatDetector",
    "Ping",
    "Pong",
    "SwimDetector",
    "LifeguardDetector",
    "Probe",
    "ProbeAck",
    "ProbeReq",
    "ScriptedDetector",
]
