"""Detector interface.

A detector is attached to one protocol process (anything satisfying
:class:`Suspectable`).  It delivers suspicions by calling
``owner.on_suspect(q)`` — the protocol's ``faulty_p(q)`` input — and may be
given *watch hints*: the protocol calls :meth:`FailureDetector.watch` when
it starts awaiting a response from ``q`` and :meth:`unwatch` when the await
resolves, letting timeout-style detectors focus where the paper's "p may be
expecting a message from q and does not receive it within a pre-determined
time-out period" applies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.ids import ProcessId

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.network import Network

__all__ = ["Suspectable", "FailureDetector", "NetworkDetector"]


@runtime_checkable
class Suspectable(Protocol):
    """What a detector needs from its owning protocol process."""

    pid: ProcessId

    def on_suspect(self, target: ProcessId) -> None:
        """Deliver the ``faulty_p(target)`` input (must be idempotent)."""
        ...  # pragma: no cover

    def current_members(self) -> tuple[ProcessId, ...]:
        """The owner's current local view ``Memb(p)``."""
        ...  # pragma: no cover

    def is_current_member(self, target: ProcessId) -> bool:
        """Membership test against the current local view.

        Semantically ``target in current_members()``, but owners back it
        with an O(1) index so per-crash detector checks do not scan the
        view (the dominant cost at large group sizes).
        """
        ...  # pragma: no cover

    def believes_faulty(self, target: ProcessId) -> bool:
        """Whether the owner already believes ``target`` faulty."""
        ...  # pragma: no cover


class FailureDetector:
    """Base detector: no-op.  Subclasses override what they need."""

    def __init__(self) -> None:
        self.owner: Suspectable | None = None

    def attach(self, owner: Suspectable) -> None:
        """Bind this detector to its protocol process (once)."""
        if self.owner is not None:
            raise RuntimeError("detector already attached")
        self.owner = owner

    def start(self) -> None:
        """Begin operating (called when the owner starts)."""

    def stop(self) -> None:
        """Cease operating (called when the owner crashes or quits)."""

    def watch(self, target: ProcessId, reason: str = "") -> None:
        """Hint: the owner is awaiting a message from ``target``."""

    def unwatch(self, target: ProcessId) -> None:
        """Hint: the owner is no longer awaiting ``target``."""

    def on_message(self, sender: ProcessId, payload: object) -> bool:
        """Offer a delivered payload to the detector.

        Returns True if the payload was detector traffic and has been fully
        consumed (the protocol should ignore it).
        """
        return False

    def observed_traffic(self, sender: ProcessId) -> None:
        """Note that protocol traffic arrived from ``sender`` (evidence of
        life for timeout-style detectors; no-op otherwise)."""

    def forget(self, target: ProcessId) -> None:
        """Hint: ``target`` left the owner's view; drop per-target state.

        Long-lived owners with churning views (the shardgroup leaf cells)
        call this so detector bookkeeping tracks the roster instead of
        accumulating entries for departed members.  Historical verdict logs
        (e.g. :meth:`NetworkDetector.suspicions`) are *not* part of the
        operational state and survive.  Default: nothing.
        """

    def _suspect(self, target: ProcessId) -> None:
        """Deliver a suspicion to the owner, if still meaningful."""
        if self.owner is None:
            raise RuntimeError("detector not attached")
        if target == self.owner.pid:
            return
        if self.owner.believes_faulty(target):
            return
        self.owner.on_suspect(target)

    def _require_attached(self) -> None:
        """The shared lifecycle contract: attach() must precede start()."""
        if self.owner is None:
            raise RuntimeError("detector not attached; call attach() before start()")


class NetworkDetector(FailureDetector):
    """Shared machinery for detectors probing over the simulated network.

    Concrete subclasses (heartbeat, SWIM, Lifeguard) differ in *what* they
    send each round; the verdict bookkeeping is identical and lives here:
    the read-only suspicion log, first-suspicion timestamps (the QoS
    matrix's detection-latency input), and the instrumented
    :meth:`_record_suspicion` that counts false suspicions against the
    trace's crash ground truth and emits the retrospective
    ``detector.detection`` span.
    """

    def __init__(self, network: "Network") -> None:
        super().__init__()
        self.network = network
        #: every target this detector has ever suspected (not pruned on view
        #: changes: transient suspicions are exactly what it makes visible).
        self._suspected: set[ProcessId] = set()
        #: scheduler time at which each target was *first* suspected.
        self._suspicion_times: dict[ProcessId, float] = {}
        self._running = False

    def suspicions(self) -> frozenset[ProcessId]:
        """Read-only view of every suspicion this detector has raised.

        Unlike the owner's ``believes_faulty`` state this records *detector*
        verdicts, including transient ones that never led to a
        reconfiguration (e.g. raised against an already-excluded member).
        """
        return frozenset(self._suspected)

    def suspicion_times(self) -> dict[ProcessId, float]:
        """Scheduler time of the first suspicion of each target."""
        return dict(self._suspicion_times)

    def _own_process_alive(self) -> bool:
        """Whether the owner's simulated process is registered and live."""
        if self.owner is None:
            return False
        own = self.network.get_process(self.owner.pid)
        return own is not None and not own.crashed

    def _record_suspicion(
        self, member: ProcessId, silence_start: float, now: float
    ) -> None:
        """Make each *new* suspicion visible the moment it is raised.

        Called before :meth:`FailureDetector._suspect`, which only forwards
        to the owner — a suspicion the owner already shares (or one against
        a departed member) would otherwise leave no trace anywhere.
        """
        if member in self._suspected:
            return
        self._suspected.add(member)
        self._suspicion_times[member] = now
        obs = self.network.obs
        if obs is None or self.owner is None:
            return
        # Ground truth from the trace: suspecting a never-crashed process is
        # the paper's "perceived failure" — count it separately.
        false_suspicion = member not in self.network.trace.crashed()
        obs.count_suspicion(self.owner.pid, false_suspicion)
        # Detection latency: silence began at silence_start, verdict is now.
        obs.spans.emit(
            "detector.detection",
            start=silence_start,
            end=now,
            proc=self.owner.pid,
            target=member,
            false_suspicion=false_suspicion,
        )
        # The probe to this target will never be answered.
        obs.spans.discard("detector.probe", (self.owner.pid, member))
