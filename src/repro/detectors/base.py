"""Detector interface.

A detector is attached to one protocol process (anything satisfying
:class:`Suspectable`).  It delivers suspicions by calling
``owner.on_suspect(q)`` — the protocol's ``faulty_p(q)`` input — and may be
given *watch hints*: the protocol calls :meth:`FailureDetector.watch` when
it starts awaiting a response from ``q`` and :meth:`unwatch` when the await
resolves, letting timeout-style detectors focus where the paper's "p may be
expecting a message from q and does not receive it within a pre-determined
time-out period" applies.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.ids import ProcessId

__all__ = ["Suspectable", "FailureDetector"]


@runtime_checkable
class Suspectable(Protocol):
    """What a detector needs from its owning protocol process."""

    pid: ProcessId

    def on_suspect(self, target: ProcessId) -> None:
        """Deliver the ``faulty_p(target)`` input (must be idempotent)."""
        ...  # pragma: no cover

    def current_members(self) -> tuple[ProcessId, ...]:
        """The owner's current local view ``Memb(p)``."""
        ...  # pragma: no cover

    def is_current_member(self, target: ProcessId) -> bool:
        """Membership test against the current local view.

        Semantically ``target in current_members()``, but owners back it
        with an O(1) index so per-crash detector checks do not scan the
        view (the dominant cost at large group sizes).
        """
        ...  # pragma: no cover

    def believes_faulty(self, target: ProcessId) -> bool:
        """Whether the owner already believes ``target`` faulty."""
        ...  # pragma: no cover


class FailureDetector:
    """Base detector: no-op.  Subclasses override what they need."""

    def __init__(self) -> None:
        self.owner: Suspectable | None = None

    def attach(self, owner: Suspectable) -> None:
        """Bind this detector to its protocol process (once)."""
        if self.owner is not None:
            raise RuntimeError("detector already attached")
        self.owner = owner

    def start(self) -> None:
        """Begin operating (called when the owner starts)."""

    def stop(self) -> None:
        """Cease operating (called when the owner crashes or quits)."""

    def watch(self, target: ProcessId, reason: str = "") -> None:
        """Hint: the owner is awaiting a message from ``target``."""

    def unwatch(self, target: ProcessId) -> None:
        """Hint: the owner is no longer awaiting ``target``."""

    def on_message(self, sender: ProcessId, payload: object) -> bool:
        """Offer a delivered payload to the detector.

        Returns True if the payload was detector traffic and has been fully
        consumed (the protocol should ignore it).
        """
        return False

    def observed_traffic(self, sender: ProcessId) -> None:
        """Note that protocol traffic arrived from ``sender`` (evidence of
        life for timeout-style detectors; no-op otherwise)."""

    def _suspect(self, target: ProcessId) -> None:
        """Deliver a suspicion to the owner, if still meaningful."""
        if self.owner is None:
            raise RuntimeError("detector not attached")
        if target == self.owner.pid:
            return
        if self.owner.believes_faulty(target):
            return
        self.owner.on_suspect(target)
