"""Scripted detector: suspicions fire exactly when the test says.

Adversarial schedules — Figure 4's crossing reconfigurations, Figure 11's
two invisible partial commits, Table 1's spurious detections of live
processes — need precise control over *who suspects whom, when*, including
suspicions of processes that are perfectly healthy.  The scripted detector
provides that and nothing else.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.detectors.base import FailureDetector
from repro.ids import ProcessId

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.scheduler import Scheduler

__all__ = ["ScriptedDetector"]


class ScriptedDetector(FailureDetector):
    """Deliver only explicitly scheduled suspicions."""

    def __init__(self, scheduler: "Scheduler") -> None:
        super().__init__()
        self.scheduler = scheduler
        self._pending: list[tuple[float, ProcessId]] = []
        self._started = False

    def start(self) -> None:
        self._require_attached()
        self._started = True
        pending, self._pending = self._pending, []
        for at, target in pending:
            self.suspect_at(at, target)

    def stop(self) -> None:
        self._started = False

    def on_message(self, sender: ProcessId, payload: object) -> bool:
        """Scripted detectors carry no traffic; late deliveries after
        :meth:`stop` are ignored either way (the shared lifecycle
        contract — scheduled suspicions are likewise suppressed by
        :meth:`_fire` once stopped)."""
        return False

    def suspect_at(self, time: float, target: ProcessId) -> None:
        """Schedule ``faulty_owner(target)`` at absolute time ``time``.

        May be called before :meth:`start`; such requests are queued.
        """
        if not self._started:
            self._pending.append((time, target))
            return
        when = max(time, self.scheduler.now)
        self.scheduler.at(when, lambda: self._fire(target))

    def suspect_now(self, target: ProcessId) -> None:
        """Deliver the suspicion immediately (synchronously)."""
        self._fire(target)

    def _fire(self, target: ProcessId) -> None:
        if self._started:
            self._suspect(target)
