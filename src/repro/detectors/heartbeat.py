"""Heartbeat detector: periodic pings with a reply deadline.

This is the paper's motivating mechanism made concrete: "*p may be expecting
a message from q and does not receive it within a pre-determined 'time-out'
period*".  Every ``period`` the detector pings each current group member; a
member that has not been heard from (ping *or* pong counts — any traffic is
evidence of life) for ``timeout`` time units is suspected.

Because network delays are unbounded, this detector can and does suspect
live processes when delays exceed the timeout — the spurious "perceived
failure" the protocol must (and does) survive.  Detector traffic is sent
with ``category="detector"`` so benchmarks can exclude it.

Note the cost: the per-round fan-out is O(n) messages *per process*, i.e.
O(n^2) detector traffic per round group-wide.  :class:`repro.detectors.swim.
SwimDetector` brings this down to O(1) per process per round; the measured
trade-off lives in the ``detectors`` section of ``BENCH_results.json``
(see ``docs/DETECTORS.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.detectors.base import NetworkDetector
from repro.ids import ProcessId

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.network import Network

__all__ = ["Ping", "Pong", "HeartbeatDetector"]


@dataclass(frozen=True, slots=True)
class Ping:
    """Heartbeat probe.  ``nonce`` pairs pongs with pings."""

    nonce: int


@dataclass(frozen=True, slots=True)
class Pong:
    """Heartbeat reply."""

    nonce: int


class HeartbeatDetector(NetworkDetector):
    """Ping/timeout failure detection over the simulated network."""

    def __init__(
        self,
        network: "Network",
        period: float = 2.0,
        timeout: float = 8.0,
    ) -> None:
        super().__init__(network)
        if period <= 0 or timeout <= 0:
            raise ValueError("period and timeout must be positive")
        self.period = period
        self.timeout = timeout
        self._last_heard: dict[ProcessId, float] = {}
        self._nonce = 0

    # ------------------------------------------------------------- lifecycle

    def start(self) -> None:
        self._require_attached()
        self._running = True
        now = self.network.scheduler.now
        for member in self.owner.current_members():
            self._last_heard.setdefault(member, now)
        self._tick()

    def stop(self) -> None:
        self._running = False

    # ----------------------------------------------------------------- ticks

    def _tick(self) -> None:
        if not self._running or self.owner is None:
            return
        owner = self.owner
        if not self._own_process_alive():
            self._running = False
            return
        now = self.network.scheduler.now
        last_heard = self._last_heard
        # Prune liveness entries for processes no longer in the view, or the
        # table grows without bound under churn (every past incarnation of
        # every past member would be tracked forever).
        current = set(owner.current_members())
        for stale in [m for m in last_heard if m not in current]:
            del last_heard[stale]
        obs = self.network.obs
        targets: list[ProcessId] = []
        for member in owner.current_members():
            if member == owner.pid or owner.believes_faulty(member):
                continue
            last = last_heard.setdefault(member, now)
            if obs is not None:
                obs.observe_last_heard_age(owner.pid, now - last)
            if now - last > self.timeout:
                self._record_suspicion(member, silence_start=last, now=now)
                self._suspect(member)
                continue
            targets.append(member)
        if targets:
            # One nonce and one batched fan-out per round: the round's pongs
            # all answer the same probe, so per-member nonces bought nothing
            # but O(n) extra allocations.
            self._nonce += 1
            if obs is not None:
                spans = obs.spans
                for member in targets:
                    probe_key = (owner.pid, member)
                    if not spans.is_open("detector.probe", probe_key):
                        spans.begin(
                            "detector.probe",
                            probe_key,
                            at=now,
                            proc=owner.pid,
                            target=member,
                        )
            sent = self.network.broadcast(
                owner.pid, targets, Ping(self._nonce), category="detector"
            )
            if obs is not None:
                obs.observe_round_msgs(owner.pid, sent)
        self.network.scheduler.after(self.period, self._tick)

    # -------------------------------------------------------------- messages

    def on_message(self, sender: ProcessId, payload: object) -> bool:
        """Consume Ping/Pong; any delivered message refreshes liveness."""
        if not self._running:
            # A stopped detector must not keep advertising liveness — a
            # quit/excluded member answering pings forever would look alive
            # to the whole group.  Still swallow detector traffic.
            return isinstance(payload, (Ping, Pong))
        self._mark_heard(sender)
        if isinstance(payload, Ping):
            if self.owner is not None and self._own_process_alive():
                self.network.send(
                    self.owner.pid, sender, Pong(payload.nonce), category="detector"
                )
            return True
        return isinstance(payload, Pong)

    def observed_traffic(self, sender: ProcessId) -> None:
        """Protocol hook: any protocol message from ``sender`` is evidence."""
        self._mark_heard(sender)

    def _mark_heard(self, sender: ProcessId) -> None:
        """Refresh liveness; close any in-flight probe span to ``sender``."""
        now = self.network.scheduler.now
        self._last_heard[sender] = now
        obs = self.network.obs
        if obs is not None and self.owner is not None:
            rtt = obs.spans.end("detector.probe", (self.owner.pid, sender), at=now)
            if rtt is not None:
                obs.observe_probe_rtt(self.owner.pid, rtt)
