"""The core group's replicated shard directory.

One :class:`ShardDirectory` rides on each core GMP member as its
:class:`~repro.core.member.AppLayer`.  The membership view's coordinator is
the single writer: it serialises cell-roster changes, numbers them with
per-cell versions, and broadcasts :class:`ShardUpdate` records to the core
view.  Replicas apply updates in per-cell version order; a gap triggers a
single in-flight :class:`DeltaRequest` per cell (anti-entropy pull), never
a full-state rebroadcast.

On failover the new coordinator reconciles by *digest*, not by state: it
solicits :class:`ViewDigest` version vectors from the survivors, pulls a
delta only for cells where some survivor is ahead, and then broadcasts its
own digest so stragglers pull what they miss.  Replies are honoured only
from solicited senders, and writes that arrive mid-reconciliation are
deferred until it completes — the same discipline the flat
:class:`~repro.extensions.hierarchy.ClientDirectory` follows, hardened by
the PR-10 reconciliation bugfixes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.core.member import AppLayer, GMPMember
from repro.ids import ProcessId
from repro.model.events import EventKind
from repro.shardgroup.messages import (
    SHARD_CATEGORY,
    CellDelta,
    CellOp,
    DeltaRequest,
    DigestRequest,
    LeafAdmitRequest,
    LeafFailureReport,
    ShardUpdate,
    ViewDigest,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Obs

__all__ = ["DeltaLog", "CellRegistry", "ShardDirectory"]

#: how many trailing ops a registry retains for delta service.  Pulls that
#: reach further back get a snapshot — bounded memory per cell either way.
DELTA_LOG_CAP = 64


class DeltaLog:
    """Bounded per-cell op log: the suffix anti-entropy pulls are served from."""

    def __init__(self, cap: int = DELTA_LOG_CAP) -> None:
        self.cap = cap
        #: version *before* the first retained op.
        self.base = 0
        self.ops: list[CellOp] = []

    def append(self, op: CellOp) -> None:
        self.ops.append(op)
        if len(self.ops) > self.cap:
            drop = len(self.ops) - self.cap
            del self.ops[:drop]
            self.base += drop

    def reset(self, base: int) -> None:
        """Forget everything; the log now starts after ``base`` (snapshot adoption)."""
        self.base = base
        self.ops = []

    def since(self, version: int) -> Optional[tuple[CellOp, ...]]:
        """Ops taking ``version`` to the head, or None if truncated past it."""
        if version < self.base:
            return None
        return tuple(self.ops[version - self.base :])


class CellRegistry:
    """One cell's replicated roster: ordered members, version, delta log."""

    def __init__(self, cell: str, log_cap: int = DELTA_LOG_CAP) -> None:
        self.cell = cell
        self.version = 0
        #: admission order == seniority order (the delegate is the head).
        self.roster: list[ProcessId] = []
        self._roster_set: set[ProcessId] = set()
        self._roster_tuple: Optional[tuple[ProcessId, ...]] = None
        self.log = DeltaLog(log_cap)

    def members(self) -> tuple[ProcessId, ...]:
        cached = self._roster_tuple
        if cached is None:
            cached = self._roster_tuple = tuple(self.roster)
        return cached

    def __contains__(self, leaf: ProcessId) -> bool:
        return leaf in self._roster_set

    def apply(self, op: CellOp) -> bool:
        """Apply one op, advancing the version.  False if redundant."""
        if op.kind == "admit":
            if op.leaf in self._roster_set:
                return False
            self.roster.append(op.leaf)
            self._roster_set.add(op.leaf)
        else:
            if op.leaf not in self._roster_set:
                return False
            self.roster.remove(op.leaf)
            self._roster_set.discard(op.leaf)
        self._roster_tuple = None
        self.version += 1
        self.log.append(op)
        return True

    def adopt_snapshot(self, version: int, roster: tuple[ProcessId, ...]) -> None:
        """Jump to a newer snapshot (delta log truncated past our version)."""
        self.version = version
        self.roster = list(roster)
        self._roster_set = set(roster)
        self._roster_tuple = tuple(roster)
        self.log.reset(version)

    def delta_since(self, since: int) -> CellDelta:
        """The pull reply: op suffix if retained, snapshot fallback if not."""
        ops = self.log.since(since) if since <= self.version else None
        if ops is not None:
            return CellDelta(self.cell, since, ops, self.version)
        return CellDelta(self.cell, since, (), self.version, snapshot=self.members())


def apply_delta(registry: CellRegistry, delta: CellDelta) -> bool:
    """Fold a :class:`CellDelta` into ``registry``.  True if it advanced.

    Shared by core replicas and leaf members: skips the op prefix the
    registry already has, applies the contiguous remainder, and adopts the
    snapshot fallback when the delta starts beyond the local version.
    """
    if delta.version <= registry.version:
        return False
    if delta.snapshot is not None:
        registry.adopt_snapshot(delta.version, delta.snapshot)
        return True
    if delta.since > registry.version:
        return False  # non-contiguous and no snapshot: cannot apply safely
    advanced = False
    for index, op in enumerate(delta.ops):
        produces = delta.since + index + 1
        if produces <= registry.version:
            continue  # already have this prefix
        registry.apply(op)
        advanced = True
    return advanced


class ShardDirectory(AppLayer):
    """The shard map replica carried by one core GMP member."""

    def __init__(
        self,
        member: GMPMember,
        sync_timeout: float = 15.0,
        digest_period: float = 8.0,
    ) -> None:
        self.member = member
        self.sync_timeout = sync_timeout
        self.digest_period = digest_period
        self.cells: dict[str, CellRegistry] = {}
        #: cell -> pull target for anti-entropy pulls in flight (one per
        #: cell: a version gap must not amplify into a burst of pulls, and
        #: only the solicited responder may clear the flag).
        self._pull_inflight: dict[str, ProcessId] = {}
        self._digest_armed = False
        #: membership view version in which we *completed* reconciliation as
        #: coordinator; None while not the reconciled writer.  Set only by
        #: :meth:`_finish_reconciliation` (or :meth:`activate_initial`), so
        #: ``writable`` stays False for the whole reconciliation window.
        self._reconciled_as_mgr: Optional[int] = None
        #: view version of a reconciliation in flight; None otherwise.
        self._reconciling: Optional[int] = None
        self._sync_pending: set[ProcessId] = set()
        self._sync_digests: dict[ProcessId, dict[str, int]] = {}
        self._sync_pulls: set[str] = set()
        self._sync_epoch = 0
        #: failure reports received mid-reconciliation, replayed once the
        #: directory is writable again.
        self._deferred_reports: list[LeafFailureReport] = []
        #: admissions we cannot serve yet (mid-reconciliation, or no
        #: reachable coordinator); re-dispatched on every writability or
        #: coordinator change — unlike reports, nobody re-sends these.
        self._deferred_admits: list[LeafAdmitRequest] = []
        #: sim-time each locally-written version was issued, per cell — the
        #: bench's view-convergence clock starts here.
        self.issued_at: dict[tuple[str, int], float] = {}
        member.app = self

    # --------------------------------------------------------------- reads

    def _is_coordinator(self) -> bool:
        state = self.member.state
        return state is not None and state.mgr == self.member.pid

    @property
    def writable(self) -> bool:
        """Coordinator and reconciled: safe to serialise roster changes."""
        return self._is_coordinator() and self._reconciled_as_mgr is not None

    def registry(self, cell: str) -> CellRegistry:
        found = self.cells.get(cell)
        if found is None:
            found = self.cells[cell] = CellRegistry(cell)
        return found

    def digest(self) -> ViewDigest:
        return ViewDigest(
            tuple(sorted((c, r.version) for c, r in self.cells.items()))
        )

    def total_leaves(self) -> int:
        return sum(len(r.roster) for r in self.cells.values())

    # ---------------------------------------------------- coordinator writes

    def bootstrap(self, cell: str, leaves: tuple[ProcessId, ...]) -> None:
        """Pre-seed one cell before the run starts (applied identically on
        every replica, so no messages are needed for the initial state)."""
        registry = self.registry(cell)
        for leaf in leaves:
            registry.apply(CellOp("admit", leaf))

    def admit_leaf(self, cell: str, leaf: ProcessId) -> bool:
        return self._coordinate(cell, CellOp("admit", leaf))

    def request_admit(self, cell: str, leaf: ProcessId) -> None:
        """Admission entry point callable on *any* replica: write if we are
        the reconciled coordinator, defer while reconciling, forward else."""
        self._on_admit_request(self.member.pid, LeafAdmitRequest(cell, leaf))

    def expel_leaf(self, cell: str, leaf: ProcessId) -> bool:
        return self._coordinate(cell, CellOp("expel", leaf))

    def _coordinate(self, cell: str, op: CellOp) -> bool:
        if not self.writable:
            raise RuntimeError(
                f"{self.member.pid} is not the reconciled coordinator; "
                "route shard operations to the coordinator"
            )
        registry = self.registry(cell)
        if not registry.apply(op):
            return False
        now = self.member.network.scheduler.now
        self.issued_at[(cell, registry.version)] = now
        self._record(f"shard-{op.kind}: {cell}/{op.leaf} -> v{registry.version}")
        self._observe_population()
        state = self.member.state
        assert state is not None
        self.member.broadcast(
            state.view,
            ShardUpdate(cell=cell, op=op, version=registry.version),
            category=SHARD_CATEGORY,
        )
        return True

    # ------------------------------------------------------------ messages

    def on_message(self, sender: ProcessId, payload: object) -> None:
        if isinstance(payload, ShardUpdate):
            self._on_update(sender, payload)
        elif isinstance(payload, DeltaRequest):
            registry = self.cells.get(payload.cell)
            if registry is not None:
                self.member.send(
                    sender,
                    registry.delta_since(payload.since),
                    category=SHARD_CATEGORY,
                )
        elif isinstance(payload, CellDelta):
            self._on_delta(sender, payload)
        elif isinstance(payload, DigestRequest):
            self.member.send(sender, self.digest(), category=SHARD_CATEGORY)
        elif isinstance(payload, ViewDigest):
            self._on_digest(sender, payload)
        elif isinstance(payload, LeafFailureReport):
            self._on_failure_report(sender, payload)
        elif isinstance(payload, LeafAdmitRequest):
            self._on_admit_request(sender, payload)

    def _on_update(self, sender: ProcessId, update: ShardUpdate) -> None:
        state = self.member.state
        if state is None or sender != state.mgr:
            return  # only the current coordinator writes
        registry = self.registry(update.cell)
        if update.version <= registry.version:
            return  # duplicate
        if update.version == registry.version + 1:
            registry.apply(update.op)
            self._observe_population()
            return
        self._pull(update.cell, sender)

    def _pull(self, cell: str, target: ProcessId) -> None:
        """One anti-entropy pull per cell at a time (in-flight dedup)."""
        if cell in self._pull_inflight:
            return
        self._pull_inflight[cell] = target
        self.member.send(
            target,
            DeltaRequest(cell, self.registry(cell).version),
            category=SHARD_CATEGORY,
        )

    def _on_delta(self, sender: ProcessId, delta: CellDelta) -> None:
        if self._pull_inflight.get(delta.cell) == sender:
            del self._pull_inflight[delta.cell]
        if delta.cell in self._sync_pulls:
            # A reconciliation pull we issued as the incoming coordinator.
            self._sync_pulls.discard(delta.cell)
            apply_delta(self.registry(delta.cell), delta)
            if not self._sync_pulls:
                self._finish_reconciliation()
            return
        state = self.member.state
        if state is not None and (sender == state.mgr or self._is_coordinator()):
            if apply_delta(self.registry(delta.cell), delta):
                self._observe_population()

    def _on_digest(self, sender: ProcessId, digest: ViewDigest) -> None:
        if sender in self._sync_pending:
            # A reconciliation reply we solicited.  Unsolicited digests
            # (e.g. the periodic coordinator broadcast) must not be folded
            # into the reconciliation.
            self._sync_pending.discard(sender)
            self._sync_digests[sender] = dict(digest.versions)
            if not self._sync_pending:
                self._collect_reconciliation_pulls()
            return
        state = self.member.state
        if state is None or sender != state.mgr:
            return
        for cell, version in digest.versions:
            if version > self.registry(cell).version:
                self._pull(cell, sender)

    def _on_failure_report(
        self, sender: ProcessId, report: LeafFailureReport
    ) -> None:
        if self.writable:
            registry = self.cells.get(report.cell)
            if registry is not None and report.leaf in registry:
                self.expel_leaf(report.cell, report.leaf)
            return
        if self._is_coordinator():
            # Mid-reconciliation: defer rather than write on a stale map.
            self._deferred_reports.append(report)
            return
        state = self.member.state
        if state is not None and not self.member.believes_faulty(state.mgr):
            self.member.send(state.mgr, report, category=SHARD_CATEGORY)

    def _on_admit_request(
        self, sender: ProcessId, request: LeafAdmitRequest
    ) -> None:
        if self.writable:
            self.admit_leaf(request.cell, request.leaf)
            return
        if self._is_coordinator():
            # Mid-reconciliation: defer rather than write on a stale map.
            self._deferred_admits.append(request)
            return
        state = self.member.state
        if state is not None and not self.member.believes_faulty(state.mgr):
            self.member.send(state.mgr, request, category=SHARD_CATEGORY)
        else:
            # No reachable coordinator yet; re-dispatched when one appears.
            self._deferred_admits.append(request)

    def _flush_deferred_admits(self) -> None:
        pending = self._deferred_admits
        self._deferred_admits = []
        for request in pending:
            if self.member.crashed:
                return
            self._on_admit_request(self.member.pid, request)

    # --------------------------------------------------------- view changes

    def on_view_installed(
        self, version: int, view: tuple[ProcessId, ...], mgr: ProcessId
    ) -> None:
        if mgr != self.member.pid:
            self._step_down()
            self._flush_deferred_admits()  # forward to the new coordinator
            return
        self._begin_reconciliation(version, view)

    def on_coordinator_changed(self, version: int, mgr: ProcessId) -> None:
        if mgr != self.member.pid:
            self._step_down()
            self._flush_deferred_admits()  # forward to the new coordinator
            return
        state = self.member.state
        if state is not None:
            self._begin_reconciliation(version, state.snapshot_view())

    def activate_initial(self) -> None:
        """Mark the run-initial coordinator reconciled (it has no
        predecessor to reconcile against) and start its digest broadcasts."""
        state = self.member.state
        if state is None or not self._is_coordinator():
            return
        if self._reconciled_as_mgr is None:
            self._reconciled_as_mgr = state.version
            self._arm_digest_timer()

    def _step_down(self) -> None:
        self._reconciled_as_mgr = None
        self._reconciling = None
        if self._sync_pending or self._sync_pulls:
            self._sync_epoch += 1
        self._sync_pending = set()
        self._sync_digests = {}
        self._sync_pulls = set()
        # Deferred reports are dropped: cell delegates re-report every tick.
        # Deferred admits are kept — the caller forwards them to the new
        # coordinator, since nothing retries an admission for us.
        self._deferred_reports = []
        # Pulls addressed to the deposed coordinator will never be answered.
        self._pull_inflight = {}

    def _begin_reconciliation(
        self, version: int, view: tuple[ProcessId, ...]
    ) -> None:
        if self._reconciled_as_mgr is not None or self._reconciling is not None:
            return  # already the established writer, or already reconciling
        self._reconciling = version
        self._pull_inflight = {}
        self._span_begin("shard.reconcile", version)
        others = [
            m
            for m in view
            if m != self.member.pid and not self.member.believes_faulty(m)
        ]
        if not others:
            self._finish_reconciliation()
            return
        self._sync_pending = set(others)
        self._sync_digests = {}
        for target in others:
            self.member.send(target, DigestRequest(), category=SHARD_CATEGORY)
        epoch = self._sync_epoch
        self.member.set_timer(self.sync_timeout, lambda: self._sync_deadline(epoch))

    def _collect_reconciliation_pulls(self) -> None:
        """Digests are in: pull a delta for every cell a survivor leads on."""
        best: dict[str, tuple[int, ProcessId]] = {}
        for sender, versions in self._sync_digests.items():
            for cell, version in versions.items():
                if version > self.registry(cell).version:
                    known = best.get(cell)
                    if known is None or version > known[0]:
                        best[cell] = (version, sender)
        self._sync_digests = {}
        if not best:
            self._finish_reconciliation()
            return
        self._sync_pulls = set(best)
        for cell, (_version, source) in sorted(best.items()):
            self.member.send(
                source,
                DeltaRequest(cell, self.registry(cell).version),
                category=SHARD_CATEGORY,
            )

    def _sync_deadline(self, epoch: int) -> None:
        if epoch != self._sync_epoch:
            return
        if self._sync_pending:
            self._sync_pending = set()
            self._collect_reconciliation_pulls()
            if self._sync_pulls:
                # The one timer from _begin_reconciliation has fired; the
                # reconciliation pulls need their own deadline or a lost
                # reply leaves the coordinator non-writable forever.
                self.member.set_timer(
                    self.sync_timeout, lambda: self._sync_deadline(epoch)
                )
        elif self._sync_pulls:
            self._sync_pulls = set()
            self._finish_reconciliation()

    def _finish_reconciliation(self) -> None:
        self._sync_pending = set()
        self._sync_digests = {}
        self._sync_pulls = set()
        self._sync_epoch += 1
        version = (
            self._reconciling
            if self._reconciling is not None
            else self._reconciled_as_mgr
        )
        self._reconciling = None
        self._reconciled_as_mgr = version
        self._record(
            f"shard directory reconciled: {len(self.cells)} cells, "
            f"{self.total_leaves()} leaves"
        )
        self._span_end("shard.reconcile", version)
        self._observe_population()
        state = self.member.state
        if state is not None and not self.member.crashed:
            # Digest, not state: stragglers pull exactly what they miss.
            self.member.broadcast(state.view, self.digest(), category=SHARD_CATEGORY)
            self._arm_digest_timer()
        deferred = self._deferred_reports
        self._deferred_reports = []
        for report in deferred:
            if self.member.crashed:
                return
            self._on_failure_report(self.member.pid, report)
        self._flush_deferred_admits()

    # ------------------------------------------------------- periodic digest

    def _arm_digest_timer(self) -> None:
        if not self.member.crashed and not self._digest_armed:
            self._digest_armed = True
            self.member.set_timer(self.digest_period, self._digest_tick)

    def _digest_tick(self) -> None:
        self._digest_armed = False
        if not self.writable:
            return  # deposed: the new coordinator's digests take over
        state = self.member.state
        assert state is not None
        self.member.broadcast(state.view, self.digest(), category=SHARD_CATEGORY)
        self._arm_digest_timer()

    # -------------------------------------------------------------- plumbing

    def _obs(self) -> Optional["Obs"]:
        return self.member.network.obs

    def _observe_population(self) -> None:
        obs = self._obs()
        if obs is not None:
            obs.set_shard_population(
                self.member.pid, len(self.cells), self.total_leaves()
            )

    def _span_begin(self, name: str, version: Optional[int]) -> None:
        obs = self._obs()
        if obs is not None:
            obs.spans.begin(
                name,
                key=(self.member.pid, version),
                at=self.member.network.scheduler.now,
                proc=self.member.pid,
            )

    def _span_end(self, name: str, version: Optional[int]) -> None:
        obs = self._obs()
        if obs is not None:
            obs.spans.end(
                name,
                key=(self.member.pid, version),
                at=self.member.network.scheduler.now,
                cells=len(self.cells),
                leaves=self.total_leaves(),
            )

    def _record(self, detail: str) -> None:
        if not self.member.crashed:
            self.member.network.trace.record(
                self.member.pid,
                EventKind.INTERNAL,
                time=self.member.network.scheduler.now,
                detail=detail,
            )
