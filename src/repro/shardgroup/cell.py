"""Leaf cells: detector-run shards under the core authority.

A :class:`LeafMember` is a :class:`~repro.sim.process.SimProcess` that
satisfies the :class:`~repro.detectors.base.Suspectable` contract over its
*cell roster* — the replicated member list one :class:`CellRegistry` holds
— and runs a SWIM-family detector over exactly those peers.  Roster changes
flow down from the core by digest + anti-entropy pull:

* the cell **delegate** — the most senior leaf not locally suspected —
  pulls a :class:`CellDelta` from the core every ``pull_period`` and, when
  the roster advanced, broadcasts that delta into the cell (one O(cell)
  fan-out per change batch; followers never talk to the core);
* a follower that is still behind after a delta (it missed a broadcast, or
  was just admitted) pulls from the delegate, with a single in-flight
  request — the same dedup discipline as the core replicas;
* when the delegate's detector convicts a cell peer it reports the failure
  up to the core, which serialises the expulsion.  Followers do not report:
  the delegate's own verdict (driven by the same gossip) suffices, and if
  the *delegate* dies, seniority moves delegate duty — and the reporting —
  to the next live leaf automatically.

A crashed or unresponsive core contact is handled by rotation: the
delegate cycles through its core contact list whenever a pull goes
unanswered for a full period.

:class:`CoreStub` stands in for the whole core group in *satellite* cell
simulations (the ``--scale-sharded`` bench fans thousands of those out):
it owns the cell's registry, replays a scripted churn workload, answers
pulls, and records write times — so every leaf runs the exact code the
full control simulation runs, at a fraction of the cost.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.detectors.base import FailureDetector
from repro.ids import ProcessId
from repro.shardgroup.directory import CellRegistry, apply_delta
from repro.shardgroup.messages import (
    SHARD_CATEGORY,
    CellDelta,
    CellOp,
    DeltaRequest,
    LeafFailureReport,
)
from repro.sim.network import Network
from repro.sim.process import SimProcess

__all__ = ["LeafMember", "CoreStub", "PULL_PERIOD"]

#: default delegate pull / duty-check period (sim seconds).
PULL_PERIOD = 4.0


class LeafMember(SimProcess):
    """One leaf: cell-roster Suspectable host plus shard-layer plumbing."""

    def __init__(
        self,
        pid_: ProcessId,
        network: Network,
        cell: str,
        detector: FailureDetector,
        core: Sequence[ProcessId],
        pull_period: float = PULL_PERIOD,
    ) -> None:
        super().__init__(pid_, network)
        self.cell = cell
        self.detector = detector
        self.registry = CellRegistry(cell)
        self.core = tuple(core)
        self.pull_period = pull_period
        self.suspected: set[ProcessId] = set()
        #: sim-time this leaf was built — convergence accounting excludes
        #: writes issued before it existed.
        self.created_at = network.scheduler.now
        #: sim-time each roster version was applied locally — the bench's
        #: view-convergence clock stops at the slowest live leaf.
        self.applied_at: dict[int, float] = {}
        self._core_index = 0
        self._await_core_reply = False
        #: one in-flight catch-up pull to the delegate at a time.
        self._cell_pull_inflight = False
        detector.attach(self)

    # ------------------------------------------------- Suspectable contract

    def current_members(self) -> tuple[ProcessId, ...]:
        return self.registry.members()

    def is_current_member(self, target: ProcessId) -> bool:
        return target in self.registry

    def believes_faulty(self, target: ProcessId) -> bool:
        return target in self.suspected

    def on_suspect(self, target: ProcessId) -> None:
        if target in self.suspected:
            return
        self.suspected.add(target)
        if self.delegate() == self.pid:
            # Delegate duty includes reporting: either we were already the
            # delegate, or this verdict (against the old delegate) just
            # promoted us.
            self._report(target)

    def _report(self, target: ProcessId) -> None:
        self.send(
            self._core_contact(),
            LeafFailureReport(self.cell, target),
            category=SHARD_CATEGORY,
        )

    # ------------------------------------------------------------ lifecycle

    def on_start(self) -> None:
        self.detector.start()
        self.set_timer(self.pull_period, self._tick)

    def delegate(self) -> Optional[ProcessId]:
        """The most senior roster member this leaf does not suspect.

        An empty roster (a freshly admitted leaf that has not learned its
        cell yet) elects self, which makes the bootstrap pull automatic.
        """
        for leaf in self.registry.roster:
            if leaf == self.pid or leaf not in self.suspected:
                return leaf
        return self.pid

    def _core_contact(self) -> ProcessId:
        return self.core[self._core_index % len(self.core)]

    def _tick(self) -> None:
        if self.delegate() == self.pid:
            if self._await_core_reply:
                # Last pull went unanswered for a whole period: the contact
                # is partitioned or dead — rotate to the next core member.
                self._core_index += 1
            self._await_core_reply = True
            self.send(
                self._core_contact(),
                DeltaRequest(self.cell, self.registry.version),
                category=SHARD_CATEGORY,
            )
            # Re-report every suspicion the core has not acted on yet
            # (expulsion prunes the target from the roster, which clears
            # it from `suspected`).  Covers a report lost to a dead core
            # contact and the promoted-delegate case: a follower that
            # convicted `target` long before inheriting delegate duty.
            for target in self.registry.roster:
                if target in self.suspected:
                    self._report(target)
        self.set_timer(self.pull_period, self._tick)

    # ------------------------------------------------------------- messages

    def on_message(self, sender: ProcessId, payload: object) -> None:
        if isinstance(payload, CellDelta):
            self._on_delta(sender, payload)
        elif isinstance(payload, DeltaRequest):
            # Followers pull from the delegate; serve from our registry.
            self.send(
                sender,
                self.registry.delta_since(payload.since),
                category=SHARD_CATEGORY,
            )
        else:
            self.detector.on_message(sender, payload)

    def _on_delta(self, sender: ProcessId, delta: CellDelta) -> None:
        if delta.cell != self.cell:
            return
        from_core = sender in self.core
        if from_core:
            self._await_core_reply = False
        else:
            self._cell_pull_inflight = False
        before = self.registry.version
        advanced = apply_delta(self.registry, delta)
        if advanced:
            now = self.network.scheduler.now
            for version in range(before + 1, self.registry.version + 1):
                self.applied_at[version] = now
            self._prune_suspicions()
        if from_core and advanced and self.delegate() == self.pid:
            # Disseminate into the cell, served from our *own* delta log:
            # the received delta's ops start at delta.since + 1, which may
            # be past `before` if another pull landed in between — relabeled
            # ops would apply at the wrong versions on followers.  Followers
            # behind `before` (e.g. freshly admitted) will pull.
            self.broadcast(
                (m for m in self.registry.roster if m != self.pid),
                self.registry.delta_since(before),
                category=SHARD_CATEGORY,
            )
        elif not from_core and not advanced and delta.version > self.registry.version:
            # A delegate broadcast we cannot apply contiguously: catch up
            # with a single in-flight pull (never one per gapped delta).
            if not self._cell_pull_inflight:
                self._cell_pull_inflight = True
                self.send(
                    sender,
                    DeltaRequest(self.cell, self.registry.version),
                    category=SHARD_CATEGORY,
                )

    def _prune_suspicions(self) -> None:
        """Drop verdicts about leaves the roster no longer contains, and let
        the detector forget its per-target state for them."""
        gone = [s for s in self.suspected if s not in self.registry]
        for target in gone:
            self.suspected.discard(target)
            self.detector.forget(target)


class CoreStub(SimProcess):
    """Deterministic stand-in for the core group in leaf-only cell sims.

    Owns the cell's authoritative :class:`CellRegistry`, replays a scripted
    churn workload (``(sim_time, CellOp)`` pairs), expels leaves reported
    failed, and answers :class:`DeltaRequest` pulls — exactly the slice of
    :class:`~repro.shardgroup.directory.ShardDirectory` behaviour a single
    cell can see, minus the GMP underneath it.
    """

    def __init__(
        self,
        pid_: ProcessId,
        network: Network,
        cell: str,
        script: Sequence[tuple[float, CellOp]] = (),
    ) -> None:
        super().__init__(pid_, network)
        self.cell = cell
        self.registry = CellRegistry(cell)
        self.script = tuple(script)
        self.issued_at: dict[tuple[str, int], float] = {}

    def on_start(self) -> None:
        for at, op in self.script:
            delay = at - self.network.scheduler.now
            if delay >= 0:
                self.set_timer(delay, lambda op=op: self._issue(op))

    def _issue(self, op: CellOp) -> None:
        if self.registry.apply(op):
            self.issued_at[(self.cell, self.registry.version)] = (
                self.network.scheduler.now
            )

    def on_message(self, sender: ProcessId, payload: object) -> None:
        if isinstance(payload, DeltaRequest):
            if payload.cell == self.cell:
                self.send(
                    sender,
                    self.registry.delta_since(payload.since),
                    category=SHARD_CATEGORY,
                )
        elif isinstance(payload, LeafFailureReport):
            if payload.cell == self.cell and payload.leaf in self.registry:
                self._issue(CellOp("expel", payload.leaf))
