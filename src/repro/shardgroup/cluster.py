"""The control simulation: a GMP core plus fully-simulated leaf cells.

Everything — core members, their :class:`ShardDirectory` replicas, and
every :class:`LeafMember` of every cell — shares one scheduler and one
network, so the whole hierarchy is a single deterministic run: crash the
core coordinator mid-churn, partition the core, kill leaf delegates, and
the same seed replays the same trace byte for byte.

The ``--scale-sharded`` bench uses this as the *control* arm (core
behaviour, convergence latency, the zero-core-reconfiguration invariant)
and fans the remaining cells out as satellite :class:`CoreStub` sims —
see :mod:`repro.shardgroup.bench`.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any, Optional

from repro.core.service import MembershipCluster
from repro.detectors import LifeguardDetector, SwimDetector
from repro.ids import ProcessId, pid
from repro.shardgroup.cell import PULL_PERIOD, LeafMember
from repro.shardgroup.directory import ShardDirectory
from repro.sim.trace import RunTrace

__all__ = ["ShardGroupCluster", "leaf_seed", "canonical_digest"]


def leaf_seed(cluster_seed: int, leaf: ProcessId) -> int:
    """Stable per-leaf detector RNG seed (sha256, never the salted hash)."""
    digest = hashlib.sha256(f"shardleaf:{cluster_seed}:{leaf}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def canonical_digest(trace: RunTrace) -> str:
    """sha256 over placement-independent trace lines (FULL traces only).

    Same canonicalisation discipline as the epoch-barrier sharded runner:
    ``msg_id`` (an interpreter-global counter) is excluded, everything
    protocol-visible is kept.
    """
    hasher = hashlib.sha256()
    for event in trace.events:
        message = event.message
        payload = (
            f"{message.category}:{type(message.payload).__name__}"
            if message is not None
            else ""
        )
        view = (
            ",".join(str(p) for p in event.view) if event.view is not None else ""
        )
        version = "" if event.version is None else str(event.version)
        peer = "" if event.peer is None else str(event.peer)
        line = (
            f"{event.time:.9f}|{event.proc}|{event.kind.value}"
            f"|{event.index}|{peer}|{payload}|{version}|{view}|{event.detail}\n"
        )
        hasher.update(line.encode())
    return hasher.hexdigest()


class ShardGroupCluster:
    """Core group + leaf cells in one deterministic simulation."""

    def __init__(
        self,
        n_core: int = 3,
        n_cells: int = 2,
        cell_size: int = 8,
        seed: int = 1,
        core_detector: str = "swim",
        leaf_detector: str = "lifeguard",
        leaf_detector_kwargs: Optional[dict[str, Any]] = None,
        pull_period: float = PULL_PERIOD,
        trace_level: Any = "full",
        obs: Optional[Any] = None,
    ) -> None:
        self.seed = seed
        self.core = MembershipCluster.of_size(
            n_core,
            prefix="c",
            seed=seed,
            detector=core_detector,  # type: ignore[arg-type]
            trace_level=trace_level,
            obs=obs,
        )
        self.scheduler = self.core.scheduler
        self.network = self.core.network
        self.trace = self.core.trace
        self.pull_period = pull_period
        self.leaf_detector = leaf_detector
        self.leaf_detector_kwargs = dict(leaf_detector_kwargs or {})
        self.directories: dict[ProcessId, ShardDirectory] = {
            member: ShardDirectory(process)
            for member, process in self.core.members.items()
        }
        self.core_pids = tuple(self.core.members)
        self.leaves: dict[ProcessId, LeafMember] = {}
        self.cells: dict[str, tuple[ProcessId, ...]] = {}
        for index in range(n_cells):
            cell = f"s{index}"
            roster = tuple(
                pid(f"{cell}-l{i}") for i in range(cell_size)
            )
            self.cells[cell] = roster
            for directory in self.directories.values():
                directory.bootstrap(cell, roster)
            for leaf in roster:
                self._build_leaf(cell, leaf, bootstrap=roster)
        self._started = False

    # ------------------------------------------------------------- builders

    def _make_leaf_detector(self, leaf: ProcessId):
        cls = (
            LifeguardDetector if self.leaf_detector == "lifeguard" else SwimDetector
        )
        return cls(
            self.network,
            rng=random.Random(leaf_seed(self.seed, leaf)),
            **self.leaf_detector_kwargs,
        )

    def _build_leaf(
        self,
        cell: str,
        leaf: ProcessId,
        bootstrap: tuple[ProcessId, ...] = (),
    ) -> LeafMember:
        process = LeafMember(
            leaf,
            self.network,
            cell,
            self._make_leaf_detector(leaf),
            core=self.core_pids,
            pull_period=self.pull_period,
        )
        if bootstrap:
            # Pre-seed the same ops every directory replica bootstrapped
            # with, so leaf and core versions align without any messages.
            from repro.shardgroup.messages import CellOp

            for member in bootstrap:
                process.registry.apply(CellOp("admit", member))
        self.leaves[leaf] = process
        return process

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        self.core.start()
        for directory in self.directories.values():
            directory.activate_initial()
        for leaf in self.leaves.values():
            leaf.start()
        self._started = True

    def run(self, until: float, max_events: int = 10_000_000) -> None:
        self.scheduler.run(until=until, max_events=max_events)

    def settle(self, max_events: int = 10_000_000) -> None:
        self.scheduler.run(max_events=max_events)

    # -------------------------------------------------------------- actions

    def coordinator_directory(self) -> ShardDirectory:
        live = self.core.live_members()
        if not live:
            raise RuntimeError("no live core members")
        return self.directories[live[0].state.mgr]

    def crash_leaf(self, leaf: ProcessId | str, at: Optional[float] = None) -> None:
        target = self.leaves[pid(leaf) if isinstance(leaf, str) else leaf]
        if at is None:
            target.crash()
        else:
            self.scheduler.at(at, target.crash)

    def schedule_admit(self, cell: str, leaf: ProcessId | str, at: float) -> None:
        """At ``at``: spawn a new leaf and route its admission to the core.

        The admission travels as a :class:`LeafAdmitRequest` handed to a
        live replica: a non-coordinator forwards it, and a coordinator
        mid-reconciliation defers it until the directory is writable — no
        cluster-level polling loop.  The new leaf bootstraps itself: with
        an empty roster it elects itself delegate and pulls the cell
        snapshot from the core.
        """
        name = pid(leaf) if isinstance(leaf, str) else leaf

        def admit() -> None:
            live = self.core.live_members()
            if not live:
                raise RuntimeError("no live core members to admit through")
            process = self._build_leaf(cell, name)
            process.start()
            self.directories[live[0].pid].request_admit(cell, name)

        self.scheduler.at(at, admit)

    def crash_core(self, who: ProcessId | str, at: Optional[float] = None) -> None:
        self.core.crash(who, at=at)

    def partition_core(self, side_a, side_b) -> None:
        self.core.partition(side_a, side_b)

    def heal(self) -> None:
        self.core.heal()

    # ------------------------------------------------------------- measures

    def core_reconfigurations(self) -> int:
        """Three-phase reconfigurations initiated anywhere in the core —
        the quantity leaf churn must never disturb."""
        return sum(m.reconfigurations for m in self.core.members.values())

    def authoritative_roster(self, cell: str) -> tuple[ProcessId, ...]:
        return self.coordinator_directory().registry(cell).members()

    def issued_writes(self) -> dict[tuple[str, int], float]:
        merged: dict[tuple[str, int], float] = {}
        for directory in self.directories.values():
            merged.update(directory.issued_at)
        return merged

    def convergence_report(
        self,
        horizon: Optional[float] = None,
        grace: float = 0.0,
    ) -> list[dict[str, Any]]:
        """Per roster write: how long until every live leaf applied it.

        With ``horizon`` set, a write still in flight that was issued
        within ``grace`` of it is marked censored (the run ended before a
        dissemination cycle could complete), not unconverged.
        """
        report = []
        for (cell, version), issued in sorted(self.issued_writes().items()):
            final_roster = set(self.authoritative_roster(cell))
            applied: list[float] = []
            laggards: list[str] = []
            members = [
                p
                for p, process in self.leaves.items()
                if process.cell == cell
                and not process.crashed
                and p in final_roster
                # A leaf admitted after the write back-fills old versions
                # at join time; don't let that skew the latency.
                and process.created_at <= issued
            ]
            for member in members:
                when = self.leaves[member].applied_at.get(version)
                if when is None:
                    laggards.append(str(member))
                else:
                    applied.append(when)
            converged = not laggards and bool(members)
            censored = (
                not converged
                and horizon is not None
                and issued > horizon - grace
            )
            report.append(
                {
                    "cell": cell,
                    "version": version,
                    "issued_at": issued,
                    "converged": converged,
                    "censored": censored,
                    "latency": (max(applied) - issued) if converged else None,
                    "laggards": laggards,
                }
            )
        return report

    def trace_digest(self) -> str:
        return canonical_digest(self.trace)
