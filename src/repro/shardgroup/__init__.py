"""Sharded membership: a GMP core authority over detector-run leaf cells.

The paper's §8 hierarchy — "the group might be a set of clients with
exclusion from it modelling the end of that client's need for the
service" — generalised into the ROADMAP's million-member north star:

* a small **core group** runs the full GMP (three-phase reconfiguration,
  invisible commits, S1 isolation) and is the single membership authority;
* **leaf cells** of ~100 members each run a SWIM/Lifeguard detector over
  themselves only — O(1) per-leaf load regardless of total population;
* cell rosters replicate by **version-vector digests and anti-entropy
  delta pulls** (Rapid-style), never by full-state rebroadcast, so one
  roster change costs O(cell) messages, not O(total).

See docs/SHARDING.md for the architecture and the ``repro bench
--scale-sharded`` curve that measures it.
"""

from repro.shardgroup.cell import CoreStub, LeafMember
from repro.shardgroup.cluster import ShardGroupCluster
from repro.shardgroup.directory import CellRegistry, DeltaLog, ShardDirectory
from repro.shardgroup.messages import (
    CellDelta,
    CellOp,
    DeltaRequest,
    DigestRequest,
    LeafAdmitRequest,
    LeafFailureReport,
    ShardUpdate,
    ViewDigest,
)

__all__ = [
    "CellDelta",
    "CellOp",
    "CellRegistry",
    "CoreStub",
    "DeltaLog",
    "DeltaRequest",
    "DigestRequest",
    "LeafAdmitRequest",
    "LeafFailureReport",
    "LeafMember",
    "ShardDirectory",
    "ShardGroupCluster",
    "ShardUpdate",
    "ViewDigest",
]
