"""``repro bench --scale-sharded`` — the hierarchy at 10^5..10^6 leaves.

The claim under test is Section 8's: a two-level hierarchy keeps the
per-member cost of membership *flat* as the system grows, because the
expensive three-phase GMP runs only over a small core while leaves live in
fixed-size cells whose detector and dissemination traffic is O(cell), not
O(n).  Total simulated membership then scales by adding cells, and the
bench's gate is exactly that flatness: leaf msgs/process/round at the
largest n must stay within 2x of the smallest.

Two arms per (n, seed) point, both driving the identical
:func:`~repro.workloads.shard_churn.standard_churn` plan per cell:

* **control** — one full :class:`~repro.shardgroup.cluster.
  ShardGroupCluster` (3-member GMP core + ``CONTROL_CELLS`` real cells in a
  single scheduler).  Produces the zero-core-reconfiguration check and the
  end-to-end view-convergence latency through the real core path.
* **satellites** — every remaining cell as an independent leaf-only
  simulation against a :class:`~repro.shardgroup.cell.CoreStub`, fanned out
  with :func:`~repro.runner.pool.parallel_map`.  Cell seeds come from
  :func:`~repro.runner.shard.derive_group_seed`, so results are identical
  no matter how the fan-out is scheduled.

Satellite cells are the load measurement: their traffic is pure leaf-layer
traffic (detector + shard categories), uncontaminated by core GMP chatter.
"""

from __future__ import annotations

import random
import time
from typing import Any, Optional, Sequence

from repro.detectors import LifeguardDetector, SwimDetector
from repro.ids import ProcessId, pid
from repro.runner.pool import parallel_map
from repro.runner.shard import derive_group_seed
from repro.shardgroup.cell import PULL_PERIOD, CoreStub, LeafMember
from repro.shardgroup.cluster import ShardGroupCluster, leaf_seed
from repro.shardgroup.messages import SHARD_CATEGORY, CellOp
from repro.sim.network import Network, UniformDelay
from repro.sim.scheduler import Scheduler
from repro.sim.trace import RunTrace
from repro.workloads.qos import ROUND_PERIOD
from repro.workloads.shard_churn import CellChurnPlan, standard_churn

__all__ = [
    "CELL_SIZE",
    "CONTROL_CELLS",
    "CONVERGENCE_GRACE",
    "SHARD_DURATION",
    "satellite_cell",
    "sharded_scale_cell",
]

#: leaves per cell — fixed, so total membership scales by cell count.
CELL_SIZE = 100

#: cells simulated in full (with the real GMP core) per scale point.
CONTROL_CELLS = 2

#: simulated seconds per cell (20 probe rounds of ROUND_PERIOD).  Sized
#: for the slowest leg of the churn pipeline: crash at t=6, cell-wide
#: gossip conviction can take until ~t=25, expel + delegate pull +
#: rebroadcast another ~6s — 40s leaves margin without padding the sweep.
SHARD_DURATION = 40.0

#: leaf detector tuning: cells are small and local, so convict fast.
LEAF_DETECTOR_KWARGS = {"probe_timeout": 3.0, "suspicion_timeout": 4.0}

#: A write issued with less than this much sim-time left before the
#: horizon cannot complete a dissemination cycle (delegate pull period +
#: cell rebroadcast + delay tail) before the run ends.  Such a write is
#: *censored* by the horizon — reported separately, not a failure.  The
#: tail matters at scale: across ~1000 cells a handful of cells convict
#: their crashed leaf 25-30s post-crash, pushing the expel write into
#: the last few seconds of the run.
CONVERGENCE_GRACE = 10.0


def _leaf_detector(kind: str, network: Network, cell_seed: int, member: ProcessId):
    cls = LifeguardDetector if kind == "lifeguard" else SwimDetector
    return cls(
        network,
        rng=random.Random(leaf_seed(cell_seed, member)),
        **LEAF_DETECTOR_KWARGS,
    )


def _convergence_rows(
    issued: dict[tuple[str, int], float],
    leaves: dict[ProcessId, LeafMember],
    final_roster: frozenset[ProcessId],
    horizon: Optional[float] = None,
) -> list[dict[str, Any]]:
    """Per roster write: latency until every eligible live leaf applied it.

    Eligible = live, on the final authoritative roster, and created before
    the write was issued (a later-admitted leaf back-fills old versions at
    join time, which is catch-up, not dissemination).  A write still in
    flight that was issued within ``CONVERGENCE_GRACE`` of ``horizon`` is
    marked censored rather than unconverged.
    """
    rows: list[dict[str, Any]] = []
    for (cell, version), at in sorted(issued.items()):
        applied: list[float] = []
        laggards: list[str] = []
        for member, process in leaves.items():
            if process.crashed or member not in final_roster:
                continue
            if process.created_at > at:
                continue
            when = process.applied_at.get(version)
            if when is None:
                laggards.append(str(member))
            else:
                applied.append(when)
        converged = not laggards and bool(applied)
        censored = (
            not converged
            and horizon is not None
            and at > horizon - CONVERGENCE_GRACE
        )
        rows.append(
            {
                "cell": cell,
                "version": version,
                "converged": converged,
                "censored": censored,
                "latency": (max(applied) - at) if converged else None,
                "laggards": laggards,
            }
        )
    return rows


def _summarise_convergence(rows: Sequence[dict[str, Any]]) -> dict[str, Any]:
    latencies = [r["latency"] for r in rows if r["latency"] is not None]
    censored = sum(1 for r in rows if r.get("censored"))
    return {
        "writes": len(rows),
        "converged": sum(1 for r in rows if r["converged"]),
        "unconverged": sum(
            1 for r in rows if not r["converged"] and not r.get("censored")
        ),
        "censored": censored,
        "mean_latency": (sum(latencies) / len(latencies)) if latencies else None,
        "max_latency": max(latencies) if latencies else None,
    }


def satellite_cell(job: dict[str, Any]) -> dict[str, Any]:
    """One leaf-only cell simulation (top-level, picklable).

    ``job`` keys: ``cell_index``, ``seed`` (root), and optionally
    ``cell_size``, ``duration``, ``detector``, ``pull_period``.
    """
    cell_index = job["cell_index"]
    root_seed = job["seed"]
    cell_size = job.get("cell_size", CELL_SIZE)
    duration = job.get("duration", SHARD_DURATION)
    detector = job.get("detector", "lifeguard")
    pull_period = job.get("pull_period", PULL_PERIOD)
    cell = f"s{cell_index}"
    cell_seed = derive_group_seed(root_seed, cell_index)

    scheduler = Scheduler()
    trace = RunTrace(level="counts")
    network = Network(
        scheduler, trace, delay_model=UniformDelay(0.5, 2.0), seed=cell_seed
    )
    roster = tuple(pid(f"{cell}-l{i}") for i in range(cell_size))
    plan = standard_churn(cell, roster)
    stub = CoreStub(
        pid(f"{cell}-core"),
        network,
        cell,
        script=((plan.admit_at, CellOp("admit", plan.admit_leaf)),),
    )
    leaves: dict[ProcessId, LeafMember] = {}

    def build_leaf(member: ProcessId, bootstrap: bool) -> LeafMember:
        process = LeafMember(
            member,
            network,
            cell,
            _leaf_detector(detector, network, cell_seed, member),
            core=(stub.pid,),
            pull_period=pull_period,
        )
        if bootstrap:
            for peer in roster:
                process.registry.apply(CellOp("admit", peer))
        leaves[member] = process
        return process

    for member in roster:
        stub.registry.apply(CellOp("admit", member))
        build_leaf(member, bootstrap=True)
    stub.start()
    for process in leaves.values():
        process.start()
    scheduler.at(plan.crash_at, leaves[plan.crash_leaf].crash)
    # The replacement starts with an empty roster: it elects itself
    # delegate and bootstraps by pulling the cell snapshot from the core.
    scheduler.at(
        plan.admit_at, lambda: build_leaf(plan.admit_leaf, bootstrap=False).start()
    )
    scheduler.run(until=duration, max_events=5_000_000)

    counts = trace.message_counts_by_category()
    rows = _convergence_rows(
        stub.issued_at,
        leaves,
        frozenset(stub.registry.members()),
        horizon=duration,
    )
    return {
        "cell": cell,
        "leaves": cell_size,
        "events": scheduler.events_run,
        "detector_msgs": counts.get("detector", 0),
        "shard_msgs": counts.get(SHARD_CATEGORY, 0),
        "expelled": plan.crash_leaf not in stub.registry,
        "admitted": plan.admit_leaf in stub.registry,
        "convergence": _summarise_convergence(rows),
    }


def _control_run(
    n_cells: int,
    cell_size: int,
    seed: int,
    duration: float,
    detector: str,
) -> dict[str, Any]:
    """The full-core control arm: churn every cell, settle, measure."""
    cluster = ShardGroupCluster(
        n_core=3,
        n_cells=n_cells,
        cell_size=cell_size,
        seed=seed,
        leaf_detector=detector,
        leaf_detector_kwargs=dict(LEAF_DETECTOR_KWARGS),
        trace_level="counts",
    )
    plans: list[CellChurnPlan] = [
        standard_churn(cell, roster) for cell, roster in cluster.cells.items()
    ]
    cluster.start()
    for plan in plans:
        plan.apply_to_cluster(cluster)
    cluster.run(until=duration)

    rows = cluster.convergence_report(horizon=duration, grace=CONVERGENCE_GRACE)
    counts = cluster.trace.message_counts_by_category()
    rosters = {cell: cluster.authoritative_roster(cell) for cell in cluster.cells}
    return {
        "cells": n_cells,
        "leaves": n_cells * cell_size,
        "events": cluster.scheduler.events_run,
        "core_reconfigurations": cluster.core_reconfigurations(),
        "detector_msgs": counts.get("detector", 0),
        "shard_msgs": counts.get(SHARD_CATEGORY, 0),
        "protocol_msgs": counts.get("protocol", 0),
        "churn_applied": all(
            plan.crash_leaf not in rosters[plan.cell]
            and plan.admit_leaf in rosters[plan.cell]
            for plan in plans
        ),
        "convergence": _summarise_convergence(rows),
    }


def sharded_scale_cell(
    n: int,
    seed: int = 1,
    cell_size: int = CELL_SIZE,
    duration: float = SHARD_DURATION,
    detector: str = "lifeguard",
    workers: Optional[int] = None,
) -> dict[str, Any]:
    """One ``--scale-sharded`` point: n simulated leaves under full churn.

    ``n`` is rounded down to a whole number of cells (at least
    ``CONTROL_CELLS + 1``, so there is always a satellite population to
    measure leaf load on).
    """
    n_cells = max(n // cell_size, CONTROL_CELLS + 1)
    start = time.perf_counter()  # lint: allow[DET101]
    control = _control_run(CONTROL_CELLS, cell_size, seed, duration, detector)
    jobs = [
        {
            "cell_index": index,
            "seed": seed,
            "cell_size": cell_size,
            "duration": duration,
            "detector": detector,
        }
        for index in range(CONTROL_CELLS, n_cells)
    ]
    satellites = parallel_map(satellite_cell, jobs, workers=workers)
    wall = time.perf_counter() - start  # lint: allow[DET101]

    sat_leaves = sum(s["leaves"] for s in satellites)
    sat_msgs = sum(s["detector_msgs"] + s["shard_msgs"] for s in satellites)
    rounds = duration / ROUND_PERIOD
    per_cell_load = [
        (s["detector_msgs"] + s["shard_msgs"]) / (s["leaves"] * rounds)
        for s in satellites
    ]
    sat_latencies = [
        s["convergence"]["max_latency"]
        for s in satellites
        if s["convergence"]["max_latency"] is not None
    ]
    return {
        "n": n_cells * cell_size,
        "requested_n": n,
        "seed": seed,
        "cells": n_cells,
        "cell_size": cell_size,
        "duration": duration,
        "detector": detector,
        "wall_s": wall,
        "events": control["events"] + sum(s["events"] for s in satellites),
        "leaf_msgs_per_process_per_round": (
            sat_msgs / (sat_leaves * rounds) if sat_leaves else 0.0
        ),
        "satellite": {
            "cells": len(satellites),
            "leaves": sat_leaves,
            "detector_msgs": sum(s["detector_msgs"] for s in satellites),
            "shard_msgs": sum(s["shard_msgs"] for s in satellites),
            "cell_load_min": min(per_cell_load) if per_cell_load else None,
            "cell_load_max": max(per_cell_load) if per_cell_load else None,
            "churn_applied": all(
                s["expelled"] and s["admitted"] for s in satellites
            ),
            "writes": sum(s["convergence"]["writes"] for s in satellites),
            "unconverged_writes": sum(
                s["convergence"]["unconverged"] for s in satellites
            ),
            "censored_writes": sum(
                s["convergence"]["censored"] for s in satellites
            ),
            "max_convergence_latency": (
                max(sat_latencies) if sat_latencies else None
            ),
        },
        "control": control,
    }
