"""Wire messages of the sharded membership layer.

All shard-layer traffic is sent with ``category="shard"`` so the bench can
charge it separately from the core GMP (``protocol``) and the leaf SWIM
fabric (``detector``), mirroring the Section 7.2 accounting discipline.

The dissemination model is digest + anti-entropy pull (not full-state
rebroadcast):

* the authority's replicated state is a set of per-cell rosters, each with
  its own monotone version — a **version vector** keyed by cell name;
* :class:`ViewDigest` carries only the vector; a receiver that is behind
  on some cell answers with a :class:`DeltaRequest` for that cell;
* :class:`CellDelta` replies with the exact missing suffix of
  :class:`CellOp` records, falling back to a roster snapshot only when the
  sender's bounded delta log has been truncated past the requested point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ids import ProcessId

__all__ = [
    "SHARD_CATEGORY",
    "CellOp",
    "ShardUpdate",
    "ViewDigest",
    "DigestRequest",
    "DeltaRequest",
    "CellDelta",
    "LeafFailureReport",
    "LeafAdmitRequest",
]

#: traffic category for everything in this module.
SHARD_CATEGORY = "shard"


@dataclass(frozen=True, slots=True)
class CellOp:
    """One roster change in one cell."""

    kind: str  # 'admit' | 'expel'
    leaf: ProcessId

    def __post_init__(self) -> None:
        if self.kind not in ("admit", "expel"):
            raise ValueError(f"unknown cell op {self.kind!r}")


@dataclass(frozen=True, slots=True)
class ShardUpdate:
    """Core coordinator -> core replicas: ``op`` produced cell version ``version``."""

    cell: str
    op: CellOp
    version: int


@dataclass(frozen=True, slots=True)
class ViewDigest:
    """Version vector over cells: ``((cell, version), ...)``, sorted by cell.

    Small and O(cells) regardless of how many leaves the cells hold — the
    whole point of digest dissemination.
    """

    versions: tuple[tuple[str, int], ...]


@dataclass(frozen=True, slots=True)
class DigestRequest:
    """Solicit a :class:`ViewDigest` (new-coordinator reconciliation)."""


@dataclass(frozen=True, slots=True)
class DeltaRequest:
    """Anti-entropy pull: ops of ``cell`` after local version ``since``."""

    cell: str
    since: int


@dataclass(frozen=True, slots=True)
class CellDelta:
    """Pull reply: the op suffix taking ``since`` to ``version``.

    ``ops[i]`` produces version ``since + i + 1``.  When the responder's
    delta log no longer reaches back to ``since``, ``ops`` is empty and
    ``snapshot`` carries the full roster at ``version`` instead.
    """

    cell: str
    since: int
    ops: tuple[CellOp, ...]
    version: int
    snapshot: Optional[tuple[ProcessId, ...]] = None


@dataclass(frozen=True, slots=True)
class LeafFailureReport:
    """Cell delegate -> core: a leaf of ``cell`` appears to have failed."""

    cell: str
    leaf: ProcessId


@dataclass(frozen=True, slots=True)
class LeafAdmitRequest:
    """Admission routed to the core: admit ``leaf`` into ``cell``.

    Like :class:`LeafFailureReport`, any replica may receive one; a
    non-coordinator forwards it to the coordinator, which defers it while
    reconciling instead of writing on a possibly-stale registry.
    """

    cell: str
    leaf: ProcessId
