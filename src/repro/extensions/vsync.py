"""View-synchronous multicast on top of the membership protocol.

This is the layer the paper's membership service exists to support (its
authors' ISIS system [3, 4]): application multicasts delivered relative to
the agreed sequence of views, so that all surviving members of a view agree
on *exactly which* messages belong to it.

Guarantees provided (and tested in ``tests/test_extensions_vsync.py``):

* **per-sender FIFO** within a view (inherited from the FIFO channels);
* **view attribution** — every delivery is labelled with the view version
  the sender multicast it in;
* **same-set delivery** — for every view version v, all members that
  survive v deliver the same set of view-v messages, even when senders
  crash partway through their multicast broadcasts.

The mechanism is the classic flush: before a member *agrees* to a view
change (the :meth:`~repro.core.member.AppLayer.before_view_agreement`
hook — invoked before every OK it sends for the new view, and before a
coordinator commits it), it re-broadcasts every view-v message it has
delivered from senders it believes faulty.  Over reliable FIFO channels a
*live* sender's multicast reaches everyone without help; only a crashed
sender's multicast can have reached a mere subset, and any survivor holding
such a message forwards it to the full view before agreeing — so either no
survivor has it (dropped everywhere) or all survivors get it.

Messages arriving after their view has locally closed are still delivered,
attributed to their original view (the set *converges*; the flush makes it
equal at every survivor).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.ids import ProcessId
from repro.model.events import EventKind
from repro.core.member import AppLayer, GMPMember

__all__ = ["VsMessage", "VsForward", "Delivery", "VsyncLayer"]


@dataclass(frozen=True, slots=True)
class VsMessage:
    """An application multicast: (origin, seq) unique within ``view_version``."""

    origin: ProcessId
    seq: int
    view_version: int
    payload: Any


@dataclass(frozen=True, slots=True)
class VsForward:
    """A flush forward: ``message`` re-sent on behalf of its (dead) origin."""

    message: VsMessage


@dataclass(frozen=True, slots=True)
class Delivery:
    """One delivered multicast, as handed to the application."""

    view_version: int
    origin: ProcessId
    seq: int
    payload: Any


class VsyncLayer(AppLayer):
    """View-synchronous multicast for one group member."""

    def __init__(
        self,
        member: GMPMember,
        deliver: Optional[Callable[[Delivery], None]] = None,
    ) -> None:
        self.member = member
        self._deliver_cb = deliver
        self._next_seq = 0
        #: all deliveries, in local delivery order.
        self.deliveries: list[Delivery] = []
        #: per view version: set of (origin, seq) delivered.
        self._seen: dict[int, set[tuple[ProcessId, int]]] = {}
        #: per view version: messages delivered (for flush forwarding).
        self._log: dict[int, list[VsMessage]] = {}
        #: view versions whose agreement we have already flushed for.
        self._flushed_for: set[int] = set()
        #: (origin, seq) pairs already forwarded (avoid re-flooding).
        self._forwarded: set[tuple[ProcessId, int]] = set()
        member.app = self

    # ------------------------------------------------------------ sending

    def multicast(self, payload: Any) -> VsMessage:
        """Multicast ``payload`` to the current view (including ourselves)."""
        member = self.member
        if not member.is_member or member.state is None:
            raise RuntimeError(f"{member.pid} is not a group member")
        self._next_seq += 1
        message = VsMessage(
            origin=member.pid,
            seq=self._next_seq,
            view_version=member.state.version,
            payload=payload,
        )
        self._deliver(message)
        member.broadcast(
            member._ordered(member.state.view), message, category="vsync"
        )
        return message

    # ----------------------------------------------------------- delivery

    def on_message(self, sender: ProcessId, payload: object) -> None:
        if isinstance(payload, VsMessage):
            self._deliver(payload)
        elif isinstance(payload, VsForward):
            self._deliver(payload.message)

    def _deliver(self, message: VsMessage) -> None:
        key = (message.origin, message.seq)
        seen = self._seen.setdefault(message.view_version, set())
        if key in seen:
            return
        seen.add(key)
        self._log.setdefault(message.view_version, []).append(message)
        delivery = Delivery(
            view_version=message.view_version,
            origin=message.origin,
            seq=message.seq,
            payload=message.payload,
        )
        self.deliveries.append(delivery)
        if self._deliver_cb is not None:
            self._deliver_cb(delivery)

    def delivered_in(self, view_version: int) -> list[Delivery]:
        """Deliveries attributed to one view, in local delivery order."""
        return [d for d in self.deliveries if d.view_version == view_version]

    def delivered_set(self, view_version: int) -> set[tuple[ProcessId, int]]:
        """The (origin, seq) set of one view — the object of the same-set
        guarantee."""
        return set(self._seen.get(view_version, set()))

    # -------------------------------------------------------------- flush

    def before_view_agreement(self, version: int) -> None:
        """Forward dead senders' messages before agreeing to the new view.

        Live senders need no help (reliable channels deliver their
        broadcasts everywhere); only messages whose origin we believe
        faulty may have reached a mere subset of the view.  All views'
        logs are scanned — a sender may be suspected several views after
        the views its partial multicasts belong to — with already-forwarded
        messages skipped.
        """
        member = self.member
        state = member.state
        if state is None or member.crashed or version in self._flushed_for:
            return
        self._flushed_for.add(version)
        forwards = [
            message
            for log in self._log.values()
            for message in log
            if message.origin != member.pid
            and member.believes_faulty(message.origin)
            and (message.origin, message.seq) not in self._forwarded
        ]
        if not forwards:
            return
        for message in forwards:
            self._forwarded.add((message.origin, message.seq))
        member.network.trace.record(
            member.pid,
            EventKind.INTERNAL,
            time=member.network.scheduler.now,
            detail=f"vsync flush for v{version}: forwarding {len(forwards)} message(s)",
        )
        for message in forwards:
            member.broadcast(state.view, VsForward(message), category="vsync")

    # ---------------------------------------------------------- view hook

    def on_view_installed(
        self, version: int, view: tuple[ProcessId, ...], mgr: ProcessId
    ) -> None:
        # Nothing to reset: sequence numbers are per-origin for the whole
        # run, and late arrivals are attributed to their original view.
        self._seen.setdefault(version, set())
        self._log.setdefault(version, [])
