"""Primary-partition tracking (§8's partition-aware variation).

"We need not require the sets S_x to be unique; some applications (for
example the Deceit File System [19] and El Abbadi and Toueg's database
consistency algorithm [1]) may wish to allow partitions to exist and have
them dealt with at a different level."

The core protocol already *prevents* split brain: a side of a partition
without a majority installs nothing.  What a replicated application needs
on top is a local predicate — *am I in the primary partition right now?* —
so it can keep serving on the majority side and refuse (or serve stale
reads) on the minority side.  :class:`PrimaryPartitionTracker` provides it:

* a view is **primary** iff it contains a majority of the previous primary
  view (the El Abbadi/Toueg chain condition);
* a member that believes a majority of its current view faulty — i.e. one
  that *would* be on the losing side of a split — reports itself
  non-primary immediately, without waiting for any view change (during a
  symmetric split nobody can install views, yet the minority must stop
  serving writes).
"""

from __future__ import annotations

from typing import Optional

from repro.ids import ProcessId, majority_size
from repro.core.member import AppLayer, GMPMember

__all__ = ["PrimaryPartitionTracker"]


class PrimaryPartitionTracker(AppLayer):
    """Tracks whether this member currently sits in the primary partition."""

    def __init__(self, member: GMPMember) -> None:
        self.member = member
        state = member.state
        self._last_primary_view: Optional[tuple[ProcessId, ...]] = (
            state.snapshot_view() if state is not None else None
        )
        self._primary_chain_intact = state is not None
        member.app = self

    # -------------------------------------------------------------- queries

    def is_primary(self) -> bool:
        """May this member serve operations requiring the primary partition?

        False while excluded, while the primary chain is broken, or while a
        majority of the current view is locally believed faulty (we are on
        the minority side of a split, whether or not a view change ever
        completes).
        """
        member = self.member
        if not member.is_member or member.state is None:
            return False
        if not self._primary_chain_intact:
            return False
        state = member.state
        live = [m for m in state.view if m not in state.ever_faulty]
        return len(live) >= majority_size(len(state.view))

    @property
    def last_primary_view(self) -> Optional[tuple[ProcessId, ...]]:
        return self._last_primary_view

    # ---------------------------------------------------------------- hooks

    def on_view_installed(
        self, version: int, view: tuple[ProcessId, ...], mgr: ProcessId
    ) -> None:
        previous = self._last_primary_view
        if previous is None:
            # A joiner's first view: it inherits primariness from the group
            # that admitted it (a non-primary group cannot commit the add).
            self._last_primary_view = view
            self._primary_chain_intact = True
            return
        overlap = sum(1 for m in view if m in previous)
        if overlap >= majority_size(len(previous)):
            self._last_primary_view = view
            self._primary_chain_intact = True
        else:
            # The chain condition failed: this view does not descend from
            # the primary lineage.  (Unreachable under the majority rule,
            # but the tracker is defensive by design.)
            self._primary_chain_intact = False
