"""Composite application layer: stack several services on one member.

A member has one ``app`` slot; :class:`CompositeLayer` fans every hook out
to multiple layers so a deployment can run, say, view-synchronous multicast
*and* a client directory on the same group.

Messages are offered to each child in order; children are expected to
ignore payload types they do not own (both bundled extensions do).
"""

from __future__ import annotations

from repro.ids import ProcessId
from repro.core.member import AppLayer, GMPMember

__all__ = ["CompositeLayer"]


class CompositeLayer(AppLayer):
    """Fan-out AppLayer."""

    def __init__(self, member: GMPMember, *layers: AppLayer) -> None:
        self.member = member
        self.layers: list[AppLayer] = list(layers)
        member.app = self

    def add(self, layer: AppLayer) -> None:
        """Append another child layer."""
        self.layers.append(layer)

    def on_message(self, sender: ProcessId, payload: object) -> None:
        for layer in self.layers:
            layer.on_message(sender, payload)

    def on_view_installed(
        self, version: int, view: tuple[ProcessId, ...], mgr: ProcessId
    ) -> None:
        for layer in self.layers:
            layer.on_view_installed(version, view, mgr)

    def before_view_agreement(self, version: int) -> None:
        for layer in self.layers:
            layer.before_view_agreement(version)
