"""Extensions from the paper's conclusion (Section 8).

The paper closes by sketching variations of its specification that other
applications would want.  This package implements the first of them:

* :mod:`repro.extensions.hierarchy` — "by not requiring processes to be
  members of their own local views, we can create a hierarchical management
  service.  The group might be a set of clients with exclusion from it
  modelling the end of that client's need for the service."  A replicated
  client directory managed *by* the member group, whose clients are
  monitored and expelled without ever running the membership protocol
  themselves.

* :mod:`repro.extensions.vsync` — view-synchronous multicast, the ISIS
  layer the membership service exists to support: application multicasts
  attributed to agreed views, with a flush on view agreement that closes
  each view's delivery set identically at every survivor.

Extensions attach to members through :class:`repro.core.member.AppLayer` —
the same hook an ISIS-style toolkit would use to build services on the
membership abstraction.
"""

from repro.extensions.compose import CompositeLayer
from repro.extensions.hierarchy import ClientDirectory, ClientView
from repro.extensions.partitions import PrimaryPartitionTracker
from repro.extensions.vsync import Delivery, VsyncLayer

__all__ = [
    "ClientDirectory",
    "ClientView",
    "VsyncLayer",
    "Delivery",
    "CompositeLayer",
    "PrimaryPartitionTracker",
]
