"""Hierarchical management: a client group managed by the member group (§8).

"The group might be a set of clients with exclusion from it modelling the
end of that client's need for the service."  Clients never run the
membership protocol; the server group maintains a replicated *client view*
on their behalf:

* the **coordinator of the current membership view** is the single writer:
  it serialises client admissions/expulsions and broadcasts
  :class:`ClientUpdate` records, numbered by a client-view version;
* members apply updates in order; a gap triggers a :class:`ClientSyncRequest`
  to the coordinator (full-state resynchronisation);
* on a **membership change that installs a new coordinator**, the new
  coordinator reconciles: it asks the surviving members for their client
  states, adopts the newest (single-writer-per-view makes max-version safe,
  exactly the primary-backup-over-membership pattern the paper's protocol
  exists to support), and rebroadcasts it.

This is deliberately a *layer*: it uses only the
:class:`~repro.core.member.AppLayer` hook, the agreed membership views, and
ordinary sends — demonstrating how ISIS-style tools consume the membership
abstraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.ids import ProcessId
from repro.model.events import EventKind
from repro.core.member import AppLayer, GMPMember

__all__ = [
    "ClientOp",
    "ClientUpdate",
    "ClientSyncRequest",
    "ClientState",
    "ClientView",
    "ClientDirectory",
]


@dataclass(frozen=True, slots=True)
class ClientOp:
    """One client-view change."""

    kind: str  # 'admit' | 'expel'
    client: ProcessId

    def __post_init__(self) -> None:
        if self.kind not in ("admit", "expel"):
            raise ValueError(f"unknown client op {self.kind!r}")


@dataclass(frozen=True, slots=True)
class ClientUpdate:
    """Coordinator -> members: apply ``op`` producing client version ``version``."""

    op: ClientOp
    version: int


@dataclass(frozen=True, slots=True)
class ClientSyncRequest:
    """Ask the target for its full client state (reconciliation/catch-up)."""


@dataclass(frozen=True, slots=True)
class ClientState:
    """Full client-view snapshot."""

    clients: tuple[ProcessId, ...]
    version: int


@dataclass(frozen=True, slots=True)
class ClientView:
    """What applications read: the current client set and its version."""

    clients: tuple[ProcessId, ...]
    version: int

    def __contains__(self, client: ProcessId) -> bool:
        return client in self.clients


@dataclass
class _Registry:
    clients: list[ProcessId] = field(default_factory=list)
    version: int = 0

    def snapshot(self) -> ClientView:
        return ClientView(tuple(self.clients), self.version)

    def apply(self, op: ClientOp) -> bool:
        if op.kind == "admit":
            if op.client in self.clients:
                return False
            self.clients.append(op.client)
        else:
            if op.client not in self.clients:
                return False
            self.clients.remove(op.client)
        self.version += 1
        return True


class ClientDirectory(AppLayer):
    """The replicated client registry, one instance per member."""

    def __init__(self, member: GMPMember, sync_timeout: float = 15.0) -> None:
        self.member = member
        self.sync_timeout = sync_timeout
        self.registry = _Registry()
        #: highest membership view version in which we acted as coordinator
        #: and have completed reconciliation.
        self._reconciled_as_mgr: Optional[int] = None
        #: pending reconciliation: responses awaited from these members.
        self._sync_pending: set[ProcessId] = set()
        self._sync_best: Optional[ClientState] = None
        #: a catch-up ``ClientSyncRequest`` is in flight to the coordinator;
        #: further gapped updates must not amplify into more full-state syncs.
        self._catch_up_inflight = False
        #: bumped whenever an in-flight reconciliation is abandoned or
        #: completes, so stale sync-deadline timers become no-ops.
        self._sync_epoch = 0
        member.app = self

    # --------------------------------------------------------------- reads

    @property
    def view(self) -> ClientView:
        return self.registry.snapshot()

    def _is_coordinator(self) -> bool:
        state = self.member.state
        return state is not None and state.mgr == self.member.pid

    # ----------------------------------------------------- coordinator API

    def admit(self, client: ProcessId) -> bool:
        """Admit a client (coordinator only).  Returns False if redundant."""
        return self._coordinate(ClientOp("admit", client))

    def expel(self, client: ProcessId) -> bool:
        """Expel a client — "the end of that client's need for the service"."""
        return self._coordinate(ClientOp("expel", client))

    def report_client_failure(self, client: ProcessId) -> None:
        """Any member may report a monitored client as failed; the report
        is routed to the coordinator, which expels the client."""
        if self._is_coordinator():
            self.expel(client)
            return
        state = self.member.state
        if state is not None and not self.member.believes_faulty(state.mgr):
            self.member.send(state.mgr, _ClientFailureReport(client))

    def _coordinate(self, op: ClientOp) -> bool:
        if not self._is_coordinator():
            raise RuntimeError(
                f"{self.member.pid} is not the coordinator; route client "
                "operations to the coordinator"
            )
        if not self.registry.apply(op):
            return False
        self._record(f"client-{op.kind}: {op.client} -> v{self.registry.version}")
        update = ClientUpdate(op=op, version=self.registry.version)
        state = self.member.state
        assert state is not None
        self.member.broadcast(state.view, update, category="clients")
        return True

    # ------------------------------------------------------------ messages

    def on_message(self, sender: ProcessId, payload: object) -> None:
        if isinstance(payload, ClientUpdate):
            self._on_update(sender, payload)
        elif isinstance(payload, ClientSyncRequest):
            self.member.send(
                sender,
                ClientState(
                    clients=tuple(self.registry.clients),
                    version=self.registry.version,
                ),
                category="clients",
            )
        elif isinstance(payload, ClientState):
            self._on_state(sender, payload)
        elif isinstance(payload, _ClientFailureReport):
            if self._is_coordinator() and payload.client in self.registry.clients:
                self.expel(payload.client)

    def _on_update(self, sender: ProcessId, update: ClientUpdate) -> None:
        state = self.member.state
        if state is None or sender != state.mgr:
            return  # only the current coordinator writes
        if update.version <= self.registry.version:
            return  # duplicate
        if update.version == self.registry.version + 1:
            self.registry.apply(update.op)
            return
        # Gap: fall back to full resynchronisation — but at most one
        # in-flight request, or one lost burst amplifies into many syncs.
        if not self._catch_up_inflight:
            self._catch_up_inflight = True
            self.member.send(sender, ClientSyncRequest(), category="clients")

    def _on_state(self, sender: ProcessId, snapshot: ClientState) -> None:
        if sender in self._sync_pending:
            # A reconciliation response we solicited (we are the new
            # coordinator).  Unsolicited snapshots — e.g. a prior
            # coordinator's rebroadcast — must not be folded in here.
            self._sync_pending.discard(sender)
            best = self._sync_best
            if best is None or snapshot.version > best.version:
                self._sync_best = snapshot
            if not self._sync_pending:
                self._finish_reconciliation()
            return
        # Catch-up response from the coordinator.
        state = self.member.state
        if state is not None and sender == state.mgr:
            self._catch_up_inflight = False
            if snapshot.version > self.registry.version:
                self.registry.clients = list(snapshot.clients)
                self.registry.version = snapshot.version

    # --------------------------------------------------------- view changes

    def on_view_installed(
        self, version: int, view: tuple[ProcessId, ...], mgr: ProcessId
    ) -> None:
        if mgr != self.member.pid:
            # Coordinatorship is elsewhere (or moved away).  Clear the
            # reconciliation marker so a deposed-then-re-elected coordinator
            # reconciles again instead of rebroadcasting a stale registry,
            # and abandon any reconciliation it had in flight.
            self._step_down()
            return
        self._begin_reconciliation(version, view)

    def on_coordinator_changed(self, version: int, mgr: ProcessId) -> None:
        # Coordinatorship can move without a view install on this member —
        # install callbacks fire before ``set_mgr``, and on the
        # invisible-commit path no install happens at all — so this hook,
        # not ``on_view_installed``, is what actually sees failover.
        if mgr != self.member.pid:
            self._step_down()
            return
        state = self.member.state
        if state is not None:
            self._begin_reconciliation(version, state.snapshot_view())

    def _begin_reconciliation(
        self, version: int, view: tuple[ProcessId, ...]
    ) -> None:
        if self._reconciled_as_mgr is not None:
            return  # already the established writer
        # We just became the coordinator: reconcile the client registry
        # before accepting new client operations.
        self._reconciled_as_mgr = version
        self._catch_up_inflight = False
        others = [
            m
            for m in view
            if m != self.member.pid and not self.member.believes_faulty(m)
        ]
        if not others:
            self._finish_reconciliation()
            return
        self._sync_pending = set(others)
        self._sync_best = ClientState(
            clients=tuple(self.registry.clients), version=self.registry.version
        )
        for target in others:
            self.member.send(target, ClientSyncRequest(), category="clients")
        # A respondent may crash mid-sync; do not wait forever for it.  The
        # epoch guard keeps a deadline armed for an abandoned reconciliation
        # from cutting short a later one.
        epoch = self._sync_epoch
        self.member.set_timer(self.sync_timeout, lambda: self._sync_deadline(epoch))

    def _step_down(self) -> None:
        self._reconciled_as_mgr = None
        if self._sync_pending:
            self._sync_epoch += 1
        self._sync_pending = set()
        self._sync_best = None
        self._catch_up_inflight = False

    def _sync_deadline(self, epoch: int) -> None:
        if epoch == self._sync_epoch and self._sync_pending:
            self._sync_pending = set()
            self._finish_reconciliation()

    def _finish_reconciliation(self) -> None:
        best = self._sync_best
        self._sync_best = None
        self._sync_pending = set()
        self._sync_epoch += 1
        if best is not None and best.version > self.registry.version:
            self.registry.clients = list(best.clients)
            self.registry.version = best.version
        self._record(
            f"client registry reconciled at v{self.registry.version} "
            f"({len(self.registry.clients)} clients)"
        )
        # Rebroadcast the authoritative state so stragglers converge.
        state = self.member.state
        if state is not None and not self.member.crashed:
            snapshot = ClientState(
                clients=tuple(self.registry.clients), version=self.registry.version
            )
            self.member.broadcast(state.view, snapshot, category="clients")

    def _record(self, detail: str) -> None:
        if not self.member.crashed:
            self.member.network.trace.record(
                self.member.pid,
                EventKind.INTERNAL,
                time=self.member.network.scheduler.now,
                detail=detail,
            )


@dataclass(frozen=True, slots=True)
class _ClientFailureReport:
    """Member -> coordinator: a monitored client appears to have failed."""

    client: ProcessId
