"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo`` — run a small cluster through crash/reconfiguration/join and
  print the agreed view sequence;
* ``scenario <name>`` — replay one of the paper's named scenarios
  (``table1``, ``figure3``, ``figure4``, ``figure11``, ``claim71``) and
  print the verdict;
* ``sweep`` — print the §7.2 message-complexity table (paper vs measured);
* ``check`` — run a randomized storm at a given seed and report the GMP
  verdict (useful for quick fuzzing from the shell);
* ``bench`` — run the timed scenario matrix and the explorer engine
  comparison, writing machine-readable ``BENCH_results.json``;
* ``chaos`` — run an n-member *live* cluster (TCP by default) under a
  seeded deterministic fault plan and emit a machine-readable verdict:
  agreement, the GMP properties, and the transport's frame-loss
  accounting (see ``docs/ROBUSTNESS.md``);
* ``obs <file>`` — summarise a JSONL telemetry capture written by
  ``--metrics-out`` (available on ``scenario``, ``chaos`` and ``bench``):
  detection-latency / reconfiguration-duration percentiles, the span
  table, and the metric values (see ``docs/OBSERVABILITY.md``);
* ``lint`` — run the protocol-aware static analysis suite
  (see ``docs/LINTING.md``); extra arguments are forwarded to
  ``repro.lint`` (e.g. ``repro lint --format json``).
"""

from __future__ import annotations

import argparse
import random
import sys

from repro.analysis import (
    breakdown,
    compressed_update_messages,
    reconfiguration_messages,
    two_phase_update_messages,
)
from repro.core.service import MembershipCluster
from repro.properties import check_gmp, format_report
from repro.sim.failures import crash_after_matching_sends, payload_type_is
from repro.sim.network import FixedDelay

__all__ = ["main"]


def _cmd_demo(args: argparse.Namespace) -> int:
    cluster = MembershipCluster.of_size(args.size, seed=args.seed)
    cluster.start()
    cluster.crash(f"p{args.size - 1}", at=10.0)
    cluster.crash("p0", at=50.0)
    cluster.join("newcomer", at=90.0)
    cluster.settle()
    report = check_gmp(cluster.trace, cluster.initial_view)
    print(format_report(report))
    print(f"\nprotocol messages: {breakdown(cluster.trace).algorithm}")
    return 0 if report.ok else 1


def _write_metrics(obs, trace, path: str, meta: dict) -> None:
    """Archive a capture: fold the trace in, write JSONL + ``.prom`` sibling."""
    from pathlib import Path

    from repro.obs.exposition import write_jsonl, write_prometheus

    if trace is not None:
        obs.record_trace(trace)
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    write_jsonl(out, obs, meta=meta)
    write_prometheus(out.with_suffix(".prom"), obs.metrics)
    print(f"wrote {out} and {out.with_suffix('.prom')}", file=sys.stderr)


def _cmd_scenario(args: argparse.Namespace) -> int:
    from repro.baselines import OnePhaseMember, TwoPhaseReconfigMember
    from repro.workloads import scenarios

    obs = None
    if args.metrics_out is not None:
        from repro.obs import Obs

        obs = Obs()
    name = args.name
    if name == "table1":
        trace = None
        for i, row in enumerate(scenarios.TABLE1_EXPECTED, start=1):
            cluster = scenarios.run_table1_row(row, seed=args.seed, obs=obs)
            trace = cluster.trace
            initiators = sorted(scenarios.initiators_of(cluster))
            print(f"row {i}: initiators = {initiators}")
        if obs is not None:
            _write_metrics(
                obs, trace, args.metrics_out,
                {"command": "scenario", "name": name, "seed": args.seed},
            )
        return 0
    if name == "figure3":
        cluster = scenarios.run_figure3(seed=args.seed, obs=obs)
    elif name == "figure4":
        cluster = scenarios.run_figure4(seed=args.seed, obs=obs)
    elif name == "figure11":
        cluster = scenarios.run_figure11(seed=args.seed, obs=obs)
    elif name == "figure11-strawman":
        cluster = scenarios.run_figure11(
            seed=args.seed, member_class=TwoPhaseReconfigMember, strawman=True, obs=obs
        )
    elif name == "claim71":
        cluster = scenarios.run_claim71(
            seed=args.seed, member_class=OnePhaseMember, obs=obs
        )
    else:
        print(f"unknown scenario {name!r}", file=sys.stderr)
        return 2
    report = check_gmp(cluster.trace, cluster.initial_view, check_liveness=False)
    print(format_report(report))
    if obs is not None:
        _write_metrics(
            obs, cluster.trace, args.metrics_out,
            {"command": "scenario", "name": name, "seed": args.seed},
        )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    print("one exclusion (paper 3n-5) / second compressed round (2n-3) / "
          "one reconfiguration (5n-9):")
    print(f"{'n':>4} | {'3n-5':>6} {'meas':>6} | {'2n-3':>6} {'meas':>6} | "
          f"{'5n-9':>6} {'meas':>6}")
    for n in (4, 6, 8, 12, 16, 24, 32):
        one = MembershipCluster.of_size(n, seed=0, delay_model=FixedDelay(1.0))
        one.start()
        one.crash(f"p{n - 1}", at=5.0)
        one.settle()
        m1 = breakdown(one.trace).algorithm

        m2 = "-"
        if n >= 6:
            two = MembershipCluster.of_size(n, seed=0, delay_model=FixedDelay(1.0))
            two.start()
            two.crash(f"p{n - 1}", at=5.0)
            two.crash(f"p{n - 2}", at=5.1)
            two.settle()
            m2 = str(breakdown(two.trace).algorithm - m1)

        three = MembershipCluster.of_size(n, seed=0, delay_model=FixedDelay(1.0))
        three.start()
        three.crash("p0", at=5.0)
        three.settle()
        m3 = breakdown(three.trace).algorithm
        print(
            f"{n:>4} | {two_phase_update_messages(n):>6} {m1:>6} | "
            f"{compressed_update_messages(n):>6} {m2:>6} | "
            f"{reconfiguration_messages(n):>6} {m3:>6}"
        )
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    rng = random.Random(args.seed)
    n = rng.randint(4, 10)
    cluster = MembershipCluster.of_size(n, seed=args.seed)
    victims = rng.sample([f"p{i}" for i in range(n)], k=rng.randint(1, (n - 1) // 2))
    t = 5.0
    for victim in victims:
        if rng.random() < 0.4:
            crash_after_matching_sends(
                cluster.network,
                cluster.resolve(victim),
                payload_type_is("Commit", "ReconfigCommit", "Invite", "Propose"),
                after=rng.randint(1, 3),
            )
        else:
            cluster.crash(victim, at=t)
        t += rng.uniform(1.0, 25.0)
    if rng.random() < 0.5:
        cluster.join("joiner", at=rng.uniform(10.0, 60.0))
    cluster.start()
    cluster.settle(max_events=500_000)
    report = check_gmp(cluster.trace, cluster.initial_view, check_liveness=False)
    print(f"seed {args.seed}: n={n}, victims={victims}")
    print(format_report(report))
    return 0 if report.ok else 1


def _cmd_explore(args: argparse.Namespace) -> int:
    from repro.verify import explore_membership

    result = explore_membership(
        args.size,
        crash_names=args.crash or [],
        spurious=[tuple(s.split(":", 1)) for s in (args.spurious or [])],
        max_states=args.max_states,
        engine=args.engine,
        workers=args.workers,
    )
    print(
        f"explored {result.states} states, {result.terminals} terminal "
        f"schedules ({'exhaustive' if result.complete else 'bounded'}), "
        f"{len(result.outcomes)} distinct outcome(s)"
    )
    if result.ok:
        print("every explored schedule satisfies GMP-0..5")
        return 0
    path, report = result.violations[0]
    print("VIOLATION on schedule:")
    print(" ", path)
    for violation in report.violations[:3]:
        print(" ", violation)
    return 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import report
    from repro.runner.cache import ScenarioCache

    cache = ScenarioCache(root=args.cache) if args.cache is not None else None
    print(report(workers=args.workers, cache=cache))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.runner.bench import (
        check_detector_qos,
        check_obs_overhead,
        check_scale_regression,
        check_shard_section,
        check_sharded_section,
        run_bench,
        summarize,
    )
    from repro.runner.cache import ScenarioCache

    cache = ScenarioCache(root=args.cache) if args.cache is not None else None
    out = run_bench(
        quick=args.quick,
        workers=args.workers,
        out_dir=args.out,
        scale=args.scale,
        detectors=args.detectors,
        sharded=args.scale_sharded,
        cache=cache,
        metrics_out=args.metrics_out,
        profile=args.profile,
    )
    payload = json.loads(out.read_text())
    print(summarize(payload))
    print(f"\nwrote {out}")
    failures: list[str] = []
    if args.baseline is not None:
        baseline = json.loads(Path(args.baseline).read_text())
        scale_failures = check_scale_regression(payload, baseline)
        if scale_failures:
            failures += [f"REGRESSION {m}" for m in scale_failures]
        else:
            print(f"no scale regression vs {args.baseline}")
    failures += [f"OBS-OVERHEAD {m}" for m in check_obs_overhead(payload)]
    failures += [f"SHARD {m}" for m in check_shard_section(payload)]
    failures += [f"SHARDED {m}" for m in check_sharded_section(payload)]
    failures += [f"DETECTOR-QOS {m}" for m in check_detector_qos(payload)]
    failures += [
        f"STALE-CACHE {m}" for m in payload.get("cache", {}).get("stale", [])
    ]
    if failures:
        for message in failures:
            print(message)
        return 1
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.chaos import FaultPlan, run_chaos_sync

    if args.plan_only:
        plan = FaultPlan.generate(
            args.seed,
            [f"n{i}" for i in range(args.n)],
            args.duration,
            transport=args.transport,
        )
        print(json.dumps(plan.to_dict(), indent=2, sort_keys=True))
        return 0

    obs = None
    if args.metrics_out is not None:
        from repro.obs import Obs

        obs = Obs()
    verdict = run_chaos_sync(
        n=args.n,
        seed=args.seed,
        duration=args.duration,
        transport=args.transport,
        wire=args.wire,
        settle_timeout=args.settle,
        obs=obs,
    )
    payload = verdict.to_dict()
    print(json.dumps(payload, indent=2, sort_keys=True))
    if args.out is not None:
        Path(args.out).write_text(json.dumps(payload, indent=2, sort_keys=True))
    if obs is not None:
        # run_chaos already folded the trace into the capture.
        _write_metrics(
            obs, None, args.metrics_out,
            {
                "command": "chaos",
                "n": args.n,
                "seed": args.seed,
                "transport": args.transport,
                "ok": verdict.ok,
            },
        )
    return 0 if verdict.ok else 1


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs.exposition import load_jsonl
    from repro.obs.summary import summarize_records

    try:
        records = load_jsonl(args.file)
    except OSError as exc:
        print(f"cannot read {args.file}: {exc}", file=sys.stderr)
        return 2
    print(summarize_records(records), end="")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import main as lint_main

    argv: list[str] = []
    if args.root is not None:
        argv.append(args.root)
    argv += ["--format", args.format]
    if args.baseline is not None:
        argv += ["--baseline", args.baseline]
    for prefix in args.select or []:
        argv += ["--select", prefix]
    for prefix in args.ignore or []:
        argv += ["--ignore", prefix]
    if args.list_rules:
        argv.append("--list-rules")
    return lint_main(argv)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Group membership for failure detection "
        "(Ricciardi & Birman, PODC 1991) — demos and experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="crash/reconfigure/join walkthrough")
    demo.add_argument("--size", type=int, default=6)
    demo.add_argument("--seed", type=int, default=0)
    demo.set_defaults(func=_cmd_demo)

    scenario = sub.add_parser("scenario", help="replay a paper scenario")
    scenario.add_argument(
        "name",
        choices=["table1", "figure3", "figure4", "figure11", "figure11-strawman", "claim71"],
    )
    scenario.add_argument("--seed", type=int, default=0)
    scenario.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write the run's telemetry capture as JSONL (+ .prom sibling)",
    )
    scenario.set_defaults(func=_cmd_scenario)

    sweep = sub.add_parser("sweep", help="§7.2 complexity table, paper vs measured")
    sweep.set_defaults(func=_cmd_sweep)

    check = sub.add_parser("check", help="one randomized storm + GMP verdict")
    check.add_argument("--seed", type=int, default=0)
    check.set_defaults(func=_cmd_check)

    explore = sub.add_parser(
        "explore", help="exhaustively explore all schedules of a scenario"
    )
    explore.add_argument("--size", type=int, default=3)
    explore.add_argument(
        "--crash", action="append", metavar="NAME", help="member that may crash"
    )
    explore.add_argument(
        "--spurious",
        action="append",
        metavar="OBSERVER:TARGET",
        help="spurious suspicion that may fire",
    )
    explore.add_argument("--max-states", type=int, default=200_000)
    explore.add_argument(
        "--engine",
        choices=["snapshot", "deepcopy"],
        default="snapshot",
        help="snapshot = pickle forking + state dedup; deepcopy = baseline",
    )
    explore.add_argument(
        "--workers",
        type=int,
        default=None,
        help="shard independent subtrees across this many processes",
    )
    explore.set_defaults(func=_cmd_explore)

    report = sub.add_parser(
        "report", help="regenerate the headline paper-vs-measured tables"
    )
    report.add_argument(
        "--workers",
        type=int,
        default=None,
        help="run the scenario matrix across this many processes",
    )
    report.add_argument(
        "--cache",
        nargs="?",
        const=".repro-cache",
        default=None,
        metavar="DIR",
        help="reuse cached scenario results (invalidated on source change)",
    )
    report.set_defaults(func=_cmd_report)

    bench = sub.add_parser(
        "bench", help="timed scenario matrix + explorer engine comparison"
    )
    bench.add_argument(
        "--quick", action="store_true", help="small matrix for CI smoke runs"
    )
    bench.add_argument("--workers", type=int, default=None)
    bench.add_argument(
        "--out", default=".", metavar="DIR", help="where to write BENCH_results.json"
    )
    bench.add_argument(
        "--scale",
        action="store_true",
        help="add the join-churn-exclude n-sweep (10..10000) plus the "
        "sharded-simulator speedup cells",
    )
    bench.add_argument(
        "--detectors",
        action="store_true",
        help="add the detector QoS matrix (heartbeat vs SWIM vs Lifeguard: "
        "detection latency, false positives, msgs/process/round; exit 1 if "
        "SWIM's message load grows with n or Lifeguard's false positives "
        "exceed SWIM's under the slow-flaky plan)",
    )
    bench.add_argument(
        "--scale-sharded",
        action="store_true",
        help="add the sharded membership sweep (GMP core + fixed-size leaf "
        "cells up to 10^5 simulated leaves, full churn per cell; exit 1 if "
        "leaf msgs/process/round grows more than 2x with total n, leaf "
        "churn forces a core reconfiguration, or a roster write fails to "
        "converge)",
    )
    bench.add_argument(
        "--profile",
        action="store_true",
        help="cProfile the n=1000 churn hot path; write bench_profile.pstats "
        "(+ .txt rendering) next to BENCH_results.json",
    )
    bench.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="committed BENCH_results.json to diff the scale sweep against "
        "(exit 1 if churn events/sec regresses more than 30%%)",
    )
    bench.add_argument(
        "--cache",
        nargs="?",
        const=".repro-cache",
        default=None,
        metavar="DIR",
        help="cross-check measured message counts against the scenario "
        "cache shared with `repro report` (exit 1 on stale entries)",
    )
    bench.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="archive one instrumented churn run as JSONL (+ .prom sibling)",
    )
    bench.set_defaults(func=_cmd_bench)

    chaos = sub.add_parser(
        "chaos",
        help="run a live cluster under a seeded fault plan; JSON verdict",
    )
    chaos.add_argument("--n", type=int, default=4, help="cluster size")
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--duration", type=float, default=2.0, help="fault window (s)")
    chaos.add_argument("--transport", choices=["tcp", "memory"], default="tcp")
    chaos.add_argument("--wire", choices=["json", "compact"], default="json")
    chaos.add_argument(
        "--settle", type=float, default=15.0, help="post-fault agreement budget (s)"
    )
    chaos.add_argument(
        "--plan-only",
        action="store_true",
        help="print the seed's deterministic fault schedule without running",
    )
    chaos.add_argument("--out", default=None, metavar="FILE", help="also write verdict here")
    chaos.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="write the run's telemetry capture as JSONL (+ .prom sibling)",
    )
    chaos.set_defaults(func=_cmd_chaos)

    obs = sub.add_parser(
        "obs", help="summarise a JSONL telemetry capture (percentile tables)"
    )
    obs.add_argument("file", help="capture written by --metrics-out")
    obs.set_defaults(func=_cmd_obs)

    lint = sub.add_parser(
        "lint",
        help="protocol-aware static analysis (determinism, schema, mutation, "
        "async atomicity, wire conformance, span discipline)",
    )
    lint.add_argument("root", nargs="?", default=None, help="package root to scan")
    lint.add_argument("--format", choices=["text", "json", "sarif"], default="text")
    lint.add_argument("--baseline", metavar="FILE", default=None)
    lint.add_argument("--select", action="append", metavar="PREFIX")
    lint.add_argument("--ignore", action="append", metavar="PREFIX")
    lint.add_argument("--list-rules", action="store_true")
    lint.set_defaults(func=_cmd_lint)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
