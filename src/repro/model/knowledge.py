"""Executable epistemic analysis of GMP runs (the paper's Appendix).

Full epistemic model checking quantifies over *all* runs consistent with a
local history; over a single recorded run we can still check the semantic
content of the Appendix's claims, and that is what this module does:

* ``exact_view_cut(trace, x)`` constructs the canonical consistent cut along
  which ``IsSysView(x)`` holds — the union of the causal pasts of every
  INSTALL(x) event (this is the cut ``c_x`` of Theorem 6.1).
* ``hindsight_points(trace)`` locates, for every process p and version x,
  the event at which Equation 4 of the Appendix is realised: upon installing
  version x, p can conclude (by FIFO reasoning) that ``Sys^{x-1}`` *was*
  defined — ``K_p \\bar{\\Diamond} IsSysView(x-1)``.  We verify the semantic
  content: the witnessing cut for x-1 exists and strictly precedes p's
  install event wherever the two cuts overlap.
* ``is_locally_distinguishable(trace, x)`` checks the Appendix's concurrent
  common knowledge condition for runs in which Mgr never fails: ``c_x`` is
  locally distinguishable — its frontier at every surviving member of the
  view *is* that member's INSTALL(x) event, so each member can identify the
  cut from local state alone (Taylor [21]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence

from repro.errors import TraceError
from repro.ids import ProcessId
from repro.model.causality import CausalOrder
from repro.model.cuts import Cut, cut_leq, is_consistent
from repro.model.events import Event, EventKind
from repro.model.history import ProcessHistory
from repro.model.views import SystemView, view_sequences

__all__ = [
    "KnowledgeAnalysis",
    "HindsightPoint",
]


@dataclass(frozen=True, slots=True)
class HindsightPoint:
    """Where process ``proc`` attains ``K_p \\bar{\\Diamond} IsSysView(version)``."""

    proc: ProcessId
    #: the *past* version whose existence becomes known.
    version: int
    #: the install event (of ``version + 1``) at which the knowledge arises.
    at_event: Event
    #: whether the witnessing cut for ``version`` exists in the run.
    witnessed: bool


class KnowledgeAnalysis:
    """Epistemic analysis of one complete run trace."""

    def __init__(self, events: Iterable[Event]) -> None:
        self._events = list(events)
        self._causality = CausalOrder(self._events)
        self._histories: Mapping[ProcessId, ProcessHistory] = self._causality.histories
        self._installs: dict[tuple[ProcessId, int], Event] = {}
        for event in self._events:
            if event.kind is EventKind.INSTALL and event.version is not None:
                self._installs[(event.proc, event.version)] = event
        self._sequences = view_sequences(self._events)

    @property
    def histories(self) -> Mapping[ProcessId, ProcessHistory]:
        """The per-process validated histories of the analysed run."""
        return self._histories

    # ------------------------------------------------------------------ cuts

    def installers_of(self, version: int) -> list[Event]:
        """All INSTALL events for ``version``, across processes."""
        return [e for (_, v), e in sorted(
            self._installs.items(), key=lambda kv: (kv[0][0].name, kv[0][1])
        ) if v == version]

    def exact_view_cut(self, version: int) -> Optional[Cut]:
        """The canonical consistent cut along which ``IsSysView(version)`` holds.

        Returns ``None`` when nobody installed ``version``.  The cut is the
        union of the causal pasts of every INSTALL(version) event; it is
        consistent by construction (a union of causal pasts is causally
        closed) and we verify that no process has gone *past* ``version``
        along it.
        """
        installs = self.installers_of(version)
        if not installs:
            return None
        lengths: dict[ProcessId, int] = {}
        for install in installs:
            stamp = self._causality.stamp(install)
            for proc, count in stamp.as_dict().items():
                if count > lengths.get(proc, 0):
                    lengths[proc] = count
        cut = Cut(lengths)
        if not is_consistent(cut, self._histories):
            raise TraceError(
                f"union of causal pasts of INSTALL({version}) events is not "
                "consistent — the trace is malformed"
            )
        return cut

    def version_along(self, proc: ProcessId, cut: Cut) -> Optional[int]:
        """The local version of ``proc`` at the frontier of ``cut``.

        ``None`` when ``proc`` has installed nothing inside the cut (it is
        still at its initial view, or it is not part of the run).
        """
        history = self._histories.get(proc)
        if history is None:
            return None
        best: Optional[int] = None
        for event in history.events[: cut.length(proc)]:
            if event.kind is EventKind.INSTALL and event.version is not None:
                best = event.version
        return best

    def view_holds_along_cut(self, version: int) -> bool:
        """True iff the canonical cut for ``version`` exists and no installer
        of ``version`` has moved beyond it along that cut."""
        cut = self.exact_view_cut(version)
        if cut is None:
            return False
        for (proc, v), _ in self._installs.items():
            if v != version:
                continue
            at = self.version_along(proc, cut)
            if at != version:
                return False
        return True

    # ------------------------------------------------------------- hindsight

    def hindsight_points(self) -> list[HindsightPoint]:
        """Equation 4: installing x yields knowledge that Sys^{x-1} existed.

        For every INSTALL(x) event with x at least one greater than the
        installer's first version, we check that the witnessing cut for
        ``x - 1`` exists and precedes the install event in the causal order
        wherever both are defined.
        """
        points: list[HindsightPoint] = []
        for (proc, version), install in sorted(
            self._installs.items(), key=lambda kv: (kv[0][1], kv[0][0].name)
        ):
            past = version - 1
            witness = self.exact_view_cut(past)
            if witness is None:
                witnessed = past < min(
                    (v.version for seq in self._sequences.values() for v in seq),
                    default=version,
                )
                points.append(HindsightPoint(proc, past, install, witnessed))
                continue
            install_past = Cut(self._causality.stamp(install).as_dict())
            # The witness cut must not require events of `proc` beyond its
            # install point: p's knowledge is grounded in its own past.
            ok = witness.length(proc) <= install_past.length(proc)
            points.append(HindsightPoint(proc, past, install, ok))
        return points

    def hindsight_holds(self) -> bool:
        """True iff every hindsight point in the run is witnessed."""
        return all(p.witnessed for p in self.hindsight_points())

    # --------------------------------------------- concurrent common knowledge

    def is_locally_distinguishable(self, version: int) -> bool:
        """Taylor's sufficient condition for concurrent common knowledge.

        The Appendix shows that when Mgr does not fail, each install of
        version x sits on a locally distinguishable cut: every member
        received version x's commit from *one committer, in one indivisible
        broadcast*, so each member can identify the cut from local state —
        it knows every other functional member receives the very same
        broadcast.  When the committer dies mid-broadcast, the version is
        completed later by a different process's re-commit, and no receiver
        of the original commit could have known that; the cut is not
        distinguishable and only the eventual ``(E\\Diamond)^y`` chain holds.

        Concretely we require (a) exactly one process installed the version
        *without* a triggering message (the committer), (b) every other
        installer was triggered by a message from that committer, and
        (c) the committer's sends of those messages are contiguous in its
        history (one indivisible Bcast: no intervening receive).
        """
        installs = self.installers_of(version)
        if not installs:
            return False
        committer: Optional[ProcessId] = None
        trigger_send_indices: list[int] = []
        for install in installs:
            trigger = self._triggering_recv(install)
            if trigger is None:
                if committer is not None and committer != install.proc:
                    return False  # two spontaneous committers
                committer = install.proc
                continue
            sender = trigger.message.sender if trigger.message else None
            if sender is None:
                return False
            if committer is None:
                committer = sender
            elif committer != sender:
                return False  # installs triggered by different committers
            send = self._send_of(trigger)
            if send is None:
                return False
            trigger_send_indices.append(send.index)
        if committer is None:
            return False
        if trigger_send_indices:
            history = self._histories.get(committer)
            if history is None:
                return False
            lo, hi = min(trigger_send_indices), max(trigger_send_indices)
            for event in history.events[lo : hi + 1]:
                if event.kind is EventKind.RECV:
                    return False  # broadcast was not indivisible
        return True

    def _triggering_recv(self, install: Event) -> Optional[Event]:
        """The RECV whose handler performed this install (None for the
        committer, whose install is spontaneous).

        Only *version-carrying* messages count as triggers — a committer's
        install is immediately preceded by response receipts (UpdateOks),
        which do not deliver a view.
        """
        assert install.version is not None
        history = self._histories[install.proc]
        for event in reversed(history.events[: install.index]):
            if event.kind is not EventKind.RECV or event.message is None:
                continue
            payload = event.message.payload
            carried = getattr(payload, "version", None)
            if carried is None or not isinstance(carried, int):
                continue
            name = type(payload).__name__
            if name not in ("Commit", "ReconfigCommit", "StateTransfer"):
                continue
            if carried >= install.version:
                return event
            # A version-carrying message older than this install cannot be
            # its trigger; anything earlier is older still.
            return None
        return None

    def _send_of(self, recv: Event) -> Optional[Event]:
        if recv.message is None:
            return None
        sender_history = self._histories.get(recv.message.sender)
        if sender_history is None:
            return None
        for event in sender_history:
            if (
                event.kind is EventKind.SEND
                and event.message is not None
                and event.message.msg_id == recv.message.msg_id
            ):
                return event
        return None

    def common_knowledge_versions(self) -> list[int]:
        """Versions whose composition attains concurrent common knowledge."""
        versions = sorted({v for (_, v) in self._installs})
        return [v for v in versions if self.is_locally_distinguishable(v)]
