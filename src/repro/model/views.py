"""Local and system views: ``Memb(p, c)`` and ``Sys(c, S)`` (Section 2.2).

``Memb(p, c)`` is obtained by folding the REMOVE/ADD events of ``p``'s
history prefix (selected by cut ``c``) over the initial membership.  The
system view ``Sys(c, S)`` is defined when all functional members of ``S``
agree; it is ``undefined`` otherwise — we model "undefined" as ``None``.

This module also extracts, from a complete trace, the *sequence* of local
views each process installed (``Memb_p^x``) and the sequence of system views
``Sys^x`` whose existence and uniqueness GMP-2 demands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence

from repro.errors import TraceError
from repro.ids import ProcessId
from repro.model.cuts import Cut
from repro.model.events import Event, EventKind
from repro.model.history import ProcessHistory

__all__ = [
    "SystemView",
    "local_view",
    "is_down",
    "up_processes",
    "system_view",
    "view_sequences",
    "extract_system_views",
]


@dataclass(frozen=True, slots=True)
class SystemView:
    """One element of the unique sequence ``Views(r)`` of GMP-2."""

    version: int
    members: tuple[ProcessId, ...]

    def __contains__(self, proc: ProcessId) -> bool:
        return proc in self.members

    def __len__(self) -> int:
        return len(self.members)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"Sys^{self.version}{{{', '.join(map(str, self.members))}}}"


def is_down(proc: ProcessId, cut: Cut, histories: Mapping[ProcessId, ProcessHistory]) -> bool:
    """The proposition ``down(p)``: p's quit/crash event lies inside the cut."""
    history = histories.get(proc)
    if history is None:
        return False
    limit = cut.length(proc)
    return any(
        e.kind in (EventKind.QUIT, EventKind.CRASH) for e in history.events[:limit]
    )


def up_processes(
    cut: Cut, histories: Mapping[ProcessId, ProcessHistory]
) -> set[ProcessId]:
    """``UP(c)``: all processes for which ``up(p)`` holds along the cut."""
    return {p for p in histories if not is_down(p, cut, histories)}


def local_view(
    proc: ProcessId,
    cut: Cut,
    histories: Mapping[ProcessId, ProcessHistory],
    initial: Sequence[ProcessId],
) -> Optional[tuple[ProcessId, ...]]:
    """``Memb(p, c)``: fold REMOVE/ADD events in p's prefix over ``initial``.

    Returns ``None`` when ``down(p)`` holds along ``c`` (the paper leaves the
    view undefined there).  Raises :class:`TraceError` on a REMOVE of an
    absent member or ADD of a present one — those indicate a broken protocol
    implementation, not a property violation.
    """
    if is_down(proc, cut, histories):
        return None
    history = histories.get(proc)
    view = list(initial)
    if history is None:
        return tuple(view)
    for event in history.events[: cut.length(proc)]:
        if event.kind is EventKind.REMOVE:
            if event.peer not in view:
                raise TraceError(f"{proc} removed absent member {event.peer}")
            view.remove(event.peer)  # type: ignore[arg-type]
        elif event.kind is EventKind.ADD:
            if event.peer in view:
                raise TraceError(f"{proc} added already-present member {event.peer}")
            view.append(event.peer)  # type: ignore[arg-type]
    return tuple(view)


def system_view(
    cut: Cut,
    determining: Iterable[ProcessId],
    histories: Mapping[ProcessId, ProcessHistory],
    initial: Sequence[ProcessId],
) -> Optional[tuple[ProcessId, ...]]:
    """``Sys(c, S)``: the common local view of S's functional members.

    Undefined (``None``) when no member of S is functional along the cut, or
    when two functional members disagree.
    """
    views: list[tuple[ProcessId, ...]] = []
    for proc in determining:
        if is_down(proc, cut, histories):
            continue
        view = local_view(proc, cut, histories, initial)
        assert view is not None
        views.append(view)
    if not views:
        return None
    first = views[0]
    if any(set(v) != set(first) for v in views[1:]):
        return None
    return first


def view_sequences(
    events: Iterable[Event],
) -> dict[ProcessId, list[SystemView]]:
    """Per-process sequence of installed local views, from INSTALL events.

    The result maps each process to ``[Memb_p^v0, Memb_p^v0+1, ...]`` in
    installation order.  Version numbers must be strictly increasing per
    process (GMP-4 forbids going back); a violation raises
    :class:`TraceError` because it means the trace itself is inconsistent
    with being a protocol run.
    """
    sequences: dict[ProcessId, list[SystemView]] = {}
    for event in events:
        if event.kind is not EventKind.INSTALL:
            continue
        if event.version is None or event.view is None:
            raise TraceError(f"INSTALL event without version/view: {event}")
        seq = sequences.setdefault(event.proc, [])
        if seq and event.version <= seq[-1].version:
            raise TraceError(
                f"{event.proc} installed version {event.version} after "
                f"{seq[-1].version}"
            )
        seq.append(SystemView(event.version, event.view))
    return sequences


def extract_system_views(
    events: Iterable[Event],
) -> list[SystemView]:
    """The run's agreed sequence of system views, merged across processes.

    For each version installed by anyone, all installers must agree on the
    membership (this is GMP-3; disagreement raises :class:`TraceError` so
    that callers checking properties use :mod:`repro.properties`, which
    reports violations instead of raising).  The result is sorted by
    version.
    """
    by_version: dict[int, SystemView] = {}
    for proc, seq in view_sequences(events).items():
        for view in seq:
            existing = by_version.get(view.version)
            if existing is None:
                by_version[view.version] = view
            elif set(existing.members) != set(view.members):
                raise TraceError(
                    f"version {view.version} installed with different "
                    f"memberships: {existing.members} vs {view.members}"
                )
    return [by_version[v] for v in sorted(by_version)]
