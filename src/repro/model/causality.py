"""Happens-before over a run, via vector clocks (Lamport [12]).

The protocol itself never consults causality — asynchronous processes cannot
— but the specification is phrased over consistent cuts, so the property
checkers and the epistemic analysis need an oracle for ``e -> e'``.  We
reconstruct it offline from a complete run trace: each process's events are
totally ordered by their history index, and SEND/RECV pairs (matched by
``msg_id``) contribute the cross-process edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.errors import TraceError
from repro.ids import ProcessId
from repro.model.events import Event, EventKind
from repro.model.history import ProcessHistory, history_of

__all__ = ["VectorClock", "CausalOrder"]


@dataclass(frozen=True, slots=True)
class VectorClock:
    """An immutable vector timestamp.

    Components are keyed by :class:`ProcessId`; absent keys are zero.
    """

    components: tuple[tuple[ProcessId, int], ...]

    @staticmethod
    def of(mapping: Mapping[ProcessId, int]) -> "VectorClock":
        items = tuple(sorted(mapping.items(), key=lambda kv: (kv[0].name, kv[0].incarnation)))
        return VectorClock(items)

    def as_dict(self) -> dict[ProcessId, int]:
        return dict(self.components)

    def get(self, proc: ProcessId) -> int:
        for p, v in self.components:
            if p == proc:
                return v
        return 0

    def leq(self, other: "VectorClock") -> bool:
        """Component-wise <=, the vector-clock causal order."""
        mine = self.as_dict()
        theirs = other.as_dict()
        return all(v <= theirs.get(p, 0) for p, v in mine.items())

    def lt(self, other: "VectorClock") -> bool:
        return self.leq(other) and self.components != other.components

    def merge(self, other: "VectorClock") -> "VectorClock":
        merged = self.as_dict()
        for p, v in other.as_dict().items():
            if v > merged.get(p, 0):
                merged[p] = v
        return VectorClock.of(merged)


class CausalOrder:
    """Offline happens-before oracle for a complete run.

    Construction walks every history once, assigning each event a vector
    timestamp: a process's own component counts its events; a RECV merges in
    the timestamp of the matching SEND.  ``happens_before(a, b)`` is then a
    vector comparison.

    Raises:
        TraceError: if a RECV has no matching SEND, or an event stream is
            malformed (per-process indices not dense).
    """

    def __init__(self, events: Iterable[Event]) -> None:
        all_events = list(events)
        procs = {e.proc for e in all_events}
        self._histories: dict[ProcessId, ProcessHistory] = {
            p: history_of(all_events, p) for p in procs
        }
        self._stamps: dict[tuple[ProcessId, int], VectorClock] = {}
        self._send_stamp_by_msg: dict[int, VectorClock] = {}
        self._compute()

    @property
    def histories(self) -> Mapping[ProcessId, ProcessHistory]:
        return self._histories

    def _compute(self) -> None:
        # RECVs may causally depend on SENDs later in our arbitrary process
        # iteration order, so we process events in a globally valid order:
        # repeatedly advance any process whose next event is enabled (not a
        # RECV, or a RECV whose SEND is already stamped).
        cursors: dict[ProcessId, int] = {p: 0 for p in self._histories}
        local: dict[ProcessId, dict[ProcessId, int]] = {p: {} for p in self._histories}
        remaining = sum(len(h) for h in self._histories.values())

        while remaining:
            progressed = False
            for proc, history in self._histories.items():
                i = cursors[proc]
                while i < len(history):
                    event = history[i]
                    if event.kind is EventKind.RECV and event.message is not None:
                        if event.message.msg_id not in self._send_stamp_by_msg:
                            break
                    self._stamp(event, local[proc])
                    i += 1
                    remaining -= 1
                    progressed = True
                cursors[proc] = i
            if not progressed and remaining:
                raise TraceError(
                    "run trace contains a RECV with no matching SEND "
                    "(or a causal cycle, which cannot occur in a real run)"
                )

    def _stamp(self, event: Event, clock: dict[ProcessId, int]) -> None:
        clock[event.proc] = clock.get(event.proc, 0) + 1
        if event.kind is EventKind.RECV and event.message is not None:
            sender_stamp = self._send_stamp_by_msg[event.message.msg_id]
            for p, v in sender_stamp.as_dict().items():
                if v > clock.get(p, 0):
                    clock[p] = v
        stamp = VectorClock.of(clock)
        self._stamps[(event.proc, event.index)] = stamp
        if event.kind is EventKind.SEND and event.message is not None:
            self._send_stamp_by_msg[event.message.msg_id] = stamp

    def stamp(self, event: Event) -> VectorClock:
        """The vector timestamp assigned to ``event``."""
        try:
            return self._stamps[(event.proc, event.index)]
        except KeyError:
            raise TraceError(f"event {event} is not part of this run") from None

    def happens_before(self, a: Event, b: Event) -> bool:
        """Lamport's ``a -> b`` (irreflexive)."""
        if a.proc == b.proc:
            return a.index < b.index
        return self.stamp(a).leq(self.stamp(b))

    def concurrent(self, a: Event, b: Event) -> bool:
        """Neither ``a -> b`` nor ``b -> a``."""
        if a.proc == b.proc and a.index == b.index:
            return False
        return not self.happens_before(a, b) and not self.happens_before(b, a)
