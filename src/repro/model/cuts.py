"""Consistent cuts and the orderings on them (Section 2.1).

A cut assigns to every process a prefix of its history; it is *consistent*
when it is closed under happens-before — operationally, when every RECV it
contains has its matching SEND inside the cut as well (message edges are the
only cross-process causal edges, and each history prefix is trivially closed
under local order).

The paper's two orderings are implemented as :func:`cut_leq` (every prefix a
prefix, written ``c <= c'``) and :func:`cut_ll` (every prefix a *strict*
prefix, written ``c << c'``); GMP-2's unique sequence of system views is a
``<<``-chain of cuts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.errors import TraceError
from repro.ids import ProcessId
from repro.model.events import Event, EventKind
from repro.model.history import ProcessHistory

__all__ = ["Cut", "is_consistent", "cut_leq", "cut_ll", "consistent_cuts_leq"]


@dataclass(frozen=True, slots=True)
class Cut:
    """A cut: for each process, how many events of its history are included.

    ``lengths[p] == k`` means the first ``k`` events of ``p``'s history are
    in the cut.  Processes absent from ``lengths`` contribute the empty
    prefix (not even their START event) — convenient when a run involves
    late joiners.
    """

    lengths: Mapping[ProcessId, int]

    def length(self, proc: ProcessId) -> int:
        return self.lengths.get(proc, 0)

    def includes(self, event: Event) -> bool:
        """True if ``event`` lies inside this cut."""
        return event.index < self.length(event.proc)

    def processes(self) -> Iterator[ProcessId]:
        return iter(self.lengths)

    def restrict(self, histories: Mapping[ProcessId, ProcessHistory]) -> dict[ProcessId, list[Event]]:
        """Materialise the per-process event prefixes selected by this cut."""
        out: dict[ProcessId, list[Event]] = {}
        for proc, history in histories.items():
            k = self.length(proc)
            if k > len(history):
                raise TraceError(
                    f"cut selects {k} events of {proc} but history has {len(history)}"
                )
            out[proc] = list(history.events[:k])
        return out


def is_consistent(cut: Cut, histories: Mapping[ProcessId, ProcessHistory]) -> bool:
    """True iff ``cut`` is closed under happens-before.

    Checks that for every RECV inside the cut, the matching SEND (identified
    by ``msg_id``) is inside the cut too.  A RECV whose SEND does not appear
    anywhere in the run makes the *run* malformed and raises
    :class:`TraceError`.
    """
    send_positions: dict[int, tuple[ProcessId, int]] = {}
    for proc, history in histories.items():
        for event in history:
            if event.kind is EventKind.SEND and event.message is not None:
                send_positions[event.message.msg_id] = (proc, event.index)

    for proc, history in histories.items():
        limit = cut.length(proc)
        for event in history.events[:limit]:
            if event.kind is not EventKind.RECV or event.message is None:
                continue
            try:
                sender, send_index = send_positions[event.message.msg_id]
            except KeyError:
                raise TraceError(
                    f"RECV of message {event.message.msg_id} has no matching SEND"
                ) from None
            if send_index >= cut.length(sender):
                return False
    return True


def cut_leq(c: Cut, c_prime: Cut) -> bool:
    """The paper's ``c <= c'``: every prefix of c is a prefix of c'."""
    procs = set(c.lengths) | set(c_prime.lengths)
    return all(c.length(p) <= c_prime.length(p) for p in procs)


def cut_ll(c: Cut, c_prime: Cut, histories: Mapping[ProcessId, ProcessHistory] | None = None) -> bool:
    """The paper's ``c << c'``: every prefix of c is a *strict* prefix in c'.

    The strict relation only constrains processes that still have events to
    take: a process whose entire history is already inside ``c`` (it crashed
    or quit) cannot strictly extend, and requiring it to would make ``<<``
    vacuous in any run with failures.  When ``histories`` is given, such
    exhausted processes are exempted; without it the raw definition is used.
    """
    procs = set(c.lengths) | set(c_prime.lengths)
    for p in procs:
        if histories is not None:
            full = len(histories[p]) if p in histories else 0
            if c.length(p) >= full:
                if c.length(p) > c_prime.length(p):
                    return False
                continue
        if c.length(p) >= c_prime.length(p):
            return False
    return True


def consistent_cuts_leq(
    cuts: Iterable[Cut], histories: Mapping[ProcessId, ProcessHistory]
) -> bool:
    """True iff every cut is consistent and the sequence is ``<=``-monotone."""
    previous: Cut | None = None
    for cut in cuts:
        if not is_consistent(cut, histories):
            return False
        if previous is not None and not cut_leq(previous, cut):
            return False
        previous = cut
    return True
