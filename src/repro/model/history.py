"""Process histories and the prefix relations on them (Section 2.1).

A history for process p is ``h_p = start_p, e1, e2, ...``.  A *system run*
is a tuple of histories, one per process.  The prefix and strict-prefix
relations defined here are exactly the paper's, and they induce the
orderings on consistent cuts implemented in :mod:`repro.model.cuts`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from repro.errors import TraceError
from repro.ids import ProcessId
from repro.model.events import Event, EventKind

__all__ = ["ProcessHistory", "history_of", "is_prefix", "is_strict_prefix", "group_by_process"]


@dataclass(slots=True)
class ProcessHistory:
    """The ordered sequence of events of a single process.

    Invariants enforced on construction:

    * the first event (if any) is START;
    * event ``index`` fields are exactly ``0, 1, 2, ...``;
    * nothing follows a QUIT or CRASH event (crashed processes causally
      influence no one, Section 2.1).
    """

    proc: ProcessId
    events: list[Event] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise :class:`TraceError` if this history is malformed."""
        terminal_seen = False
        for i, event in enumerate(self.events):
            if event.proc != self.proc:
                raise TraceError(
                    f"event {event} belongs to {event.proc}, not {self.proc}"
                )
            if event.index != i:
                raise TraceError(
                    f"event {event} has index {event.index}, expected {i}"
                )
            if i == 0 and event.kind is not EventKind.START:
                raise TraceError(f"history of {self.proc} does not begin with START")
            if terminal_seen:
                raise TraceError(
                    f"history of {self.proc} has events after a terminal event: {event}"
                )
            if event.kind in (EventKind.QUIT, EventKind.CRASH):
                terminal_seen = True

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def __getitem__(self, index: int) -> Event:
        return self.events[index]

    def prefix(self, length: int) -> "ProcessHistory":
        """The prefix of this history containing the first ``length`` events."""
        if not 0 <= length <= len(self.events):
            raise ValueError(f"prefix length {length} out of range for {self.proc}")
        return ProcessHistory(self.proc, self.events[:length])

    def terminated(self) -> bool:
        """True if this history ends with QUIT or CRASH."""
        return bool(self.events) and self.events[-1].kind in (
            EventKind.QUIT,
            EventKind.CRASH,
        )

    def events_of_kind(self, kind: EventKind) -> list[Event]:
        """All events of the given kind, in history order."""
        return [e for e in self.events if e.kind is kind]


def group_by_process(events: Iterable[Event]) -> dict[ProcessId, list[Event]]:
    """Partition a flat event stream into per-process ordered lists."""
    histories: dict[ProcessId, list[Event]] = {}
    for event in events:
        histories.setdefault(event.proc, []).append(event)
    return histories


def history_of(events: Iterable[Event], proc: ProcessId) -> ProcessHistory:
    """Build the validated :class:`ProcessHistory` of ``proc``."""
    own = [e for e in events if e.proc == proc]
    own.sort(key=lambda e: e.index)
    return ProcessHistory(proc, own)


def is_prefix(shorter: Sequence[Event], longer: Sequence[Event]) -> bool:
    """The paper's prefix relation on histories."""
    if len(shorter) > len(longer):
        return False
    return all(shorter[i] == longer[i] for i in range(len(shorter)))


def is_strict_prefix(shorter: Sequence[Event], longer: Sequence[Event]) -> bool:
    """The paper's strict-prefix relation on histories."""
    return len(shorter) < len(longer) and is_prefix(shorter, longer)
