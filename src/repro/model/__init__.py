"""Formal model of Section 2 of the paper.

This package implements the paper's system model as *executable
definitions*: event records and process histories (Section 2.1), consistent
cuts and the prefix orderings on them, Lamport causality, the local and
system view functions ``Memb(p, c)`` and ``Sys(c, S)`` (Section 2.2), and the
epistemic operators of the Appendix.

The protocol implementations in :mod:`repro.core` never import these
definitions for their own operation — they are *checked against* them by
:mod:`repro.properties` and the test suite, which is exactly the relationship
between an algorithm and its specification.
"""

from repro.model.events import Event, EventKind, MessageRecord
from repro.model.history import ProcessHistory, history_of, is_prefix, is_strict_prefix
from repro.model.cuts import Cut, consistent_cuts_leq, cut_leq, cut_ll, is_consistent
from repro.model.causality import CausalOrder, VectorClock
from repro.model.views import (
    SystemView,
    local_view,
    system_view,
    view_sequences,
    extract_system_views,
)

__all__ = [
    "Event",
    "EventKind",
    "MessageRecord",
    "ProcessHistory",
    "history_of",
    "is_prefix",
    "is_strict_prefix",
    "Cut",
    "is_consistent",
    "cut_leq",
    "cut_ll",
    "consistent_cuts_leq",
    "CausalOrder",
    "VectorClock",
    "SystemView",
    "local_view",
    "system_view",
    "view_sequences",
    "extract_system_views",
]
