"""Event records: the atoms of process histories (Section 2.1).

A process history is a sequence ``start_p, e1, e2, ...`` of events.  The
paper's model distinguishes ``send(p, q, m)``, ``recv(p, q, m)``, the failure
detection input ``faulty_p(q)`` (and its join analogue ``operating_p(q)``),
the view-update internal events ``remove_p(q)`` / ``add_p(q)``, and the
modelling convenience ``quit_p``.  We add two bookkeeping kinds that the
checkers need: ``INSTALL`` (a local view transition with its version number
and full membership snapshot — this is what "committing local version x"
looks like in a trace) and ``CRASH`` (the ground-truth crash instant, which
no process can observe but the simulator knows; it lets tests separate *real*
failures from *perceived* ones, the paper's central distinction).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.ids import ProcessId

__all__ = ["EventKind", "MessageRecord", "Event"]


class EventKind(enum.Enum):
    """The kinds of events that may appear in a process history."""

    START = "start"
    SEND = "send"
    RECV = "recv"
    #: ``faulty_p(q)`` — p begins to believe q faulty (inputs F1/F2, §2.2).
    FAULTY = "faulty"
    #: ``operating_p(q)`` — join analogue of FAULTY (§7.1).
    OPERATING = "operating"
    #: ``remove_p(q)`` — p deletes q from its local view.
    REMOVE = "remove"
    #: ``add_p(q)`` — p adds q to its local view (join procedure).
    ADD = "add"
    #: ``quit_p`` — final event; p permanently ceases communication.
    QUIT = "quit"
    #: Local view transition: carries version number and membership snapshot.
    INSTALL = "install"
    #: Ground-truth crash instant (simulator-only; not observable).
    CRASH = "crash"
    #: A message was discarded by the S1 isolation filter.
    DISCARD = "discard"
    #: Generic internal event (timer fired, buffered message deferred, ...).
    INTERNAL = "internal"


_message_counter = itertools.count(1)


@dataclass(frozen=True, slots=True)
class MessageRecord:
    """A single message instance in flight.

    ``msg_id`` is globally unique so a RECV event can be matched to its SEND
    for causality reconstruction; ``payload`` is the protocol message object
    (anything with a useful ``repr``), and ``category`` tags the message for
    per-category counting in the complexity benchmarks (e.g. ``"protocol"``
    vs ``"detector"`` traffic, which Section 7.2 does not charge to the
    algorithm).
    """

    sender: ProcessId
    receiver: ProcessId
    payload: Any
    msg_id: int = field(default_factory=lambda: next(_message_counter))
    category: str = "protocol"

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"m{self.msg_id}[{self.sender}->{self.receiver}: {self.payload}]"


@dataclass(frozen=True, slots=True)
class Event:
    """One event of one process history.

    Attributes:
        proc: the process whose history this event belongs to.
        kind: the :class:`EventKind`.
        index: position of this event within ``proc``'s history (0 = START).
        time: simulation time at which the event occurred.  The *protocol*
            never reads this; it exists for the detector layer, the trace,
            and human-readable reports (the paper uses time "only as an
            (approximate) tool for detecting possible crash failures").
        peer: the other process involved, when there is one (the q in
            ``faulty_p(q)``, the counterparty of a SEND/RECV, ...).
        message: the :class:`MessageRecord` for SEND/RECV/DISCARD events.
        version: local view version for INSTALL events.
        view: membership snapshot for INSTALL events.
        detail: free-form annotation for reports.
    """

    proc: ProcessId
    kind: EventKind
    index: int
    time: float = 0.0
    peer: Optional[ProcessId] = None
    message: Optional[MessageRecord] = None
    version: Optional[int] = None
    view: Optional[tuple[ProcessId, ...]] = None
    detail: str = ""

    def is_communication(self) -> bool:
        """True for SEND/RECV events (the only cross-history causal edges)."""
        return self.kind in (EventKind.SEND, EventKind.RECV)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        core = f"{self.proc}[{self.index}] {self.kind.value}"
        if self.peer is not None:
            core += f"({self.peer})"
        if self.message is not None:
            core += f" {self.message}"
        if self.version is not None:
            core += f" v{self.version}={self.view}"
        if self.detail:
            core += f" <{self.detail}>"
        return core
