"""Event records: the atoms of process histories (Section 2.1).

A process history is a sequence ``start_p, e1, e2, ...`` of events.  The
paper's model distinguishes ``send(p, q, m)``, ``recv(p, q, m)``, the failure
detection input ``faulty_p(q)`` (and its join analogue ``operating_p(q)``),
the view-update internal events ``remove_p(q)`` / ``add_p(q)``, and the
modelling convenience ``quit_p``.  We add two bookkeeping kinds that the
checkers need: ``INSTALL`` (a local view transition with its version number
and full membership snapshot — this is what "committing local version x"
looks like in a trace) and ``CRASH`` (the ground-truth crash instant, which
no process can observe but the simulator knows; it lets tests separate *real*
failures from *perceived* ones, the paper's central distinction).
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Optional

from repro.ids import ProcessId

__all__ = ["EventKind", "MessageRecord", "Event"]


class EventKind(enum.Enum):
    """The kinds of events that may appear in a process history."""

    START = "start"
    SEND = "send"
    RECV = "recv"
    #: ``faulty_p(q)`` — p begins to believe q faulty (inputs F1/F2, §2.2).
    FAULTY = "faulty"
    #: ``operating_p(q)`` — join analogue of FAULTY (§7.1).
    OPERATING = "operating"
    #: ``remove_p(q)`` — p deletes q from its local view.
    REMOVE = "remove"
    #: ``add_p(q)`` — p adds q to its local view (join procedure).
    ADD = "add"
    #: ``quit_p`` — final event; p permanently ceases communication.
    QUIT = "quit"
    #: Local view transition: carries version number and membership snapshot.
    INSTALL = "install"
    #: Ground-truth crash instant (simulator-only; not observable).
    CRASH = "crash"
    #: A message was discarded by the S1 isolation filter.
    DISCARD = "discard"
    #: Generic internal event (timer fired, buffered message deferred, ...).
    INTERNAL = "internal"


# Dense per-kind ordinal, assigned once at import: lets per-event counters
# index a preallocated array instead of hashing enum members (Enum.__hash__
# is a Python-level call and shows up on the trace hot path).
for _ordinal, _kind in enumerate(EventKind):
    _kind._ordinal = _ordinal  # type: ignore[attr-defined]
del _ordinal, _kind

N_EVENT_KINDS = len(EventKind)


_message_counter = itertools.count(1)


class MessageRecord:
    """A single message instance in flight.

    ``msg_id`` is globally unique so a RECV event can be matched to its SEND
    for causality reconstruction; ``payload`` is the protocol message object
    (anything with a useful ``repr``), and ``category`` tags the message for
    per-category counting in the complexity benchmarks (e.g. ``"protocol"``
    vs ``"detector"`` traffic, which Section 7.2 does not charge to the
    algorithm).

    A plain ``__slots__`` class (not a dataclass): one record is allocated
    per simulated message, so construction cost is on the hot path.
    Equality and hashing remain value-based over all five fields.
    """

    __slots__ = ("sender", "receiver", "payload", "msg_id", "category")

    def __init__(
        self,
        sender: ProcessId,
        receiver: ProcessId,
        payload: Any,
        msg_id: Optional[int] = None,
        category: str = "protocol",
    ) -> None:
        self.sender = sender
        self.receiver = receiver
        self.payload = payload
        self.msg_id = next(_message_counter) if msg_id is None else msg_id
        self.category = category

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not MessageRecord:
            return NotImplemented
        return (
            self.msg_id == other.msg_id
            and self.sender == other.sender
            and self.receiver == other.receiver
            and self.payload == other.payload
            and self.category == other.category
        )

    def __hash__(self) -> int:
        return hash(
            (self.sender, self.receiver, self.payload, self.msg_id, self.category)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MessageRecord(sender={self.sender!r}, receiver={self.receiver!r}, "
            f"payload={self.payload!r}, msg_id={self.msg_id!r}, "
            f"category={self.category!r})"
        )

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"m{self.msg_id}[{self.sender}->{self.receiver}: {self.payload}]"


class Event:
    """One event of one process history.

    Attributes:
        proc: the process whose history this event belongs to.
        kind: the :class:`EventKind`.
        index: position of this event within ``proc``'s history (0 = START).
        time: simulation time at which the event occurred.  The *protocol*
            never reads this; it exists for the detector layer, the trace,
            and human-readable reports (the paper uses time "only as an
            (approximate) tool for detecting possible crash failures").
        peer: the other process involved, when there is one (the q in
            ``faulty_p(q)``, the counterparty of a SEND/RECV, ...).
        message: the :class:`MessageRecord` for SEND/RECV/DISCARD events.
        version: local view version for INSTALL events.
        view: membership snapshot for INSTALL events.
        detail: free-form annotation for reports.

    Like :class:`MessageRecord`, a plain ``__slots__`` class: a FULL-level
    trace allocates one per SEND/RECV/deliver, making construction cost
    part of the simulator's inner loop.
    """

    __slots__ = (
        "proc",
        "kind",
        "index",
        "time",
        "peer",
        "message",
        "version",
        "view",
        "detail",
    )

    def __init__(
        self,
        proc: ProcessId,
        kind: EventKind,
        index: int,
        time: float = 0.0,
        peer: Optional[ProcessId] = None,
        message: Optional[MessageRecord] = None,
        version: Optional[int] = None,
        view: Optional[tuple[ProcessId, ...]] = None,
        detail: str = "",
    ) -> None:
        self.proc = proc
        self.kind = kind
        self.index = index
        self.time = time
        self.peer = peer
        self.message = message
        self.version = version
        self.view = view
        self.detail = detail

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Event:
            return NotImplemented
        return (
            self.proc == other.proc
            and self.kind == other.kind
            and self.index == other.index
            and self.time == other.time
            and self.peer == other.peer
            and self.message == other.message
            and self.version == other.version
            and self.view == other.view
            and self.detail == other.detail
        )

    def __hash__(self) -> int:
        return hash(
            (
                self.proc,
                self.kind,
                self.index,
                self.time,
                self.peer,
                self.message,
                self.version,
                self.view,
                self.detail,
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Event(proc={self.proc!r}, kind={self.kind!r}, index={self.index!r}, "
            f"time={self.time!r}, peer={self.peer!r}, message={self.message!r}, "
            f"version={self.version!r}, view={self.view!r}, detail={self.detail!r})"
        )

    def is_communication(self) -> bool:
        """True for SEND/RECV events (the only cross-history causal edges)."""
        return self.kind in (EventKind.SEND, EventKind.RECV)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        core = f"{self.proc}[{self.index}] {self.kind.value}"
        if self.peer is not None:
            core += f"({self.peer})"
        if self.message is not None:
            core += f" {self.message}"
        if self.version is not None:
            core += f" v{self.version}={self.view}"
        if self.detail:
            core += f" <{self.detail}>"
        return core
