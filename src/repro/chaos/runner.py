"""Run a live cluster under a seeded fault plan and judge the outcome.

:func:`run_chaos` is the chaos harness behind ``repro chaos``: it builds an
n-member :class:`~repro.aio.runtime.AioMembershipRuntime` (TCP by default),
installs a :class:`~repro.chaos.inject.FaultInjector` at the transport
boundary, schedules the plan's crash-restarts, lets the cluster run for a
bounded duration, and then demands three things:

1. **agreement** — every surviving member installs one view that is exactly
   the live set (the runtime's ``in_agreement``);
2. **the GMP properties** — :func:`repro.properties.check_gmp` over the
   recorded trace (liveness excluded: agreement is asserted directly);
3. **zero frame loss** — after quiescing, no channel to a live peer still
   holds unacknowledged protocol frames (TCP transport; the plan's own
   sanctioned drops are accounted separately).

The verdict is machine-readable (:meth:`ChaosVerdict.to_dict`) and carries
the full fault schedule, so any run can be reproduced from its seed alone.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Optional

from repro.properties import check_gmp
from repro.properties.checker import PropertyReport
from repro.chaos.inject import FaultInjector
from repro.chaos.plan import CrashRestart, FaultPlan

__all__ = ["ChaosVerdict", "run_chaos", "run_chaos_sync"]


@dataclass
class ChaosVerdict:
    """Everything a CI job (or a human) needs to judge one chaos run."""

    seed: int
    n: int
    transport: str
    wire: str
    duration: float
    plan: dict = field(default_factory=dict)
    agreement: bool = False
    properties_ok: bool = False
    violations: list[str] = field(default_factory=list)
    properties: dict = field(default_factory=dict)
    frame_loss: int = 0
    injected: dict = field(default_factory=dict)
    transport_stats: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)
    final_view: list[str] = field(default_factory=list)
    events: int = 0

    @property
    def ok(self) -> bool:
        return self.agreement and self.properties_ok and self.frame_loss == 0

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "seed": self.seed,
            "n": self.n,
            "transport": self.transport,
            "wire": self.wire,
            "duration": self.duration,
            "agreement": self.agreement,
            "properties_ok": self.properties_ok,
            "violations": self.violations,
            "properties": self.properties,
            "frame_loss": self.frame_loss,
            "injected": self.injected,
            "transport_stats": self.transport_stats,
            "metrics": self.metrics,
            "final_view": self.final_view,
            "events": self.events,
            "plan": self.plan,
        }


def _schedule_crashes(runtime, plan: FaultPlan) -> None:
    for crash in plan.crashes:
        runtime.scheduler.after(crash.at, _crash_firer(runtime, crash))
        if crash.restart_after is not None:
            runtime.scheduler.after(
                crash.at + crash.restart_after, _restart_firer(runtime, crash)
            )


def _crash_firer(runtime, crash: CrashRestart):
    def fire() -> None:
        try:
            runtime.crash(crash.victim)
        except KeyError:  # pragma: no cover - victim unknown: plan typo
            pass

    return fire


def _restart_firer(runtime, crash: CrashRestart):
    def fire() -> None:
        try:
            runtime.restart(crash.victim)
        except (KeyError, RuntimeError):  # pragma: no cover - already back
            pass

    return fire


async def run_chaos(
    n: int = 4,
    seed: int = 0,
    duration: float = 2.0,
    transport: str = "tcp",
    wire: str = "json",
    heartbeat_period: float = 0.05,
    heartbeat_timeout: float = 0.25,
    settle_timeout: float = 15.0,
    plan: Optional[FaultPlan] = None,
    obs=None,
) -> ChaosVerdict:
    """One bounded chaos run; see the module docstring for the contract."""
    from repro.aio.runtime import AioMembershipRuntime

    names = [f"n{i}" for i in range(n)]
    if plan is None:
        plan = FaultPlan.generate(
            seed,
            names,
            duration,
            heartbeat_period=heartbeat_period,
            heartbeat_timeout=heartbeat_timeout,
            transport=transport,
        )
    runtime = AioMembershipRuntime(
        names,
        detector="heartbeat",
        heartbeat_period=heartbeat_period,
        heartbeat_timeout=heartbeat_timeout,
        transport=transport,
        wire=wire,
        seed=seed,
        obs=obs,
    )
    injector = FaultInjector(plan, runtime.network).install()
    verdict = ChaosVerdict(
        seed=seed,
        n=n,
        transport=transport,
        wire=wire,
        duration=duration,
        plan=plan.to_dict(),
    )
    await runtime.start_async()
    _schedule_crashes(runtime, plan)
    try:
        # The fault window, then convergence: plans quiesce by ~75% of the
        # duration, so the tail plus the settle budget is recovery time.
        await runtime.run_for(max(duration, plan.horizon()))
        verdict.agreement = await runtime.wait_for_agreement(timeout=settle_timeout)
        if transport == "tcp":
            network = runtime.network
            await network.wait_quiet(timeout=5.0)
            verdict.frame_loss = sum(network.pending_frames().values())
            verdict.transport_stats = network.stats.to_dict()
        report: PropertyReport = check_gmp(
            runtime.trace, runtime.initial_view, check_liveness=False
        )
        verdict.properties_ok = report.ok
        verdict.violations = [str(v) for v in report.violations]
        verdict.properties = report.to_dict()
        verdict.injected = injector.to_dict()
        verdict.final_view = sorted(
            str(m.pid) for m in runtime.live_members()
        )
        verdict.events = len(list(runtime.trace))
        if obs is not None:
            if transport == "tcp":
                runtime.network.collect_metrics(obs)
            obs.record_trace(runtime.trace)
            from repro.obs.summary import summary_dict

            verdict.metrics = summary_dict(obs)
    finally:
        await runtime.stop_async()
    return verdict


def run_chaos_sync(**kwargs) -> ChaosVerdict:
    """Blocking wrapper around :func:`run_chaos` for the CLI and tests."""
    return asyncio.run(run_chaos(**kwargs))
