"""Deterministic fault injection for the live transports.

The simulator can already subject the protocol to adversarial schedules
(:mod:`repro.sim.failures`, :mod:`repro.verify.explore`), but until this
package the *live* runtime (:mod:`repro.aio`) could only be tested against
faults nobody could inject.  ``repro.chaos`` closes that gap:

* :class:`~repro.chaos.plan.FaultPlan` — a seeded, deterministic schedule
  of drop / delay / duplicate / one-way-partition / crash-restart faults,
  expressed with the same predicate vocabulary as ``sim/failures.py``
  (``payload_type_is``, ``sent_to``, ``after=k``) so adversarial scenarios
  port between simulator and live runtime;
* :class:`~repro.chaos.inject.FaultInjector` — binds a plan to the
  transport boundary of :class:`~repro.aio.network.AioNetwork` or
  :class:`~repro.aio.tcp.TcpNetwork`;
* :func:`~repro.chaos.runner.run_chaos` — runs an n-member live cluster
  under a seeded plan for a bounded duration and produces a
  machine-readable verdict: agreement, the GMP properties
  (:func:`repro.properties.check_gmp`), and the transport's frame-loss
  accounting.  The CLI front-end is ``repro chaos``.

See ``docs/ROBUSTNESS.md`` for the full story.
"""

from repro.chaos.plan import (
    CrashRestart,
    Decision,
    FaultPlan,
    FaultRule,
    Partition,
    both,
    category_is,
    payload_type_is,
    sent_to,
)
from repro.chaos.inject import FaultInjector
from repro.chaos.runner import ChaosVerdict, run_chaos, run_chaos_sync

__all__ = [
    "CrashRestart",
    "Decision",
    "FaultPlan",
    "FaultRule",
    "Partition",
    "FaultInjector",
    "ChaosVerdict",
    "run_chaos",
    "run_chaos_sync",
    "both",
    "category_is",
    "payload_type_is",
    "sent_to",
]
