"""Seeded, deterministic fault plans for the live transports.

A :class:`FaultPlan` is a declarative schedule of transport-boundary faults:

* frame faults (:class:`FaultRule`): **drop**, **delay**, **duplicate** —
  applied per matching frame at send time;
* **one-way partitions** (:class:`Partition`): all frames from ``src`` to
  ``dst`` are *held* for the window and flushed at its end, mirroring
  :meth:`repro.sim.network.Network.partition` / ``heal`` semantics (the
  paper assumes reliable channels, so a partition delays rather than
  destroys — but it still starves the receiver long enough to force the
  "perceived failure" the protocol must survive);
* **crash-restart** (:class:`CrashRestart`): the victim crash-stops at
  ``at`` and, optionally, recovers ``restart_after`` seconds later as a new
  incarnation via the Section 7 join procedure.

Rules select frames with the same predicate vocabulary as
:mod:`repro.sim.failures` — :func:`payload_type_is`, :func:`sent_to`,
:func:`both`, and an ``after=k`` threshold — so adversarial scenarios port
between the simulator and the live runtime.  Rules address processes by
*name* (not pid), so they keep matching across incarnation bumps.

Every decision is deterministic: matching is counted per directed channel
(per-channel frame order is FIFO and therefore stable across runs, unlike
the cross-channel interleaving), and probabilistic rules derive each
verdict from ``hash(seed, rule, channel, match#)`` rather than shared RNG
state.  Same seed → same fault schedule, run to run.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.model.events import MessageRecord
from repro.sim.failures import MessagePredicate, both, payload_type_is, sent_to

__all__ = [
    "Decision",
    "FaultRule",
    "Partition",
    "CrashRestart",
    "FaultPlan",
    "both",
    "category_is",
    "payload_type_is",
    "sent_to",
]

FRAME_FAULT_KINDS = ("drop", "delay", "duplicate")


def category_is(*names: str) -> MessagePredicate:
    """Predicate matching messages by category (e.g. ``"detector"``)."""
    allowed = set(names)

    def predicate(record: MessageRecord) -> bool:
        return record.category in allowed

    return predicate


@dataclass(frozen=True, slots=True)
class Decision:
    """The injector's verdict for one frame (merged across rules)."""

    drop: bool = False
    delay: float = 0.0
    duplicates: int = 0


@dataclass
class FaultRule:
    """One frame-fault rule.

    Attributes:
        kind: ``"drop"``, ``"delay"`` or ``"duplicate"``.
        src: sender name this rule applies to (``"*"`` = any).
        dst: receiver name this rule applies to (``"*"`` = any).
        category: restrict to one message category (None = any).
        payload_types: restrict to payload class names (None = any).
        predicate: extra arbitrary predicate (not serialized; None = any).
        after: first matching frame affected, 1-based per directed channel
            (mirrors ``sim.failures`` ``after=k``).
        count: at most this many frames affected per channel (None = all).
        probability: chance an eligible frame is affected (deterministic,
            derived from the plan seed + per-channel match index).
        delay: held time for ``kind="delay"``.
        start, end: active window in scheduler time.
    """

    kind: str
    src: str = "*"
    dst: str = "*"
    category: Optional[str] = None
    payload_types: Optional[tuple[str, ...]] = None
    predicate: Optional[MessagePredicate] = None
    after: int = 1
    count: Optional[int] = None
    probability: float = 1.0
    delay: float = 0.0
    start: float = 0.0
    end: float = math.inf
    #: per-directed-channel (matched, applied) counters (runtime state)
    _progress: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in FRAME_FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} (one of {FRAME_FAULT_KINDS})")
        if self.kind == "delay" and self.delay <= 0.0:
            raise ValueError("delay rules need a positive delay")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability out of range: {self.probability}")
        if self.after < 1:
            raise ValueError(f"after must be >= 1, got {self.after}")

    def matches(self, record: MessageRecord, now: float) -> bool:
        if not (self.start <= now < self.end):
            return False
        if self.src != "*" and record.sender.name != self.src:
            return False
        if self.dst != "*" and record.receiver.name != self.dst:
            return False
        if self.category is not None and record.category != self.category:
            return False
        if self.payload_types is not None:
            if type(record.payload).__name__ not in self.payload_types:
                return False
        if self.predicate is not None and not self.predicate(record):
            return False
        return True

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "src": self.src,
            "dst": self.dst,
            "category": self.category,
            "payload_types": list(self.payload_types) if self.payload_types else None,
            "predicate": None if self.predicate is None else "<custom>",
            "after": self.after,
            "count": self.count,
            "probability": round(self.probability, 6),
            "delay": round(self.delay, 6),
            "start": round(self.start, 6),
            "end": None if math.isinf(self.end) else round(self.end, 6),
        }


@dataclass(frozen=True, slots=True)
class Partition:
    """One-way partition: frames ``src -> dst`` are held during the window
    and flushed (in FIFO order) at ``end``."""

    src: str
    dst: str
    start: float
    end: float

    def holds(self, record: MessageRecord, now: float) -> bool:
        if not (self.start <= now < self.end):
            return False
        if self.src != "*" and record.sender.name != self.src:
            return False
        if self.dst != "*" and record.receiver.name != self.dst:
            return False
        return True

    def to_dict(self) -> dict:
        return {
            "src": self.src,
            "dst": self.dst,
            "start": round(self.start, 6),
            "end": round(self.end, 6),
        }


@dataclass(frozen=True, slots=True)
class CrashRestart:
    """Crash ``victim`` at ``at``; recover it ``restart_after`` later (as a
    new incarnation, via the join procedure) unless ``restart_after`` is
    None."""

    victim: str
    at: float
    restart_after: Optional[float] = None

    def to_dict(self) -> dict:
        return {
            "victim": self.victim,
            "at": round(self.at, 6),
            "restart_after": None
            if self.restart_after is None
            else round(self.restart_after, 6),
        }


class FaultPlan:
    """A seeded bundle of fault rules, partitions and crash-restarts."""

    def __init__(
        self,
        seed: int = 0,
        rules: Optional[list[FaultRule]] = None,
        partitions: Optional[list[Partition]] = None,
        crashes: Optional[list[CrashRestart]] = None,
    ) -> None:
        self.seed = seed
        self.rules: list[FaultRule] = list(rules or [])
        self.partitions: list[Partition] = list(partitions or [])
        self.crashes: list[CrashRestart] = list(crashes or [])
        self._dead: set[str] = set()

    # ------------------------------------------------------------- authoring

    def add_rule(self, rule: FaultRule) -> FaultRule:
        self.rules.append(rule)
        return rule

    def add_partition(self, partition: Partition) -> Partition:
        self.partitions.append(partition)
        return partition

    def add_crash(self, crash: CrashRestart) -> CrashRestart:
        self.crashes.append(crash)
        return crash

    # -------------------------------------------------------------- verdicts

    def declare_dead(self, name: str) -> None:
        """Tell transports that retrying ``name`` is pointless."""
        self._dead.add(name)

    def considers_dead(self, name: str) -> bool:
        return name in self._dead

    def _chance(self, rule_index: int, channel: tuple[str, str], k: int) -> float:
        token = f"{self.seed}:{rule_index}:{channel[0]}>{channel[1]}:{k}"
        return random.Random(token).random()

    def decide(self, record: MessageRecord, now: float) -> Optional[Decision]:
        """Merge every matching rule's effect on one frame.

        Drop wins over everything; otherwise delays sum (a partition hold
        counts as a delay until the window's end) and duplicates sum.
        """
        drop = False
        delay = 0.0
        duplicates = 0
        channel = (record.sender.name, record.receiver.name)
        for index, rule in enumerate(self.rules):
            if not rule.matches(record, now):
                continue
            matched, applied = rule._progress.get(channel, (0, 0))
            matched += 1
            rule._progress[channel] = (matched, applied)
            if matched < rule.after:
                continue
            if rule.count is not None and applied >= rule.count:
                continue
            if rule.probability < 1.0 and self._chance(index, channel, matched) >= rule.probability:
                continue
            rule._progress[channel] = (matched, applied + 1)
            if rule.kind == "drop":
                drop = True
            elif rule.kind == "delay":
                delay += rule.delay
            else:
                duplicates += 1
        if not drop:
            for partition in self.partitions:
                if partition.holds(record, now):
                    delay += max(0.0, partition.end - now)
        if not drop and delay == 0.0 and duplicates == 0:
            return None
        return Decision(drop=drop, delay=delay, duplicates=duplicates)

    # ----------------------------------------------------------- description

    def to_dict(self) -> dict:
        """Stable, machine-readable schedule (the determinism contract:
        one seed, one schedule)."""
        return {
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
            "partitions": [p.to_dict() for p in self.partitions],
            "crashes": [c.to_dict() for c in self.crashes],
        }

    def horizon(self) -> float:
        """Latest instant at which any scheduled fault is still active."""
        times = [0.0]
        for rule in self.rules:
            if not math.isinf(rule.end):
                times.append(rule.end)
        for partition in self.partitions:
            times.append(partition.end)
        for crash in self.crashes:
            times.append(crash.at + (crash.restart_after or 0.0))
        return max(times)

    # ------------------------------------------------------------ generation

    @classmethod
    def generate(
        cls,
        seed: int,
        members: list[str],
        duration: float,
        heartbeat_period: float = 0.05,
        heartbeat_timeout: float = 0.25,
        transport: str = "tcp",
    ) -> "FaultPlan":
        """Derive a randomized-but-deterministic adversarial plan.

        The generated faults are chosen from the classes the protocol is
        specified to survive: lost and delayed *detector* traffic (spurious
        suspicion), duplicated frames on any channel (absorbed by the
        channel's exactly-once delivery), a one-way partition long enough
        to force an exclusion, and a crash-restart exercising the Section 7
        recovery path.

        Faults are *staggered*, not stacked: the protocol tolerates a
        minority of failures **per view transition**, so a plan that lands
        a partition on top of an in-flight crash exclusion can legally
        annihilate the whole group (every initiator loses its majority and
        quits — safety holds, the agreement verdict does not).  The
        crash-restart runs first, then the partition, and everything ends
        by ~80% of ``duration`` so the group re-converges before judgment.
        """
        if len(members) < 3:
            raise ValueError("chaos plans need at least 3 members")
        rng = random.Random(seed)
        names = sorted(members)
        plan = cls(seed=seed)
        quiet_by = 0.8 * duration

        # Phase 1 — crash-restart: any member, including the coordinator
        # (the hard case: Figure 3's mid-broadcast coordinator loss, live).
        victim = rng.choice(names)
        crash_at = rng.uniform(0.08, 0.12) * duration
        restart_after = rng.uniform(0.15, 0.2) * duration
        plan.add_crash(CrashRestart(victim, at=crash_at, restart_after=restart_after))

        # Phase 2 — one-way partition, after the exclusion/rejoin settles.
        # Blind the *coordinator* to one survivor: the coordinator suspects
        # it and runs the clean two-phase exclusion (the target learns its
        # removal from the Invite, which travels the open direction).
        # Aiming the partition at a junior member instead could stack a
        # second concurrent failure onto whatever round is in flight.
        others = [n for n in names if n != victim]
        dst = others[0]  # seniority order: the coordinator at partition time
        src = rng.choice(others[1:])
        window = max(2.5 * heartbeat_timeout, 0.12 * duration)
        p_start = rng.uniform(0.45, 0.5) * duration
        p_end = min(p_start + window, quiet_by)
        plan.add_partition(Partition(src=src, dst=dst, start=p_start, end=p_end))

        # Lossy detector traffic on one directed channel: flaky, not dead.
        lossy_src, lossy_dst = rng.sample(others, 2)
        plan.add_rule(
            FaultRule(
                kind="drop",
                src=lossy_src,
                dst=lossy_dst,
                category="detector",
                probability=rng.uniform(0.2, 0.5),
                start=0.0,
                end=quiet_by,
            )
        )
        # Jittery detector traffic everywhere (bounded below the timeout so
        # it perturbs rather than guarantees suspicion).
        plan.add_rule(
            FaultRule(
                kind="delay",
                category="detector",
                probability=rng.uniform(0.1, 0.3),
                delay=rng.uniform(1.0, 3.0) * heartbeat_period,
                start=0.0,
                end=quiet_by,
            )
        )
        # Duplicated frames: over TCP any channel (the exactly-once layer
        # must absorb them); over memory only idempotent detector traffic
        # (the in-memory fabric *is* the channel — wire-level duplicates
        # below it do not exist in the model it implements).
        plan.add_rule(
            FaultRule(
                kind="duplicate",
                category=None if transport == "tcp" else "detector",
                probability=rng.uniform(0.1, 0.3),
                count=50,
                start=0.0,
                end=quiet_by,
            )
        )
        return plan
