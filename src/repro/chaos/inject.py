"""Binding a :class:`~repro.chaos.plan.FaultPlan` to a live transport.

Both live fabrics (:class:`repro.aio.network.AioNetwork` and
:class:`repro.aio.tcp.TcpNetwork`) consult an installed injector on every
``send`` — the transport boundary, after the SEND event is traced and the
send observers have run, before the frame enters the wire.  A dropped frame
therefore looks exactly like wire loss: the sender's history has the SEND,
the receiver's history never gets the RECV.
"""

from __future__ import annotations

from typing import Optional

from repro.model.events import MessageRecord
from repro.chaos.plan import Decision, FaultPlan

__all__ = ["FaultInjector"]


class FaultInjector:
    """Consulted by a network's ``send``; counts what it inflicted."""

    def __init__(self, plan: FaultPlan, network) -> None:
        self.plan = plan
        self.network = network
        self.dropped = 0
        self.dropped_protocol = 0
        self.delayed = 0
        self.duplicated = 0

    def on_send(self, record: MessageRecord) -> Optional[Decision]:
        decision = self.plan.decide(record, self.network.scheduler.now)
        if decision is None:
            return None
        if decision.drop:
            self.dropped += 1
            if record.category == "protocol":
                self.dropped_protocol += 1
        if decision.delay > 0.0:
            self.delayed += 1
        self.duplicated += decision.duplicates
        return decision

    def install(self) -> "FaultInjector":
        self.network.set_fault_injector(self)
        return self

    def to_dict(self) -> dict:
        return {
            "dropped": self.dropped,
            "dropped_protocol": self.dropped_protocol,
            "delayed": self.delayed,
            "duplicated": self.duplicated,
        }
