"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without masking programming errors.
Protocol-level anomalies (which indicate a *bug* in a protocol
implementation, since the algorithms are proven safe) derive from
:class:`ProtocolInvariantError` and are never silently swallowed — the
property checkers in :mod:`repro.properties` rely on them surfacing.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SimulationError",
    "SchedulerExhaustedError",
    "ChannelClosedError",
    "ProcessCrashedError",
    "ProtocolInvariantError",
    "ViewDivergenceError",
    "NotInViewError",
    "MajorityLostError",
    "TraceError",
    "PropertyViolation",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """A problem in the discrete-event simulation substrate."""


class SchedulerExhaustedError(SimulationError):
    """The scheduler ran out of events before a requested condition held."""


class ChannelClosedError(SimulationError):
    """A send was attempted on a closed or disconnected channel."""


class ProcessCrashedError(SimulationError):
    """An operation was attempted on a process that has already crashed."""


class ProtocolInvariantError(ReproError):
    """An internal protocol invariant was violated (implementation bug)."""


class ViewDivergenceError(ProtocolInvariantError):
    """Two processes committed different local views for the same version.

    This is exactly a GMP-3 violation; the correct protocol never raises it,
    while the strawman baselines of Section 7.3 do under the adversarial
    schedules of Claims 7.1 and 7.2.
    """


class NotInViewError(ProtocolInvariantError):
    """A protocol step referenced a process that is not in the local view."""


class MajorityLostError(ReproError):
    """An initiator could not assemble the majority its phase requires.

    Per Section 4.3 this is not a safety problem — the initiator simply
    cannot proceed (the paper's ``quit_r``) — but surfacing it lets the
    harness distinguish *blocked* from *wedged*.
    """


class TraceError(ReproError):
    """A malformed or incomplete run trace was given to an analysis."""


class PropertyViolation(ReproError):
    """A GMP property checker found a violation in a run trace.

    Attributes:
        property_name: which of GMP-0..GMP-5 (or an auxiliary invariant)
            was violated.
        details: human-readable description with the offending events.
    """

    def __init__(self, property_name: str, details: str) -> None:
        super().__init__(f"{property_name} violated: {details}")
        self.property_name = property_name
        self.details = details
