"""Bounded exhaustive exploration of protocol interleavings.

The discrete-event simulator runs one schedule per seed; the explorer runs
*all of them* (up to bounds): at every step the pending events are

* deliver the **oldest in-flight message of some channel** (per-channel
  FIFO is a model assumption, so only channel heads are candidates — this
  prunes the space massively without losing any real schedule);
* fire one of the scripted **suspicions** whose trigger point has passed;
* inject one of the scripted **crashes**.

Each choice forks a deep copy of the whole world — network, members,
trace — so the actual :class:`~repro.core.member.GMPMember` implementation
executes in every branch.  Terminal states (no pending events) are checked
against the full GMP specification.

The world is built on exploration-specific fabric (no scheduler, no
timers): messages queue in the network until the explorer delivers them,
and failure detection is entirely under explorer control.  Joins are not
supported here (their retry timers need a clock); crashes and spurious
suspicions — the paper's hard part — are.

Bounds: ``max_states`` caps the total worlds expanded; ``max_width`` caps
the branching explored per state (the first ``max_width`` choices in a
deterministic order — set it high enough and the run is exhaustive, which
:func:`Explorer.run` reports via ``complete``).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from repro.errors import ProcessCrashedError, ReproError, SimulationError
from repro.ids import ProcessId
from repro.model.events import EventKind, MessageRecord
from repro.properties import PropertyReport, check_gmp
from repro.core.member import GMPMember
from repro.detectors.base import FailureDetector
from repro.sim.trace import RunTrace

__all__ = ["Explorer", "ExplorationResult", "explore_membership"]


class _StepClock:
    """A fake scheduler: 'time' is just the number of events applied.

    Timers are accepted and discarded — nothing in the explored fragment
    of the protocol (exclusion/reconfiguration, no joins) relies on them.
    """

    class _DeadTimer:
        def cancel(self) -> None:
            pass

        cancelled = True
        deadline = 0.0

    def __init__(self) -> None:
        self.now = 0.0

    def tick(self) -> None:
        self.now += 1.0

    def after(self, delay: float, callback: Callable[[], None]):
        return self._DeadTimer()

    def at(self, time: float, callback: Callable[[], None]):
        return self._DeadTimer()


class _FrontierNetwork:
    """Network surface whose deliveries happen when the explorer says so."""

    def __init__(self) -> None:
        self.scheduler = _StepClock()
        self.trace = RunTrace()
        self._processes: dict[ProcessId, GMPMember] = {}
        #: per directed channel: FIFO queue of in-flight messages.
        self.channels: dict[tuple[ProcessId, ProcessId], list[MessageRecord]] = {}

    # -- registry -----------------------------------------------------------

    def register(self, process) -> None:
        if process.pid in self._processes:
            raise SimulationError(f"duplicate process id {process.pid}")
        self._processes[process.pid] = process

    def process(self, pid: ProcessId):
        return self._processes[pid]

    def processes(self):
        return dict(self._processes)

    def live_processes(self):
        return [p for p in self._processes.values() if not p.crashed]

    # -- observers (unused in exploration) -----------------------------------

    def add_send_observer(self, observer) -> None:
        raise ReproError("send observers are not supported under exploration")

    def add_crash_observer(self, observer) -> None:
        pass  # exploration drives suspicions itself

    def notify_crash(self, pid: ProcessId) -> None:
        pass

    # -- traffic --------------------------------------------------------------

    def send(self, sender, receiver, payload, category="protocol"):
        process = self._processes.get(sender)
        if process is None:
            raise SimulationError(f"unknown sender {sender}")
        if process.crashed:
            raise ProcessCrashedError(f"{sender} is crashed")
        record = MessageRecord(
            sender=sender, receiver=receiver, payload=payload, category=category
        )
        self.trace.record(
            sender,
            EventKind.SEND,
            time=self.scheduler.now,
            peer=receiver,
            message=record,
        )
        self.channels.setdefault((sender, receiver), []).append(record)
        return record

    def deliver_head(self, channel: tuple[ProcessId, ProcessId]) -> None:
        queue = self.channels.get(channel)
        if not queue:
            raise SimulationError(f"channel {channel} has nothing in flight")
        record = queue.pop(0)
        if not queue:
            del self.channels[channel]
        receiver = self._processes.get(record.receiver)
        if receiver is None or receiver.crashed:
            return
        receiver._receive(record)


class _InertDetector(FailureDetector):
    """Suspicions come only from the explorer."""


# ---------------------------------------------------------------------------
# Events the explorer can choose
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class _Deliver:
    channel: tuple[ProcessId, ProcessId]

    def describe(self) -> str:
        sender, receiver = self.channel
        return f"deliver {sender}->{receiver}"


@dataclass(frozen=True, slots=True)
class _Suspect:
    observer: ProcessId
    target: ProcessId

    def describe(self) -> str:
        return f"suspect {self.observer}:{self.target}"


@dataclass(frozen=True, slots=True)
class _Crash:
    victim: ProcessId

    def describe(self) -> str:
        return f"crash {self.victim}"


@dataclass
class _World:
    network: _FrontierNetwork
    members: dict[ProcessId, GMPMember]
    #: scripted suspicions not yet fired: (observer, target); a suspicion
    #: is enabled once its target has crashed (real detection) or
    #: unconditionally when marked spurious.
    suspicions: list[tuple[ProcessId, ProcessId, bool]]
    crashes: list[ProcessId]

    def clone(self) -> "_World":
        return copy.deepcopy(self)

    def enabled_events(self) -> list[object]:
        events: list[object] = []
        for victim in self.crashes:
            if not self.members[victim].crashed:
                events.append(_Crash(victim))
        crashed = {p for p, m in self.members.items() if m.crashed}
        for observer, target, spurious in self.suspicions:
            member = self.members[observer]
            if member.crashed or member.believes_faulty(target):
                continue
            if spurious or target in crashed:
                events.append(_Suspect(observer, target))
        for channel, queue in sorted(
            self.network.channels.items(),
            key=lambda kv: (kv[0][0].name, kv[0][1].name),
        ):
            receiver = self.members.get(channel[1])
            if queue and receiver is not None and not receiver.crashed:
                events.append(_Deliver(channel))
        return events

    def apply(self, event: object) -> None:
        self.network.scheduler.tick()
        if isinstance(event, _Crash):
            self.members[event.victim].crash()
            self.crashes.remove(event.victim)
        elif isinstance(event, _Suspect):
            self.suspicions = [
                s
                for s in self.suspicions
                if (s[0], s[1]) != (event.observer, event.target)
            ]
            self.members[event.observer].on_suspect(event.target)
        elif isinstance(event, _Deliver):
            self.network.deliver_head(event.channel)
        else:  # pragma: no cover - defensive
            raise ReproError(f"unknown exploration event {event!r}")


# ---------------------------------------------------------------------------
# The explorer
# ---------------------------------------------------------------------------


@dataclass
class ExplorationResult:
    """Outcome of one exploration."""

    terminals: int = 0
    states: int = 0
    #: True when no bound was hit: every schedule was examined.
    complete: bool = True
    violations: list[tuple[str, PropertyReport]] = field(default_factory=list)
    #: distinct final (version, view) outcomes among surviving members.
    outcomes: set = field(default_factory=set)

    @property
    def ok(self) -> bool:
        return not self.violations


class Explorer:
    """Bounded-exhaustive DFS over protocol schedules."""

    def __init__(
        self,
        initial_view: Sequence[ProcessId],
        crashes: Iterable[ProcessId] = (),
        suspicions: Iterable[tuple[ProcessId, ProcessId, bool]] = (),
        max_states: int = 200_000,
        max_width: int = 64,
        check_liveness: bool = False,
    ) -> None:
        self.initial_view = list(initial_view)
        self.crashes = list(crashes)
        self.suspicions = list(suspicions)
        self.max_states = max_states
        self.max_width = max_width
        self.check_liveness = check_liveness

    def _root(self) -> _World:
        network = _FrontierNetwork()
        members: dict[ProcessId, GMPMember] = {}
        for proc in self.initial_view:
            member = GMPMember(
                proc,
                network,  # type: ignore[arg-type]
                _InertDetector(),
                initial_view=list(self.initial_view),
            )
            members[proc] = member
        for member in members.values():
            member.start()
        return _World(
            network=network,
            members=members,
            suspicions=list(self.suspicions),
            crashes=list(self.crashes),
        )

    def run(self) -> ExplorationResult:
        result = ExplorationResult()
        stack: list[tuple[_World, str]] = [(self._root(), "init")]
        while stack:
            world, path = stack.pop()
            result.states += 1
            if result.states > self.max_states:
                result.complete = False
                break
            events = world.enabled_events()
            if not events:
                self._check_terminal(world, path, result)
                continue
            if len(events) > self.max_width:
                events = events[: self.max_width]
                result.complete = False
            # Expand children; reuse the parent world for the last child to
            # halve the deepcopy volume.
            for event in events[:-1]:
                child = world.clone()
                child.apply(event)
                stack.append((child, f"{path} | {event.describe()}"))
            last = events[-1]
            world.apply(last)
            stack.append((world, f"{path} | {last.describe()}"))
        return result

    def _check_terminal(self, world: _World, path: str, result: ExplorationResult) -> None:
        result.terminals += 1
        report = check_gmp(
            world.network.trace,
            self.initial_view,
            check_liveness=self.check_liveness,
            check_cuts=False,  # causality reconstruction per terminal is costly
        )
        if not report.ok:
            result.violations.append((path, report))
        outcome = frozenset(
            (member.version, tuple(member.view))
            for member in world.members.values()
            if member.is_member
        )
        result.outcomes.add(outcome)


def explore_membership(
    n: int,
    crash_names: Iterable[str] = (),
    spurious: Iterable[tuple[str, str]] = (),
    observers: Optional[Iterable[str]] = None,
    max_states: int = 200_000,
    max_width: int = 64,
) -> ExplorationResult:
    """Convenience wrapper: explore a ``p0..p{n-1}`` group.

    Args:
        n: group size.
        crash_names: members that may crash (the explorer chooses when).
        spurious: (observer, target) suspicions that may fire even though
            the target is alive.
        observers: who may detect each crash (default: every other member).
    """
    from repro.ids import pid

    view = [pid(f"p{i}") for i in range(n)]
    crashes = [pid(name) for name in crash_names]
    suspicion_list: list[tuple[ProcessId, ProcessId, bool]] = []
    observer_names = (
        list(observers) if observers is not None else [f"p{i}" for i in range(n)]
    )
    for victim in crashes:
        for observer in observer_names:
            if observer != victim.name:
                suspicion_list.append((pid(observer), victim, False))
    for observer, target in spurious:
        suspicion_list.append((pid(observer), pid(target), True))
    explorer = Explorer(
        view,
        crashes=crashes,
        suspicions=suspicion_list,
        max_states=max_states,
        max_width=max_width,
    )
    return explorer.run()
