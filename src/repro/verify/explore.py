"""Bounded exhaustive exploration of protocol interleavings.

The discrete-event simulator runs one schedule per seed; the explorer runs
*all of them* (up to bounds): at every step the pending events are

* deliver the **oldest in-flight message of some channel** (per-channel
  FIFO is a model assumption, so only channel heads are candidates — this
  prunes the space massively without losing any real schedule);
* fire one of the scripted **suspicions** whose trigger point has passed;
* inject one of the scripted **crashes**.

Each choice forks the world — network, members, trace — so the actual
:class:`~repro.core.member.GMPMember` implementation executes in every
branch.  Terminal states (no pending events) are checked against the full
GMP specification.

The world is built on exploration-specific fabric (no scheduler, no
timers): messages queue in the network until the explorer delivers them,
and failure detection is entirely under explorer control.  Joins are not
supported here (their retry timers need a clock); crashes and spurious
suspicions — the paper's hard part — are.

Engines
-------

``engine="snapshot"`` (the default) forks worlds by pickling each branch
node once (with the trace's event list detached — it is append-only along
a path, so a ``(list, length)`` prefix reference restores it exactly) and
restoring per sibling.  It also fingerprints every branch node and
terminal: two schedules that converge on the same protocol state — same
member states, same in-flight messages, same remaining script — have
identical futures, so the subtree is explored once and its summary
(terminal count with path multiplicity, distinct outcomes) is replayed on
every later convergence.  The DFS tree becomes a DAG; ``terminals`` still
counts *schedules* (paths), exactly as the tree engine would, while
``states`` counts the unique expansions actually executed and
``tree_states`` the nodes the tree engine would have expanded.

Dedup soundness: with ``check_liveness=False, check_cuts=False`` (the
explorer's settings) every checked property is a function of per-process
install sequences — reconstructible from each member's ``seq``/``view``/
``version``, all part of the fingerprint — plus orderings (GMP-1's
faulty-before-remove, S1's no-receive-after-faulty) that the member code
enforces structurally on every path and whose bookkeeping (``ever_faulty``,
DISCARD instead of RECV) is itself fingerprinted.  Fingerprint-equal
states therefore yield property-equal terminal checks.

``engine="deepcopy"`` is the original one-``copy.deepcopy``-per-child
tree walk, kept as the benchmark baseline and as an independent oracle
for equivalence tests.

``workers=N`` (snapshot engine only) breadth-first expands the root into
a frontier of independent subtree seeds and shards them across a
:func:`repro.runner.pool.parallel_map` worker pool; shard results merge
in deterministic seed order.  Fingerprint memos are per-shard, so
``terminals``/``tree_states``/``outcomes``/``ok`` match the serial run
while ``states`` (unique work) may be higher; ``max_states`` applies per
shard.

Bounds: ``max_states`` caps the states expanded; ``max_width`` caps the
branching explored per state (the first ``max_width`` choices in a
deterministic order — set it high enough and the run is exhaustive, which
:func:`Explorer.run` reports via ``complete``).
"""

from __future__ import annotations

import copy
import pickle
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from repro.errors import ProcessCrashedError, ReproError, SimulationError
from repro.ids import ProcessId
from repro.model.events import EventKind, MessageRecord
from repro.properties import PropertyReport, check_gmp
from repro.core.member import GMPMember
from repro.detectors.base import FailureDetector
from repro.runner.pool import parallel_map
from repro.sim.trace import RunTrace

__all__ = ["Explorer", "ExplorationResult", "explore_membership"]


class _StepClock:
    """A fake scheduler: 'time' is just the number of events applied.

    Timers are accepted and discarded — nothing in the explored fragment
    of the protocol (exclusion/reconfiguration, no joins) relies on them.
    """

    class _DeadTimer:
        def cancel(self) -> None:
            pass

        cancelled = True
        deadline = 0.0

    def __init__(self) -> None:
        self.now = 0.0

    def tick(self) -> None:
        self.now += 1.0

    def after(self, delay: float, callback: Callable[[], None]):
        return self._DeadTimer()

    def at(self, time: float, callback: Callable[[], None]):
        return self._DeadTimer()


class _FrontierNetwork:
    """Network surface whose deliveries happen when the explorer says so."""

    #: Network-surface contract: exploration never carries an Obs capture
    #: (snapshots must stay cheap to copy), so instrumentation is inert.
    obs = None

    def __init__(self) -> None:
        self.scheduler = _StepClock()
        self.trace = RunTrace()
        self._processes: dict[ProcessId, GMPMember] = {}
        #: per directed channel: FIFO queue of in-flight messages.
        self.channels: dict[tuple[ProcessId, ProcessId], list[MessageRecord]] = {}

    # -- registry -----------------------------------------------------------

    def register(self, process) -> None:
        if process.pid in self._processes:
            raise SimulationError(f"duplicate process id {process.pid}")
        self._processes[process.pid] = process

    def process(self, pid: ProcessId):
        return self._processes[pid]

    def processes(self):
        return dict(self._processes)

    def live_processes(self):
        return [p for p in self._processes.values() if not p.crashed]

    # -- observers (unused in exploration) -----------------------------------

    def add_send_observer(self, observer) -> None:
        raise ReproError("send observers are not supported under exploration")

    def add_crash_observer(self, observer) -> None:
        pass  # exploration drives suspicions itself

    def notify_crash(self, pid: ProcessId) -> None:
        pass

    # -- traffic --------------------------------------------------------------

    def send(self, sender, receiver, payload, category="protocol"):
        process = self._processes.get(sender)
        if process is None:
            raise SimulationError(f"unknown sender {sender}")
        if process.crashed:
            raise ProcessCrashedError(f"{sender} is crashed")
        record = MessageRecord(
            sender=sender, receiver=receiver, payload=payload, category=category
        )
        self.trace.record(
            sender,
            EventKind.SEND,
            time=self.scheduler.now,
            peer=receiver,
            message=record,
        )
        self.channels.setdefault((sender, receiver), []).append(record)
        return record

    def broadcast(self, sender, receivers, payload, category="protocol"):
        """Sequential-send fan-out, mirroring :meth:`Network.broadcast`:
        skips self, truncates (without raising) if the sender crashes
        mid-loop, returns the number of messages sent."""
        process = self._processes.get(sender)
        if process is None:
            raise SimulationError(f"unknown sender {sender}")
        sent = 0
        for receiver in receivers:
            if receiver == sender:
                continue
            if process.crashed:
                break
            self.send(sender, receiver, payload, category=category)
            sent += 1
        return sent

    def deliver_head(self, channel: tuple[ProcessId, ProcessId]) -> None:
        queue = self.channels.get(channel)
        if not queue:
            raise SimulationError(f"channel {channel} has nothing in flight")
        record = queue.pop(0)
        if not queue:
            del self.channels[channel]
        receiver = self._processes.get(record.receiver)
        if receiver is None or receiver.crashed:
            return
        receiver._receive(record)


class _InertDetector(FailureDetector):
    """Suspicions come only from the explorer."""


# ---------------------------------------------------------------------------
# Events the explorer can choose
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class _Deliver:
    channel: tuple[ProcessId, ProcessId]

    def describe(self) -> str:
        sender, receiver = self.channel
        return f"deliver {sender}->{receiver}"


@dataclass(frozen=True, slots=True)
class _Suspect:
    observer: ProcessId
    target: ProcessId

    def describe(self) -> str:
        return f"suspect {self.observer}:{self.target}"


@dataclass(frozen=True, slots=True)
class _Crash:
    victim: ProcessId

    def describe(self) -> str:
        return f"crash {self.victim}"


@dataclass
class _World:
    network: _FrontierNetwork
    members: dict[ProcessId, GMPMember]
    #: scripted suspicions not yet fired: (observer, target); a suspicion
    #: is enabled once its target has crashed (real detection) or
    #: unconditionally when marked spurious.
    suspicions: list[tuple[ProcessId, ProcessId, bool]]
    crashes: list[ProcessId]

    def clone(self) -> "_World":
        return copy.deepcopy(self)

    def enabled_events(self) -> list[object]:
        events: list[object] = []
        for victim in self.crashes:
            if not self.members[victim].crashed:
                events.append(_Crash(victim))
        crashed = {p for p, m in self.members.items() if m.crashed}
        for observer, target, spurious in self.suspicions:
            member = self.members[observer]
            if member.crashed or member.believes_faulty(target):
                continue
            if spurious or target in crashed:
                events.append(_Suspect(observer, target))
        for channel, queue in sorted(
            self.network.channels.items(),
            key=lambda kv: (kv[0][0].name, kv[0][1].name),
        ):
            receiver = self.members.get(channel[1])
            if queue and receiver is not None and not receiver.crashed:
                events.append(_Deliver(channel))
        return events

    def apply(self, event: object) -> None:
        self.network.scheduler.tick()
        if isinstance(event, _Crash):
            self.members[event.victim].crash()
            self.crashes.remove(event.victim)
        elif isinstance(event, _Suspect):
            self.suspicions = [
                s
                for s in self.suspicions
                if (s[0], s[1]) != (event.observer, event.target)
            ]
            self.members[event.observer].on_suspect(event.target)
        elif isinstance(event, _Deliver):
            self.network.deliver_head(event.channel)
        else:  # pragma: no cover - defensive
            raise ReproError(f"unknown exploration event {event!r}")


# ---------------------------------------------------------------------------
# Snapshot/restore and state fingerprinting (the snapshot engine's fabric)
# ---------------------------------------------------------------------------


def _snapshot(world: _World) -> tuple[bytes, list, int]:
    """Pickle the world once, with the trace's event list detached.

    The event list is append-only along any exploration path, so a
    reference to the live list plus its current length identifies the
    exact prefix this snapshot saw — restoring slices it back out.  This
    keeps the pickled blob independent of path depth (the dominant cost
    of naive deep copies on long schedules).
    """
    trace = world.network.trace
    events = trace._events
    trace._events = []
    try:
        blob = pickle.dumps(world, protocol=pickle.HIGHEST_PROTOCOL)
    finally:
        trace._events = events
    return blob, events, len(events)


def _restore(blob: bytes, events: list, length: int) -> _World:
    world: _World = pickle.loads(blob)
    world.network.trace._events = events[:length]
    return world


def _member_fingerprint(member: GMPMember) -> tuple:
    """Canonical hashable digest of one member's protocol-relevant state.

    Detector internals, join bookkeeping, and the app layer are excluded:
    under exploration the detector never fires and joins never run, so
    they cannot influence any future transition.  Sets are frozen so the
    digest is independent of insertion order.
    """
    state = member.state
    if state is None:
        state_fp = None
    else:
        state_fp = (
            state.version,
            tuple(state.view),
            tuple(state.seq),
            tuple(state.plans),
            frozenset(state.faulty),
            frozenset(state.ever_faulty),
            tuple(state.recovered),
            state.mgr,
        )
    round_ = member.update_round
    if round_ is None:
        round_fp = None
    else:
        round_fp = (
            round_.op,
            round_.version,
            frozenset(round_.pending),
            frozenset(round_.oks),
            round_.compressed,
        )
    reconfig = member.reconfig
    if reconfig is None:
        reconfig_fp = None
    else:
        reconfig_fp = (
            reconfig.phase,
            reconfig.view_size,
            frozenset(reconfig.pending),
            tuple(sorted(reconfig.responses.items())),
            frozenset(reconfig.propose_oks),
            reconfig.proposal_ops,
            reconfig.proposal_version,
            reconfig.invis,
        )
    return (
        member.crashed,
        member.quit,
        state_fp,
        round_fp,
        reconfig_fp,
        tuple(member.buffer._held),
        frozenset(member._noticed),
        frozenset(member._pre_join_faulty),
        member.broadcast_first,
    )


def _fingerprint(world: _World) -> tuple:
    """Canonical digest of a whole world.

    Message identity is ``(payload, category)`` — ``msg_id`` and send
    times are bookkeeping that differs between converging paths without
    changing any future transition, so they must not split the DAG.
    The remaining scripts (suspicions/crashes) are sets: their list order
    only permutes child ordering, never the reachable state set.
    """
    members = tuple(
        (proc, _member_fingerprint(world.members[proc]))
        for proc in sorted(world.members)
    )
    channels = tuple(
        (channel, tuple((record.payload, record.category) for record in queue))
        for channel, queue in sorted(world.network.channels.items())
    )
    return (
        members,
        channels,
        frozenset(world.suspicions),
        frozenset(world.crashes),
    )


@dataclass(frozen=True, slots=True)
class _Summary:
    """Memoised result of one fully explored subtree (tree semantics)."""

    terminals: int
    tree_states: int
    outcomes: frozenset


class _Frame:
    """One branch node on the iterative DFS stack."""

    __slots__ = (
        "fp",
        "blob",
        "events_ref",
        "events_len",
        "events",
        "index",
        "path",
        "chain",
        "chain_truncated",
        "terminals",
        "tree_states",
        "outcomes",
        "complete",
    )


class _StateBudget(Exception):
    """Raised when ``max_states`` expansions have been performed."""


# ---------------------------------------------------------------------------
# The explorer
# ---------------------------------------------------------------------------


@dataclass
class ExplorationResult:
    """Outcome of one exploration."""

    #: terminal *schedules* reached, with path multiplicity — identical
    #: across engines (a memoised subtree contributes every path through it).
    terminals: int = 0
    #: state expansions actually executed by this run.
    states: int = 0
    #: states a tree walk (no dedup) would have expanded; equals ``states``
    #: for the deepcopy engine and ``>= states`` under fingerprint dedup.
    tree_states: int = 0
    #: True when no bound was hit: every schedule was examined.
    complete: bool = True
    violations: list[tuple[str, PropertyReport]] = field(default_factory=list)
    #: distinct final (version, view) outcomes among surviving members.
    #: A mutable set while the engines accumulate; finalised by
    #: :meth:`Explorer.run` into a deterministically sorted tuple.
    outcomes: set = field(default_factory=set)

    @property
    def ok(self) -> bool:
        return not self.violations


def _ordered_outcomes(outcomes: Iterable[frozenset]) -> tuple:
    """Deterministic outcome ordering: sort by the sorted member entries."""
    return tuple(sorted(outcomes, key=lambda outcome: tuple(sorted(outcome))))


class Explorer:
    """Bounded-exhaustive DFS over protocol schedules."""

    def __init__(
        self,
        initial_view: Sequence[ProcessId],
        crashes: Iterable[ProcessId] = (),
        suspicions: Iterable[tuple[ProcessId, ProcessId, bool]] = (),
        max_states: int = 200_000,
        max_width: int = 64,
        check_liveness: bool = False,
        engine: str = "snapshot",
        workers: Optional[int] = None,
    ) -> None:
        if engine not in ("snapshot", "deepcopy"):
            raise ValueError(f"unknown exploration engine {engine!r}")
        if engine == "deepcopy" and workers is not None and workers > 1:
            raise ValueError("parallel exploration requires the snapshot engine")
        self.initial_view = list(initial_view)
        self.crashes = list(crashes)
        self.suspicions = list(suspicions)
        self.max_states = max_states
        self.max_width = max_width
        self.check_liveness = check_liveness
        self.engine = engine
        self.workers = workers

    def _root(self) -> _World:
        network = _FrontierNetwork()
        members: dict[ProcessId, GMPMember] = {}
        for proc in self.initial_view:
            member = GMPMember(
                proc,
                network,  # type: ignore[arg-type]
                _InertDetector(),
                initial_view=list(self.initial_view),
            )
            members[proc] = member
        for member in members.values():
            member.start()
        return _World(
            network=network,
            members=members,
            suspicions=list(self.suspicions),
            crashes=list(self.crashes),
        )

    def run(self) -> ExplorationResult:
        if self.engine == "deepcopy":
            result = self._run_deepcopy()
        elif self.workers is not None and self.workers > 1:
            result = self._run_parallel(self.workers)
        else:
            result = self._run_snapshot()
        result.outcomes = _ordered_outcomes(result.outcomes)
        return result

    # ------------------------------------------------------------------
    # Baseline engine: one deepcopy per child (kept for benchmarking and
    # as an independent oracle in equivalence tests)
    # ------------------------------------------------------------------

    def _run_deepcopy(self) -> ExplorationResult:
        result = ExplorationResult()
        stack: list[tuple[_World, str]] = [(self._root(), "init")]
        while stack:
            world, path = stack.pop()
            result.states += 1
            result.tree_states += 1
            if result.states > self.max_states:
                result.complete = False
                break
            events = world.enabled_events()
            if not events:
                self._check_terminal(world, path, result)
                continue
            if len(events) > self.max_width:
                events = events[: self.max_width]
                result.complete = False
            # Expand children; reuse the parent world for the last child to
            # halve the deepcopy volume.
            for event in events[:-1]:
                child = world.clone()
                child.apply(event)
                stack.append((child, f"{path} | {event.describe()}"))
            last = events[-1]
            world.apply(last)
            stack.append((world, f"{path} | {last.describe()}"))
        return result

    def _check_terminal(self, world: _World, path: str, result: ExplorationResult) -> None:
        result.terminals += 1
        report = check_gmp(
            world.network.trace,
            self.initial_view,
            check_liveness=self.check_liveness,
            check_cuts=False,  # causality reconstruction per terminal is costly
        )
        if not report.ok:
            result.violations.append((path, report))
        result.outcomes.add(self._terminal_outcome(world))

    def _terminal_outcome(self, world: _World) -> frozenset:
        return frozenset(
            (member.version, tuple(member.view))
            for member in world.members.values()
            if member.is_member
        )

    # ------------------------------------------------------------------
    # Snapshot engine: pickle-based forking + fingerprint memoisation
    # ------------------------------------------------------------------

    def _run_snapshot(self) -> ExplorationResult:
        result = ExplorationResult()
        memo: dict[tuple, _Summary] = {}
        try:
            self._explore_subtree(self._root(), "init", result, memo)
        except _StateBudget:
            result.complete = False
        return result

    def _count_state(self, result: ExplorationResult) -> None:
        result.states += 1
        result.tree_states += 1
        if result.states > self.max_states:
            result.complete = False
            raise _StateBudget

    def _segment(
        self, world: _World, path: str, result: ExplorationResult
    ) -> tuple[list, int, str, bool, bool]:
        """Advance through forced (single-choice) nodes without snapshots.

        Returns ``(events, chain, path, chain_truncated, node_truncated)``:
        the enabled events at the first branching or terminal node, how
        many forced nodes were traversed, the extended path, whether the
        width bound cut choices *along* the chain (parent subtrees are then
        incomplete), and whether it cut choices at the returned node.
        """
        chain = 0
        chain_truncated = False
        while True:
            events = world.enabled_events()
            node_truncated = False
            if len(events) > self.max_width:
                events = events[: self.max_width]
                node_truncated = True
                result.complete = False
            if len(events) != 1:
                return events, chain, path, chain_truncated, node_truncated
            if node_truncated:
                chain_truncated = True
            chain += 1
            self._count_state(result)
            event = events[0]
            world.apply(event)
            path = f"{path} | {event.describe()}"

    def _handle_terminal(
        self,
        world: _World,
        path: str,
        result: ExplorationResult,
        memo: dict,
    ) -> frozenset:
        """Count one terminal arrival; GMP-check each unique terminal once."""
        result.terminals += 1
        fp = _fingerprint(world)
        hit = memo.get(fp)
        if hit is not None:
            result.outcomes |= hit.outcomes
            return hit.outcomes
        report = check_gmp(
            world.network.trace,
            self.initial_view,
            check_liveness=self.check_liveness,
            check_cuts=False,
        )
        if not report.ok:
            result.violations.append((path, report))
        outcome = self._terminal_outcome(world)
        result.outcomes.add(outcome)
        outcomes = frozenset((outcome,))
        memo[fp] = _Summary(terminals=1, tree_states=1, outcomes=outcomes)
        return outcomes

    def _explore_subtree(
        self,
        world: _World,
        path: str,
        result: ExplorationResult,
        memo: dict,
    ) -> None:
        """Iterative DFS from ``world`` with snapshot forking and dedup.

        ``result`` accumulates global counts as work happens (so a budget
        abort leaves an honest partial result); each stack frame separately
        accumulates its subtree's tree-semantic summary, which is memoised
        by fingerprint once the subtree completes untruncated.
        """
        frames: list[_Frame] = []

        def contribute(
            terminals: int, tree_states: int, outcomes: frozenset, complete: bool
        ) -> None:
            if frames:
                top = frames[-1]
                top.terminals += terminals
                top.tree_states += tree_states
                top.outcomes |= outcomes
                top.complete = top.complete and complete

        descending = True
        while True:
            if descending:
                events, chain, path, chain_truncated, node_truncated = self._segment(
                    world, path, result
                )
                if not events:
                    self._count_state(result)
                    outcomes = self._handle_terminal(world, path, result, memo)
                    contribute(1, chain + 1, outcomes, not chain_truncated)
                    descending = False
                    continue
                fp = _fingerprint(world)
                hit = memo.get(fp)
                if hit is not None:
                    # Converged on an already-explored state: replay its
                    # summary (the chain above was executed live and is
                    # already in the global counts).
                    result.terminals += hit.terminals
                    result.tree_states += hit.tree_states
                    result.outcomes |= hit.outcomes
                    contribute(
                        hit.terminals,
                        hit.tree_states + chain,
                        hit.outcomes,
                        not chain_truncated,
                    )
                    descending = False
                    continue
                self._count_state(result)
                blob, events_ref, events_len = _snapshot(world)
                frame = _Frame()
                frame.fp = fp
                frame.blob = blob
                frame.events_ref = events_ref
                frame.events_len = events_len
                frame.events = events
                frame.index = 1
                frame.path = path
                frame.chain = chain
                frame.chain_truncated = chain_truncated
                frame.terminals = 0
                frame.tree_states = 1
                frame.outcomes = set()
                frame.complete = not node_truncated
                frames.append(frame)
                # First child runs on the live world — no restore needed.
                event = events[0]
                world.apply(event)
                path = f"{path} | {event.describe()}"
                continue
            # Ascending: resume the deepest frame with children left.
            if not frames:
                return
            top = frames[-1]
            if top.index < len(top.events):
                world = _restore(top.blob, top.events_ref, top.events_len)
                event = top.events[top.index]
                top.index += 1
                world.apply(event)
                path = f"{top.path} | {event.describe()}"
                descending = True
                continue
            frames.pop()
            if top.complete:
                memo[top.fp] = _Summary(
                    terminals=top.terminals,
                    tree_states=top.tree_states,
                    outcomes=frozenset(top.outcomes),
                )
            contribute(
                top.terminals,
                top.tree_states + top.chain,
                frozenset(top.outcomes),
                top.complete and not top.chain_truncated,
            )

    # ------------------------------------------------------------------
    # Parallel sharding (snapshot engine)
    # ------------------------------------------------------------------

    def _config(self) -> tuple:
        return (
            self.initial_view,
            self.crashes,
            self.suspicions,
            self.max_states,
            self.max_width,
            self.check_liveness,
        )

    def _run_parallel(self, workers: int) -> ExplorationResult:
        result = ExplorationResult()
        memo: dict[tuple, _Summary] = {}
        target = max(workers * 4, 2)
        queue: deque[tuple[_World, str]] = deque([(self._root(), "init")])
        try:
            while queue and len(queue) < target:
                world, path = queue.popleft()
                events, chain, path, chain_truncated, node_truncated = self._segment(
                    world, path, result
                )
                if not events:
                    self._count_state(result)
                    self._handle_terminal(world, path, result, memo)
                    continue
                self._count_state(result)
                blob, events_ref, events_len = _snapshot(world)
                for index, event in enumerate(events):
                    # Seeds are NOT deduplicated: each child is a distinct
                    # tree edge, and dropping one would lose its paths'
                    # multiplicity from `terminals`.
                    if index < len(events) - 1:
                        child = _restore(blob, events_ref, events_len)
                    else:
                        child = world
                    child.apply(event)
                    queue.append((child, f"{path} | {event.describe()}"))
        except _StateBudget:
            result.complete = False
            return result
        payloads = []
        for world, path in queue:
            blob, events_ref, events_len = _snapshot(world)
            payloads.append(
                self._config() + (blob, list(events_ref[:events_len]), path)
            )
        for shard in parallel_map(_run_shard, payloads, workers=workers):
            terminals, states, tree_states, complete, violations, outcomes = shard
            result.terminals += terminals
            result.states += states
            result.tree_states += tree_states
            result.complete = result.complete and complete
            result.violations.extend(violations)
            result.outcomes |= outcomes
        return result


def _run_shard(payload: tuple) -> tuple:
    """Worker-side entry: explore one seed subtree serially (picklable)."""
    (
        initial_view,
        crashes,
        suspicions,
        max_states,
        max_width,
        check_liveness,
        blob,
        events,
        path,
    ) = payload
    explorer = Explorer(
        initial_view,
        crashes=crashes,
        suspicions=suspicions,
        max_states=max_states,
        max_width=max_width,
        check_liveness=check_liveness,
    )
    world = pickle.loads(blob)
    world.network.trace._events = list(events)
    result = ExplorationResult()
    memo: dict[tuple, _Summary] = {}
    try:
        explorer._explore_subtree(world, path, result, memo)
    except _StateBudget:
        result.complete = False
    return (
        result.terminals,
        result.states,
        result.tree_states,
        result.complete,
        result.violations,
        set(result.outcomes),
    )


def explore_membership(
    n: int,
    crash_names: Iterable[str] = (),
    spurious: Iterable[tuple[str, str]] = (),
    observers: Optional[Iterable[str]] = None,
    max_states: int = 200_000,
    max_width: int = 64,
    engine: str = "snapshot",
    workers: Optional[int] = None,
) -> ExplorationResult:
    """Convenience wrapper: explore a ``p0..p{n-1}`` group.

    Args:
        n: group size.
        crash_names: members that may crash (the explorer chooses when).
        spurious: (observer, target) suspicions that may fire even though
            the target is alive.
        observers: who may detect each crash (default: every other member).
        engine: ``"snapshot"`` (pickle forking + state dedup, the default)
            or ``"deepcopy"`` (the baseline tree walk).
        workers: shard independent subtrees across this many processes
            (snapshot engine only; ``None``/1 = serial).
    """
    from repro.ids import pid

    view = [pid(f"p{i}") for i in range(n)]
    crashes = [pid(name) for name in crash_names]
    suspicion_list: list[tuple[ProcessId, ProcessId, bool]] = []
    observer_names = (
        list(observers) if observers is not None else [f"p{i}" for i in range(n)]
    )
    for victim in crashes:
        for observer in observer_names:
            if observer != victim.name:
                suspicion_list.append((pid(observer), victim, False))
    for observer, target in spurious:
        suspicion_list.append((pid(observer), pid(target), True))
    explorer = Explorer(
        view,
        crashes=crashes,
        suspicions=suspicion_list,
        max_states=max_states,
        max_width=max_width,
        engine=engine,
        workers=workers,
    )
    return explorer.run()
