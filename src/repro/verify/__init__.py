"""Systematic state-space exploration of the protocol.

Seeded simulation (the test suite's storms) samples interleavings; this
package *enumerates* them: for small configurations it explores every
FIFO-respecting order of message deliveries, suspicion firings, and crash
injections, checking the GMP properties on every terminal run.  It is the
closest thing to model checking the implementation itself — the actual
:class:`~repro.core.member.GMPMember` code runs in every branch.

See :mod:`repro.verify.explore`.
"""

from repro.verify.explore import ExplorationResult, Explorer, explore_membership

__all__ = ["Explorer", "ExplorationResult", "explore_membership"]
