"""Shared scaffolding for baseline membership protocols.

:class:`BaselineMember` provides the bookkeeping every baseline shares —
an ordered view, a version counter, faulty/ever-faulty sets, S1 isolation,
trace recording — while each concrete baseline supplies its own message
handling.  The constructor signature matches :class:`repro.core.member.
GMPMember` so :class:`repro.core.service.MembershipCluster` can host any
baseline via ``member_class=...``.
"""

from __future__ import annotations

from typing import Optional

from repro.detectors.base import FailureDetector
from repro.ids import ProcessId
from repro.model.events import EventKind
from repro.sim.network import Network
from repro.sim.process import SimProcess

__all__ = ["BaselineMember"]


class BaselineMember(SimProcess):
    """Common state and helpers for baseline protocols."""

    def __init__(
        self,
        pid: ProcessId,
        network: Network,
        detector: FailureDetector,
        initial_view: Optional[list[ProcessId]] = None,
        contacts: Optional[list[ProcessId]] = None,
        majority_updates: bool = True,
        **_ignored: object,
    ) -> None:
        super().__init__(pid, network)
        if initial_view is None:
            raise ValueError(
                f"{type(self).__name__} does not implement joins; every "
                "member needs an initial view"
            )
        self.detector = detector
        self.majority_updates = majority_updates
        self.view: list[ProcessId] = list(initial_view)
        self.version = 0
        self.faulty: set[ProcessId] = set()
        self.ever_faulty: set[ProcessId] = set()
        detector.attach(self)

    # ------------------------------------------------------ detector contract

    def current_members(self) -> tuple[ProcessId, ...]:
        return tuple(self.view)

    def is_current_member(self, target: ProcessId) -> bool:
        return target in self.view

    def believes_faulty(self, target: ProcessId) -> bool:
        return target in self.ever_faulty

    def on_suspect(self, target: ProcessId) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # ------------------------------------------------------------- lifecycle

    def on_start(self) -> None:
        self.detector.start()

    def quit_protocol(self, detail: str = "") -> None:
        self.detector.stop()
        super().quit_protocol(detail)

    def crash(self, detail: str = "") -> None:
        self.detector.stop()
        super().crash(detail)

    # ----------------------------------------------------------- S1 isolation

    def should_accept(self, sender: ProcessId, payload: object) -> bool:
        return sender not in self.ever_faulty

    # --------------------------------------------------------------- helpers

    @property
    def is_member(self) -> bool:
        return not self.crashed and self.pid in self.view

    def note_faulty(self, target: ProcessId) -> bool:
        """Record belief + S1 isolation; returns True when new."""
        if target == self.pid or target in self.ever_faulty:
            return False
        self.ever_faulty.add(target)
        if target in self.view:
            self.faulty.add(target)
        self._record(EventKind.FAULTY, peer=target)
        return True

    def apply_remove(self, target: ProcessId) -> None:
        """Apply one removal and record REMOVE + INSTALL events."""
        if target not in self.view:
            return
        self.note_faulty(target)
        self.view.remove(target)
        self.faulty.discard(target)
        self.version += 1
        self._record(EventKind.REMOVE, peer=target)
        self.network.trace.record(
            self.pid,
            EventKind.INSTALL,
            time=self.network.scheduler.now,
            version=self.version,
            view=tuple(self.view),
        )

    def perceived_coordinator(self) -> Optional[ProcessId]:
        """The most senior member I do not believe faulty."""
        for member in self.view:
            if member not in self.ever_faulty:
                return member
        return None

    def _record(self, kind: EventKind, peer: Optional[ProcessId] = None, detail: str = "") -> None:
        self.network.trace.record(
            self.pid,
            kind,
            time=self.network.scheduler.now,
            peer=peer,
            detail=detail,
        )
