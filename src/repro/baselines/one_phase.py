"""Claim 7.1 strawman: a one-phase membership update algorithm.

Whoever believes itself the most senior non-faulty member acts as the
coordinator and installs removals by a *single* commit broadcast — no
invitation, no acknowledgements, no majority.  This is the cheapest
conceivable coordinator protocol, and it is exactly what Claim 7.1 proves
unsound: partition ``Proc`` into R and S with ``faulty_R(Mgr)`` and
``faulty_S(r)``; r's commit (removing Mgr) reaches only R — S discards it
under S1 — while Mgr's commit (removing r) reaches only S.  The two sides
install different version-1 views, violating GMP-3.

The benchmark ``benchmarks/bench_optimality.py`` runs that schedule against
this member (checker FAILs) and against the real protocol (checker PASSes,
because no majority exists for both commits at once).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ids import ProcessId
from repro.baselines.common import BaselineMember

__all__ = ["OnePhaseCommit", "OnePhaseMember"]


@dataclass(frozen=True, slots=True)
class OnePhaseCommit:
    """The single message of the protocol: "remove ``target``, now"."""

    target: ProcessId
    version: int


class OnePhaseMember(BaselineMember):
    """One-phase coordinator-broadcast membership (unsound by Claim 7.1)."""

    def on_suspect(self, target: ProcessId) -> None:
        if self.crashed or not self.is_member:
            return
        if not self.note_faulty(target):
            return
        self._maybe_coordinate()

    def _maybe_coordinate(self) -> None:
        """If I am the coordinator in my own eyes, commit removals directly."""
        while (
            not self.crashed
            and self.is_member
            and self.perceived_coordinator() == self.pid
        ):
            pending = [m for m in self.view if m in self.faulty]
            if not pending:
                return
            target = pending[0]
            version = self.version + 1
            self.apply_remove(target)
            self.broadcast(self.view, OnePhaseCommit(target, version))

    def on_message(self, sender: ProcessId, payload: object) -> None:
        if self.crashed or not isinstance(payload, OnePhaseCommit):
            return
        if payload.target == self.pid:
            self.quit_protocol("removed by one-phase commit")
            return
        if payload.version != self.version + 1:
            return  # no buffering in the strawman: stale or gapped, drop
        if payload.target not in self.view:
            return
        self.apply_remove(payload.target)
        self._maybe_coordinate()
