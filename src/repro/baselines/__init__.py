"""Baseline membership protocols the paper compares against.

* :mod:`repro.baselines.one_phase` — a single-broadcast coordinator protocol,
  the strawman of **Claim 7.1** ("a one-phase update algorithm cannot solve
  GMP when the coordinator can fail").
* :mod:`repro.baselines.two_phase_reconfig` — the paper's protocol with a
  two-phase reconfiguration and a plausible-but-wrong invisible-commit guess,
  the strawman of **Claim 7.2**.
* :mod:`repro.baselines.symmetric` — a Bruso-style symmetric protocol [5]:
  every process behaves identically, all-to-all flooding per change; "an
  order of magnitude more messages in all situations" (Section 1).
* :mod:`repro.baselines.abcast` — a Moser-style membership service layered
  on a fault-tolerant atomic broadcast [16], whose ordering/stability traffic
  the paper's protocol avoids.

All baseline members share :class:`repro.core.member.GMPMember`'s
constructor signature so :class:`repro.core.service.MembershipCluster` can
host any of them via ``member_class=...``.
"""

from repro.baselines.one_phase import OnePhaseMember
from repro.baselines.two_phase_reconfig import TwoPhaseReconfigMember
from repro.baselines.symmetric import SymmetricMember
from repro.baselines.abcast import AbcastMember

__all__ = [
    "OnePhaseMember",
    "TwoPhaseReconfigMember",
    "SymmetricMember",
    "AbcastMember",
]
