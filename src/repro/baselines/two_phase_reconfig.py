"""Claim 7.2 strawman: two-phase reconfiguration with a wrong guess.

Identical to the paper's protocol except that a reconfigurer skips the
proposal phase — after a majority interrogation it *commits its guess
directly* — and, when it faces two competing proposals for the same version,
it guesses the **senior** proposer's operation (a perfectly plausible
heuristic: "trust the coordinator's plan").

Claim 7.2 proves no two-phase reconfigurer can know which of the two
proposals was committed invisibly; this baseline realises the wrong branch
of that unavoidable guess so the Figure 11 schedule makes it install
divergent version-1 views — a GMP-3 violation the property checker catches.
The same schedule run against the real three-phase protocol stays safe
(see ``benchmarks/bench_optimality.py``).
"""

from __future__ import annotations

from repro.core.member import GMPMember

__all__ = ["TwoPhaseReconfigMember"]


class TwoPhaseReconfigMember(GMPMember):
    """GMP with ``reconfig_phases=2`` and the senior-proposer guess."""

    def __init__(self, *args: object, **kwargs: object) -> None:
        kwargs.setdefault("reconfig_phases", 2)
        kwargs.setdefault("stable_preference", "senior")
        super().__init__(*args, **kwargs)  # type: ignore[arg-type]
