"""Moser-style membership over a fault-tolerant atomic broadcast [16].

The paper contrasts its direct protocol with designs that assume "an
underlying fault-tolerant atomic broadcast" and notes its own solution is
cheaper.  This baseline makes the comparison concrete: membership changes
are submitted to an atomic broadcast service — implemented here as a
sequencer that totally orders submissions, with all-to-all stability
acknowledgements providing the fault-tolerance the abstraction promises —
and every process applies changes in delivery order.

Cost per membership change in a group of size n:

* 1 submission to the sequencer,
* n-1 ordered-broadcast messages,
* (n-1)^2 + (n-1) stability acknowledgements (each deliverer tells everyone),

about ``n^2 + n - 1`` messages versus the paper's ``3n - 5``.

Sequencer failure is handled by succession: the next-ranked process that
believes everything above it faulty assumes sequencing, continuing from the
highest sequence number it has delivered.  (A production abcast needs a
flush protocol here; for the message-cost comparison the succession rule
suffices, and the comparison benchmarks crash at most the sequencer.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ids import ProcessId
from repro.baselines.common import BaselineMember
from repro.core.messages import Op

__all__ = ["AbcastSubmit", "AbcastOrdered", "AbcastStable", "AbcastMember"]


@dataclass(frozen=True, slots=True)
class AbcastSubmit:
    """Submit an operation to the sequencer for total ordering."""

    op: Op


@dataclass(frozen=True, slots=True)
class AbcastOrdered:
    """The sequencer's ordered broadcast: deliver ``op`` as message ``seqno``."""

    op: Op
    seqno: int


@dataclass(frozen=True, slots=True)
class AbcastStable:
    """Stability acknowledgement: "I have delivered ``seqno``"."""

    seqno: int


class AbcastMember(BaselineMember):
    """Membership changes totally ordered by an atomic broadcast substrate."""

    def __init__(self, *args: object, **kwargs: object) -> None:
        super().__init__(*args, **kwargs)  # type: ignore[arg-type]
        self._next_seqno = 1  # next number this process would assign
        self._delivered = 0  # highest seqno applied locally
        self._pending: dict[int, Op] = {}  # ordered but not yet applicable
        self._submitted: set[ProcessId] = set()  # dedup own submissions

    # ---------------------------------------------------------------- roles

    def _sequencer(self) -> ProcessId | None:
        return self.perceived_coordinator()

    def on_suspect(self, target: ProcessId) -> None:
        if self.crashed or not self.is_member:
            return
        if not self.note_faulty(target):
            return
        op = Op("remove", target)
        if self._sequencer() == self.pid:
            self._order(op)
        elif self._sequencer() is not None:
            if target not in self._submitted:
                self._submitted.add(target)
                self.send(self._sequencer(), AbcastSubmit(op))  # type: ignore[arg-type]

    def _order(self, op: Op) -> None:
        """Sequencer role: assign the next number and broadcast."""
        if op.target not in self.view:
            return
        self._next_seqno = max(self._next_seqno, self._delivered + 1)
        seqno = self._next_seqno
        self._next_seqno += 1
        self.broadcast(self.view, AbcastOrdered(op, seqno))
        self._deliver(seqno, op)

    # ------------------------------------------------------------- messages

    def on_message(self, sender: ProcessId, payload: object) -> None:
        if self.crashed:
            return
        if isinstance(payload, AbcastSubmit):
            if self._sequencer() == self.pid:
                self.note_faulty(payload.op.target)
                self._order(payload.op)
        elif isinstance(payload, AbcastOrdered):
            self._pending[payload.seqno] = payload.op
            self._drain()
        # AbcastStable messages model the stability traffic a fault-tolerant
        # abcast requires; they carry no further protocol state here.

    def _drain(self) -> None:
        while not self.crashed and self._delivered + 1 in self._pending:
            seqno = self._delivered + 1
            op = self._pending.pop(seqno)
            self._deliver(seqno, op)

    def _deliver(self, seqno: int, op: Op) -> None:
        self._delivered = seqno
        self._next_seqno = max(self._next_seqno, seqno + 1)
        if op.target == self.pid:
            self.quit_protocol("removed by ordered membership change")
            return
        if op.target in self.view:
            self.apply_remove(op.target)
        if not self.crashed:
            # All-to-all stability acknowledgement.  AbcastStable carries no
            # protocol state; receivers count it and drop it, so it is
            # intentionally outside the codec/dispatch registry.
            self.broadcast(self.view, AbcastStable(seqno))  # lint: allow[schema]
