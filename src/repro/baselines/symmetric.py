"""Bruso-style symmetric failure-notification protocol [5].

Every process behaves identically: a suspicion is flooded to the whole
group, every receiver adopts it and floods its own accusation, and every
accusation is individually acknowledged (Bruso's protocol is built on
acknowledged point-to-point notifications).  A process removes the accused
once every member it still trusts has accused, so one exclusion in a group
of size n costs about ``2(n-1)^2`` messages — against the paper's ``3n - 5``
— which is the "order of magnitude more messages in all situations" of
Section 1.

The flooding rule makes removals consistent for the sequential-failure
workloads the comparison benchmarks use; ordering *concurrent* removals
consistently is precisely what this design struggles with, and one reason
the paper's asymmetric protocol exists.  Joins are not supported.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ids import ProcessId
from repro.baselines.common import BaselineMember

__all__ = ["Accuse", "AccuseAck", "SymmetricMember"]


@dataclass(frozen=True, slots=True)
class Accuse:
    """"I believe ``target`` is faulty" — flooded to the whole group."""

    target: ProcessId


@dataclass(frozen=True, slots=True)
class AccuseAck:
    """Per-accusation acknowledgement (Bruso's notifications are ack'd)."""

    target: ProcessId


class SymmetricMember(BaselineMember):
    """Symmetric all-to-all membership (message-cost comparison baseline)."""

    def __init__(self, *args: object, **kwargs: object) -> None:
        super().__init__(*args, **kwargs)  # type: ignore[arg-type]
        #: per accused target, who has accused it (self included once flooded)
        self._accusers: dict[ProcessId, set[ProcessId]] = {}

    def on_suspect(self, target: ProcessId) -> None:
        if self.crashed or not self.is_member:
            return
        if self.note_faulty(target):
            self._flood(target)
        self._maybe_remove(target)

    def _flood(self, target: ProcessId) -> None:
        self._accusers.setdefault(target, set()).add(self.pid)
        self.broadcast(self.view, Accuse(target))

    def on_message(self, sender: ProcessId, payload: object) -> None:
        if self.crashed:
            return
        if isinstance(payload, Accuse):
            if payload.target == self.pid:
                self.quit_protocol("accused by the group")
                return
            # AccuseAcks only contribute to the message count; they are
            # intentionally outside the codec/dispatch registry.
            self.send(sender, AccuseAck(payload.target))  # lint: allow[schema]
            if self.note_faulty(payload.target):
                self._flood(payload.target)
            else:
                self._accusers.setdefault(payload.target, set())
            self._accusers[payload.target].add(sender)
            self._maybe_remove(payload.target)
        # AccuseAcks carry no protocol state; they model Bruso's
        # acknowledged delivery and only contribute to the message count.

    def _maybe_remove(self, target: ProcessId) -> None:
        """Remove once every still-trusted member has accused."""
        if target not in self.view:
            return
        required = {
            member
            for member in self.view
            if member != target
            and member != self.pid
            and not (member in self.ever_faulty and member != target)
        }
        accusers = self._accusers.get(target, set())
        if required <= accusers:
            self.apply_remove(target)
            self._accusers.pop(target, None)
            # Removal may unblock other pending accusations whose required
            # sets shrank.
            for other in list(self._accusers):
                self._maybe_remove(other)
