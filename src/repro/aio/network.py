"""Asyncio-backed implementation of the Network surface.

Implements the subset of :class:`repro.sim.network.Network` the protocol
and detector layers use — ``send``, ``register``, ``processes``, the trace,
crash/send observers — over a live asyncio loop.  Per-channel FIFO is
preserved exactly as in the simulator: a delivery is never scheduled before
an earlier delivery on the same directed channel.

Delays default to a small uniform jitter so runs exhibit genuine
asynchronous interleavings at real-time speed.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import ProcessCrashedError, SimulationError
from repro.ids import ProcessId
from repro.model.events import EventKind, MessageRecord
from repro.sim.network import DelayModel, UniformDelay
from repro.sim.trace import RunTrace
from repro.aio.scheduler import AioScheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.process import SimProcess

__all__ = ["AioNetwork"]

_FIFO_EPSILON = 1e-6


class AioNetwork:
    """Live asyncio message fabric with the simulator's Network API."""

    def __init__(
        self,
        scheduler: AioScheduler,
        trace: Optional[RunTrace] = None,
        delay_model: Optional[DelayModel] = None,
        seed: int = 0,
    ) -> None:
        self.scheduler = scheduler
        self.trace = trace if trace is not None else RunTrace()
        self.delay_model: DelayModel = (
            delay_model if delay_model is not None else UniformDelay(0.001, 0.01)
        )
        self.rng = random.Random(seed)
        #: optional :class:`repro.obs.Obs` capture (same contract as the
        #: simulator Network: ``None`` means one attribute check per send).
        self.obs = None
        self._processes: dict[ProcessId, "SimProcess"] = {}
        self._channel_clock: dict[tuple[ProcessId, ProcessId], float] = {}
        self._send_observers: list[Callable[[MessageRecord], None]] = []
        self._crash_observers: list[Callable[[ProcessId], None]] = []
        self._fault_injector = None  # duck-typed: .on_send(record) -> decision

    # ----------------------------------------------------------- registry

    def register(self, process: "SimProcess") -> None:
        if process.pid in self._processes:
            raise SimulationError(f"duplicate process id {process.pid}")
        self._processes[process.pid] = process

    def process(self, pid: ProcessId) -> "SimProcess":
        return self._processes[pid]

    def get_process(self, pid: ProcessId) -> "Optional[SimProcess]":
        return self._processes.get(pid)

    def processes(self) -> dict[ProcessId, "SimProcess"]:
        return dict(self._processes)

    def live_processes(self) -> list["SimProcess"]:
        return [p for p in self._processes.values() if not p.crashed]

    # ---------------------------------------------------------- observers

    def add_send_observer(self, observer: Callable[[MessageRecord], None]) -> None:
        self._send_observers.append(observer)

    def add_crash_observer(self, observer: Callable[[ProcessId], None]) -> None:
        self._crash_observers.append(observer)

    def notify_crash(self, pid: ProcessId) -> None:
        for observer in list(self._crash_observers):
            observer(pid)

    def set_fault_injector(self, injector) -> None:
        """Install a chaos injector consulted on every send (None clears)."""
        self._fault_injector = injector

    # -------------------------------------------------------------- sending

    def send(
        self,
        sender: ProcessId,
        receiver: ProcessId,
        payload: object,
        category: str = "protocol",
    ) -> MessageRecord:
        process = self._processes.get(sender)
        if process is None:
            raise SimulationError(f"unknown sender {sender}")
        if process.crashed:
            raise ProcessCrashedError(f"{sender} is crashed and cannot send")
        record = MessageRecord(
            sender=sender, receiver=receiver, payload=payload, category=category
        )
        self.trace.record(
            sender,
            EventKind.SEND,
            time=self.scheduler.now,
            peer=receiver,
            message=record,
        )
        if self.obs is not None:
            self.obs.count_send(sender, category)
        for observer in list(self._send_observers):
            observer(record)
        delay = self.delay_model.delay(sender, receiver, self.rng)
        copies = 1
        injector = self._fault_injector
        if injector is not None:
            decision = injector.on_send(record)
            if decision is not None:
                if decision.drop:
                    return record
                delay += decision.delay
                copies += decision.duplicates
        channel = (sender, receiver)
        earliest = self._channel_clock.get(channel, 0.0) + _FIFO_EPSILON
        when = max(self.scheduler.now + delay, earliest)
        # Injected extra delay participates in the channel clock, so a
        # delayed frame stalls the channel rather than being overtaken —
        # the per-channel FIFO property is preserved under chaos.
        for _ in range(copies):
            self._channel_clock[channel] = when
            self.scheduler.at(when, lambda: self._deliver(record))
            when += _FIFO_EPSILON
        return record

    def broadcast(
        self,
        sender: ProcessId,
        receivers,
        payload: object,
        category: str = "protocol",
    ) -> int:
        """Fan-out with :meth:`repro.sim.network.Network.broadcast` semantics:
        skips self, truncates (without raising) on mid-loop sender crash,
        returns the number of messages sent."""
        process = self._processes.get(sender)
        if process is None:
            raise SimulationError(f"unknown sender {sender}")
        sent = 0
        for receiver in receivers:
            if receiver == sender:
                continue
            if process.crashed:
                break
            self.send(sender, receiver, payload, category=category)
            sent += 1
        return sent

    def _deliver(self, record: MessageRecord) -> None:
        receiver = self._processes.get(record.receiver)
        if receiver is None or receiver.crashed:
            return
        receiver._receive(record)
