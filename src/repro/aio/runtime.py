"""Live membership clusters on asyncio.

:class:`AioMembershipRuntime` assembles unmodified
:class:`~repro.core.member.GMPMember` instances over the asyncio network
fabric, with real wall-clock heartbeat (or oracle) failure detection.  It is
the runtime a long-lived service embedding this library would use; the
simulator remains the tool for reproducible adversarial schedules.

All methods must be called from within a running event loop (they schedule
callbacks on it); the ``async`` helpers do the waiting.
"""

from __future__ import annotations

import asyncio
from typing import Iterable, Literal, Optional

from repro.detectors.base import FailureDetector
from repro.detectors.heartbeat import HeartbeatDetector
from repro.detectors.oracle import OracleDetector
from repro.ids import ProcessId, ordered_view, pid
from repro.sim.network import DelayModel
from repro.core.member import GMPMember
from repro.aio.network import AioNetwork
from repro.aio.scheduler import AioScheduler

__all__ = ["AioMembershipRuntime"]


class AioMembershipRuntime:
    """A live group of GMP members on the current asyncio event loop."""

    def __init__(
        self,
        members: Iterable[ProcessId | str],
        detector: Literal["heartbeat", "oracle"] = "heartbeat",
        heartbeat_period: float = 0.05,
        heartbeat_timeout: float = 0.25,
        oracle_delay: float = 0.05,
        delay_model: Optional[DelayModel] = None,
        seed: int = 0,
        majority_updates: bool = True,
        transport: Literal["memory", "tcp"] = "memory",
        wire: str = "json",
        obs=None,
    ) -> None:
        self.initial_view = ordered_view(
            m if isinstance(m, ProcessId) else pid(m) for m in members
        )
        self.scheduler = AioScheduler()
        self.transport = transport
        if transport == "tcp":
            from repro.aio.tcp import TcpNetwork

            self.network = TcpNetwork(self.scheduler, wire=wire)  # type: ignore[assignment]
        else:
            self.network = AioNetwork(
                self.scheduler, delay_model=delay_model, seed=seed
            )
        #: optional :class:`repro.obs.Obs` capture shared by the fabric,
        #: detectors and member spans for this runtime.
        self.obs = obs
        self.network.obs = obs
        self.detector_kind = detector
        self.heartbeat_period = heartbeat_period
        self.heartbeat_timeout = heartbeat_timeout
        self.oracle_delay = oracle_delay
        self.majority_updates = majority_updates
        self.members: dict[ProcessId, GMPMember] = {}
        for member in self.initial_view:
            self._build(member, initial_view=list(self.initial_view))
        self._started = False
        #: background tasks (server teardown, joiner bring-up) retained
        #: until done — the loop itself only keeps weak references.
        self._tasks: set[asyncio.Task] = set()

    @property
    def trace(self):
        return self.network.trace

    def _make_detector(self) -> FailureDetector:
        if self.detector_kind == "heartbeat":
            return HeartbeatDetector(
                self.network,  # type: ignore[arg-type]
                period=self.heartbeat_period,
                timeout=self.heartbeat_timeout,
            )
        return OracleDetector(self.network, delay=self.oracle_delay)  # type: ignore[arg-type]

    def _build(
        self,
        member: ProcessId,
        initial_view: Optional[list[ProcessId]] = None,
        contacts: Optional[list[ProcessId]] = None,
    ) -> GMPMember:
        process = GMPMember(
            member,
            self.network,  # type: ignore[arg-type]
            self._make_detector(),
            initial_view=initial_view,
            contacts=contacts,
            majority_updates=self.majority_updates,
            join_retry=max(0.2, self.heartbeat_timeout),
        )
        self.members[member] = process
        return process

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        if self._started:
            raise RuntimeError("runtime already started")
        if self.transport == "tcp":
            raise RuntimeError("TCP transport requires `await start_async()`")
        self._started = True
        for member in self.members.values():
            member.start()

    async def start_async(self) -> None:
        """Start the runtime on the running loop (required for TCP: it opens
        sockets first; a harmless alternative to :meth:`start` for memory)."""
        if self._started:
            raise RuntimeError("runtime already started")
        self._started = True
        if self.transport == "tcp":
            await self.network.start()  # type: ignore[attr-defined]
            # A crashed member never answers again: close its server so
            # senders stop retrying promptly instead of filling kernel queues.
            self.network.add_crash_observer(self._on_tcp_crash)
        for member in self.members.values():
            member.start()

    def _spawn(self, coro) -> asyncio.Task:
        """Schedule a background task the runtime stays accountable for.

        The task is retained until it finishes (the event loop holds only a
        weak reference) and a failure is routed to the loop's exception
        handler instead of disappearing with the garbage-collected task.
        """
        task = asyncio.get_running_loop().create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._on_task_done)
        return task

    def _on_task_done(self, task: asyncio.Task) -> None:
        self._tasks.discard(task)
        if task.cancelled():
            return
        exc = task.exception()
        if exc is not None:
            task.get_loop().call_exception_handler(
                {
                    "message": "background runtime task failed",
                    "exception": exc,
                    "task": task,
                }
            )

    def _on_tcp_crash(self, who: ProcessId) -> None:
        self._spawn(self.network.close_server(who))  # type: ignore[attr-defined]

    async def stop_async(self) -> None:
        """Close a TCP-transport runtime's sockets (no-op for memory)."""
        for task in list(self._tasks):
            task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
        if self.transport == "tcp":
            await self.network.stop()  # type: ignore[attr-defined]

    def resolve(self, who: ProcessId | str) -> ProcessId:
        if isinstance(who, ProcessId):
            return who
        matches = [p for p in self.members if p.name == who]
        if not matches:
            raise KeyError(f"no member named {who!r}")
        return max(matches, key=lambda p: p.incarnation)

    def crash(self, who: ProcessId | str) -> None:
        self.members[self.resolve(who)].crash()

    def join(self, name: str, contact: Optional[ProcessId | str] = None) -> ProcessId:
        incarnation = max(
            (p.incarnation + 1 for p in self.members if p.name == name), default=0
        )
        joiner = pid(name, incarnation)
        contacts = list(self.initial_view)
        if contact is not None:
            preferred = self.resolve(contact)
            contacts = [preferred] + [c for c in contacts if c != preferred]
        process = self._build(joiner, contacts=contacts)
        if self._started:
            if self.transport == "tcp":
                # The joiner's server must be listening before it speaks.
                async def bring_up() -> None:
                    await self.network.serve(joiner)  # type: ignore[attr-defined]
                    if not process.crashed:
                        process.start()

                self._spawn(bring_up())
            else:
                process.start()
        return joiner

    def restart(self, name: str, contact: Optional[ProcessId | str] = None) -> ProcessId:
        """Recover a crashed member as a new incarnation (Section 7).

        The paper treats a recovered process as a new and different process
        instance, so restart is join-with-the-same-name: the new incarnation
        runs the join procedure against the surviving group.  Over TCP the
        new incarnation gets its own server socket (the old one was closed
        when the crash was observed), so recovery genuinely works end to
        end: peers reconnect to the new instance rather than retrying the
        dead one.
        """
        current = max(
            (p for p in self.members if p.name == name),
            key=lambda p: p.incarnation,
            default=None,
        )
        if current is not None and not self.members[current].crashed:
            raise RuntimeError(f"{name} is still running; crash it before restarting")
        return self.join(name, contact=contact)

    # -------------------------------------------------------------- queries

    def live_members(self) -> list[GMPMember]:
        return [m for m in self.members.values() if m.is_member]

    def views(self) -> dict[ProcessId, tuple[int, tuple[ProcessId, ...]]]:
        return {
            p: (m.version, tuple(m.view))
            for p, m in self.members.items()
            if m.is_member and m.version is not None
        }

    def in_agreement(self) -> bool:
        """All live members share one view that is exactly the live set."""
        alive = self.live_members()
        if not alive:
            return False
        views = {tuple(m.view) for m in alive}
        versions = {m.version for m in alive}
        if len(views) != 1 or len(versions) != 1:
            return False
        if set(next(iter(views))) != {m.pid for m in alive}:
            return False
        return all(m.update_round is None and m.reconfig is None for m in alive)

    # ---------------------------------------------------------------- waits

    async def wait_for_agreement(self, timeout: float = 10.0, poll: float = 0.02) -> bool:
        """Poll until all surviving members agree (or time out)."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while loop.time() < deadline:
            if self.in_agreement():
                return True
            await asyncio.sleep(poll)
        return self.in_agreement()

    async def run_for(self, duration: float) -> None:
        """Let the cluster run for ``duration`` seconds of real time."""
        await asyncio.sleep(duration)
