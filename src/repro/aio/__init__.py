"""Asyncio runtime: the same protocol state machines on a real event loop.

The protocol classes are sans-I/O: they talk to the world through the
``Network``/``Scheduler`` surface.  This package provides asyncio-backed
implementations of that surface, so an unmodified
:class:`repro.core.member.GMPMember` (and every detector) runs under real
concurrency and wall-clock time — the "asyncio works" leg of the
reproduction.

Use :class:`repro.aio.runtime.AioMembershipRuntime` to spin up a live
cluster inside any asyncio program; see ``examples/asyncio_cluster.py``.
"""

from repro.aio.scheduler import AioScheduler, AioTimer
from repro.aio.network import AioNetwork
from repro.aio.runtime import AioMembershipRuntime

__all__ = ["AioScheduler", "AioTimer", "AioNetwork", "AioMembershipRuntime"]
