"""TCP transport: the protocol over real sockets, hardened for failures.

:class:`TcpNetwork` implements the Network surface over loopback TCP using
either wire codec from :mod:`repro.codec` — newline-framed JSON
(``wire="json"``, the default) or length-prefixed compact binary
(``wire="compact"``, wire version 2; each frame is preceded by a u32
big-endian byte length).  Each member hosts a TCP server; a directed
channel is one persistent connection.

TCP alone gives in-order delivery *per connection*; it does not give the
paper's reliable-FIFO channel across connection failures — a frame sitting
in the kernel send buffer when the peer's server dies is silently gone.
The channel layer therefore adds its own reliability on top:

* every protocol frame carries its globally monotonic ``msg_id`` (already
  present in both wire codecs), which is strictly increasing per directed
  channel;
* the receiver acknowledges receipt by writing the high-water ``msg_id``
  back on the same connection (8-byte big-endian records — the reverse
  direction of a channel connection carries only acks);
* the sender keeps every frame in a retransmission buffer until it is
  acknowledged, and on reconnect resends the entire unacknowledged suffix
  in order;
* the receiver drops frames at or below its per-channel high-water mark,
  so retransmissions (and wire-level duplicates injected by
  :mod:`repro.chaos`) collapse to exactly-once in-order delivery;
* reconnects use capped exponential backoff with seeded jitter, and a
  channel gives up only when a crash observer (or the fault plan, via
  :meth:`mark_dead`) says the peer is dead.

All members still run inside one asyncio event loop (this is a transport
demonstration, not a deployment harness), but every protocol byte genuinely
crosses a socket, the codec, and the kernel — exercising the full
encode/route/decode path a distributed deployment would use.
"""

from __future__ import annotations

import asyncio
import random
import struct
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro import codec
from repro.errors import ProcessCrashedError, SimulationError
from repro.ids import ProcessId
from repro.model.events import EventKind, MessageRecord
from repro.sim.trace import RunTrace
from repro.aio.scheduler import AioScheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.process import SimProcess

__all__ = ["TcpNetwork", "TcpStats"]

#: framing for wire="compact": u32 big-endian frame length.
_LEN_PREFIX = struct.Struct("!I")

#: receiver->sender acknowledgement record: high-water delivered msg_id.
_ACK = struct.Struct("!Q")


@dataclass
class TcpStats:
    """Channel-layer counters, exposed for tests and chaos verdicts."""

    frames_enqueued: int = 0
    frames_written: int = 0
    frames_acked: int = 0
    frames_resent: int = 0
    frames_abandoned_dead: int = 0
    duplicates_dropped: int = 0
    connects: int = 0
    reconnects: int = 0
    injected_drops: int = 0
    injected_duplicates: int = 0
    injected_delays: int = 0

    def to_dict(self) -> dict:
        return {
            "frames_enqueued": self.frames_enqueued,
            "frames_written": self.frames_written,
            "frames_acked": self.frames_acked,
            "frames_resent": self.frames_resent,
            "frames_abandoned_dead": self.frames_abandoned_dead,
            "duplicates_dropped": self.duplicates_dropped,
            "connects": self.connects,
            "reconnects": self.reconnects,
            "injected_drops": self.injected_drops,
            "injected_duplicates": self.injected_duplicates,
            "injected_delays": self.injected_delays,
        }


@dataclass
class _Channel:
    """Sender-side state of one directed channel.

    ``unacked[:cursor]`` has been written on the current connection and
    awaits acknowledgement; ``unacked[cursor:]`` has not been written yet.
    A reconnect resets ``cursor`` to 0, resending the whole buffer; the
    receiver's high-water mark absorbs the duplicates.
    """

    unacked: deque = field(default_factory=deque)  # (msg_id, bytes, release_at)
    cursor: int = 0
    conn_lost: bool = False
    event: asyncio.Event = field(default_factory=asyncio.Event)


class TcpNetwork:
    """Loopback-TCP message fabric with the simulator's Network API."""

    def __init__(
        self,
        scheduler: AioScheduler,
        trace: Optional[RunTrace] = None,
        host: str = "127.0.0.1",
        wire: str = "json",
        reconnect_base: float = 0.02,
        reconnect_cap: float = 0.5,
        reconnect_jitter: float = 0.5,
        seed: int = 0,
    ) -> None:
        if wire not in ("json", "compact"):
            raise ValueError(f"unknown wire format {wire!r} (json or compact)")
        self.scheduler = scheduler
        self.trace = trace if trace is not None else RunTrace()
        self.host = host
        self.wire = wire
        self.reconnect_base = reconnect_base
        self.reconnect_cap = reconnect_cap
        self.reconnect_jitter = reconnect_jitter
        self.stats = TcpStats()
        #: optional :class:`repro.obs.Obs` capture (``None`` = one attribute
        #: check per send; see repro.sim.network.Network.obs).
        self.obs = None
        self._rng = random.Random(seed)
        self._processes: dict[ProcessId, "SimProcess"] = {}
        self._ports: dict[ProcessId, int] = {}
        self._servers: dict[ProcessId, asyncio.AbstractServer] = {}
        #: inbound connections per server, so a server bounce severs them.
        self._inbound: dict[ProcessId, set[asyncio.StreamWriter]] = {}
        #: per-directed-channel retransmission state + writer task
        self._channels: dict[tuple[ProcessId, ProcessId], _Channel] = {}
        self._writers: dict[tuple[ProcessId, ProcessId], asyncio.Task] = {}
        #: receiver-side exactly-once high-water mark per directed channel
        self._delivered_hwm: dict[tuple[ProcessId, ProcessId], int] = {}
        #: peers declared dead (crash observer or fault plan): channels to
        #: them stop retrying and abandon their buffers.
        self._dead: set[ProcessId] = set()
        self._send_observers: list[Callable[[MessageRecord], None]] = []
        self._crash_observers: list[Callable[[ProcessId], None]] = []
        self._fault_injector = None  # duck-typed: .on_send(record) -> decision
        self._started = False

    # ----------------------------------------------------------- registry

    def register(self, process: "SimProcess") -> None:
        if process.pid in self._processes:
            raise SimulationError(f"duplicate process id {process.pid}")
        self._processes[process.pid] = process

    def process(self, pid: ProcessId) -> "SimProcess":
        return self._processes[pid]

    def get_process(self, pid: ProcessId) -> "Optional[SimProcess]":
        return self._processes.get(pid)

    def processes(self) -> dict[ProcessId, "SimProcess"]:
        return dict(self._processes)

    def live_processes(self) -> list["SimProcess"]:
        return [p for p in self._processes.values() if not p.crashed]

    # ---------------------------------------------------------- observers

    def add_send_observer(self, observer: Callable[[MessageRecord], None]) -> None:
        self._send_observers.append(observer)

    def add_crash_observer(self, observer: Callable[[ProcessId], None]) -> None:
        self._crash_observers.append(observer)

    def notify_crash(self, pid: ProcessId) -> None:
        self.mark_dead(pid)
        for observer in list(self._crash_observers):
            observer(pid)

    def set_fault_injector(self, injector) -> None:
        """Install a chaos injector consulted on every send (None clears)."""
        self._fault_injector = injector

    def mark_dead(self, pid: ProcessId) -> None:
        """Declare a peer dead: channels to it abandon their buffers."""
        self._dead.add(pid)
        for (sender, receiver), ch in self._channels.items():
            if receiver == pid:
                ch.event.set()

    def _peer_gone(self, pid: ProcessId) -> bool:
        if pid in self._dead:
            return True
        process = self._processes.get(pid)
        return process is None or process.crashed

    # ------------------------------------------------------------ serving

    async def start(self) -> None:
        """Open one TCP server per registered process (and per late joiner
        via :meth:`serve`)."""
        self._started = True
        for pid in list(self._processes):
            if pid not in self._servers:
                await self.serve(pid)

    async def serve(self, pid: ProcessId) -> int:
        """Start (or return) the server socket for one process."""
        if pid in self._ports:
            return self._ports[pid]

        compact = self.wire == "compact"

        async def handle(reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
            self._inbound.setdefault(pid, set()).add(writer)
            try:
                while True:
                    if compact:
                        header = await reader.readexactly(_LEN_PREFIX.size)
                        (length,) = _LEN_PREFIX.unpack(header)
                        frame = await reader.readexactly(length)
                    else:
                        frame = await reader.readline()
                        if not frame:
                            break
                    self._receive_frame(pid, frame, writer)
            except (ConnectionResetError, asyncio.IncompleteReadError, OSError):
                pass
            finally:
                self._inbound.get(pid, set()).discard(writer)
                writer.close()

        server = await asyncio.start_server(handle, self.host, 0)
        if pid in self._ports:
            # A concurrent serve() for the same pid won the race while we
            # awaited start_server: keep the registered server (peers may
            # already hold its port) and discard ours.
            server.close()
            return self._ports[pid]
        port = server.sockets[0].getsockname()[1]
        self._servers[pid] = server
        self._ports[pid] = port
        return port

    async def close_server(self, pid: ProcessId) -> None:
        """Tear down one process's server and its inbound connections.

        Models the receiver side of a process restart: senders observe a
        reset, keep their unacknowledged frames, and reconnect (to the new
        port) once :meth:`serve` brings the server back.
        """
        server = self._servers.pop(pid, None)
        self._ports.pop(pid, None)
        if server is not None:
            server.close()
        for writer in list(self._inbound.pop(pid, set())):
            writer.close()
        if server is not None:
            await server.wait_closed()

    async def stop(self) -> None:
        """Close all sockets and writer tasks; the network is restartable."""
        tasks = list(self._writers.values())
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        for writers in self._inbound.values():
            for writer in list(writers):
                writer.close()
        for server in self._servers.values():
            server.close()
        await asyncio.gather(
            *(s.wait_closed() for s in self._servers.values()),
            return_exceptions=True,
        )
        self._writers.clear()
        self._channels.clear()
        self._servers.clear()
        self._ports.clear()
        self._inbound.clear()
        self._started = False

    # -------------------------------------------------------------- sending

    def send(
        self,
        sender: ProcessId,
        receiver: ProcessId,
        payload: object,
        category: str = "protocol",
    ) -> MessageRecord:
        process = self._processes.get(sender)
        if process is None:
            raise SimulationError(f"unknown sender {sender}")
        if process.crashed:
            raise ProcessCrashedError(f"{sender} is crashed and cannot send")
        record = MessageRecord(
            sender=sender, receiver=receiver, payload=payload, category=category
        )
        self.trace.record(
            sender,
            EventKind.SEND,
            time=self.scheduler.now,
            peer=receiver,
            message=record,
        )
        if self.obs is not None:
            self.obs.count_send(sender, category)
        for observer in list(self._send_observers):
            observer(record)

        copies = 1
        hold = 0.0
        injector = self._fault_injector
        if injector is not None:
            decision = injector.on_send(record)
            if decision is not None:
                if decision.drop:
                    self.stats.injected_drops += 1
                    return record
                if decision.delay > 0.0:
                    # Absolute release time: consecutive held frames on one
                    # channel wait out the *same* window, they don't stack.
                    hold = self.scheduler.now + decision.delay
                    self.stats.injected_delays += 1
                if decision.duplicates > 0:
                    copies += decision.duplicates
                    self.stats.injected_duplicates += decision.duplicates

        if self.wire == "compact":
            frame = codec.encode_compact(
                payload, sender, receiver, category, msg_id=record.msg_id
            )
            data = _LEN_PREFIX.pack(len(frame)) + frame
        else:
            data = codec.encode_bytes(
                payload, sender, receiver, category, msg_id=record.msg_id
            )
        channel = (sender, receiver)
        ch = self._channels.get(channel)
        if ch is None:
            ch = _Channel()
            self._channels[channel] = ch
            self._writers[channel] = asyncio.get_running_loop().create_task(
                self._drain(channel, ch)
            )
        for _ in range(copies):
            ch.unacked.append((record.msg_id, data, hold))
            self.stats.frames_enqueued += 1
        ch.event.set()
        return record

    def broadcast(
        self,
        sender: ProcessId,
        receivers,
        payload: object,
        category: str = "protocol",
    ) -> int:
        """Fan-out with :meth:`repro.sim.network.Network.broadcast` semantics:
        skips self, truncates (without raising) on mid-loop sender crash,
        returns the number of messages sent."""
        process = self._processes.get(sender)
        if process is None:
            raise SimulationError(f"unknown sender {sender}")
        sent = 0
        for receiver in receivers:
            if receiver == sender:
                continue
            if process.crashed:
                break
            self.send(sender, receiver, payload, category=category)
            sent += 1
        return sent

    # ------------------------------------------------------------- draining

    def _next_backoff(self, attempt: int) -> float:
        base = min(self.reconnect_cap, self.reconnect_base * (2 ** attempt))
        return base * (1.0 + self.reconnect_jitter * self._rng.random())

    async def _drain(self, channel: tuple[ProcessId, ProcessId], ch: _Channel) -> None:
        """One persistent connection per directed channel.

        Retries (reconnect + resend of the unacknowledged suffix) until the
        frames are acknowledged or the peer is declared dead — the channel
        never silently abandons a frame to a live peer.
        """
        _, receiver = channel
        writer: Optional[asyncio.StreamWriter] = None
        ack_task: Optional[asyncio.Task] = None
        attempt = 0
        connected_before = False
        try:
            while True:
                if ch.conn_lost and writer is not None:
                    if ack_task is not None:
                        ack_task.cancel()
                        ack_task = None
                    writer.close()
                    writer = None
                    self.stats.frames_resent += ch.cursor
                    ch.cursor = 0
                ch.conn_lost = False
                if self._peer_gone(receiver):
                    if ack_task is not None:
                        ack_task.cancel()
                        ack_task = None
                    if writer is not None:
                        writer.close()
                        writer = None
                    abandoned = len(ch.unacked)
                    if abandoned:
                        self.stats.frames_abandoned_dead += abandoned
                        ch.unacked.clear()
                    ch.cursor = 0
                    ch.event.clear()
                    await ch.event.wait()
                    continue
                if ch.cursor >= len(ch.unacked):
                    # Fully written (or empty): wait for new frames, acks
                    # pruning the buffer, or connection loss.
                    ch.event.clear()
                    if ch.conn_lost or ch.cursor < len(ch.unacked):
                        continue
                    await ch.event.wait()
                    continue
                if writer is None:
                    port = self._ports.get(receiver)
                    if port is None:
                        # Receiver's server is (re)starting: back off, retry.
                        await asyncio.sleep(self._next_backoff(attempt))
                        attempt += 1
                        continue
                    try:
                        reader, writer = await asyncio.open_connection(self.host, port)
                    except OSError:
                        await asyncio.sleep(self._next_backoff(attempt))
                        attempt += 1
                        continue
                    self.stats.connects += 1
                    if connected_before:
                        self.stats.reconnects += 1
                        if self.obs is not None:
                            # Reconnect-to-drain span: connections only open
                            # with frames pending, so a resend is in flight.
                            self.obs.spans.begin(
                                "tcp.reconnect",
                                channel,
                                at=self.scheduler.now,
                                sender=channel[0],
                                receiver=receiver,
                                frames=len(ch.unacked),
                            )
                    connected_before = True
                    attempt = 0
                    ch.conn_lost = False
                    self.stats.frames_resent += ch.cursor
                    ch.cursor = 0
                    ack_task = asyncio.get_running_loop().create_task(
                        self._read_acks(reader, channel, ch)
                    )
                msg_id, data, hold = ch.unacked[ch.cursor]
                remaining = hold - self.scheduler.now if hold > 0.0 else 0.0
                if remaining > 0.0:
                    # Injected latency: stall the channel until the frame's
                    # absolute release time (FIFO-preserving), then re-check
                    # state — the connection may have died while we slept.
                    await asyncio.sleep(remaining)
                    continue
                try:
                    writer.write(data)
                    await writer.drain()
                except (ConnectionResetError, BrokenPipeError, OSError):
                    ch.conn_lost = True
                    continue
                self.stats.frames_written += 1
                # The ack reader may have pruned the buffer while we awaited
                # drain(); only advance if our frame is still at the cursor.
                if ch.cursor < len(ch.unacked) and ch.unacked[ch.cursor][0] == msg_id:
                    ch.cursor += 1
        except asyncio.CancelledError:
            pass
        finally:
            if ack_task is not None:
                ack_task.cancel()
            if writer is not None:
                writer.close()

    async def _read_acks(
        self,
        reader: asyncio.StreamReader,
        channel: tuple[ProcessId, ProcessId],
        ch: _Channel,
    ) -> None:
        """Prune the retransmission buffer as receipt acknowledgements arrive;
        flag the connection lost when the ack stream dies."""
        try:
            while True:
                raw = await reader.readexactly(_ACK.size)
                (acked,) = _ACK.unpack(raw)
                while ch.unacked and ch.unacked[0][0] <= acked:
                    ch.unacked.popleft()
                    self.stats.frames_acked += 1
                    if ch.cursor > 0:
                        ch.cursor -= 1
                if not ch.unacked and self.obs is not None:
                    # Resend buffer fully drained: the reconnect is healed.
                    self.obs.spans.end(
                        "tcp.reconnect", channel, at=self.scheduler.now
                    )
                ch.event.set()
        except asyncio.CancelledError:
            return  # deliberate teardown; the drain loop owns the state
        except (asyncio.IncompleteReadError, ConnectionResetError, OSError):
            pass
        ch.conn_lost = True
        ch.event.set()

    # -------------------------------------------------------- observability

    def collect_metrics(self, obs) -> None:
        """Promote the channel-layer counters into registry gauges.

        Called once post-run (by the chaos runner / CLI); gauges rather than
        counters because :class:`TcpStats` is the source of truth and this
        mirrors its final values.
        """
        gauges = obs.metrics.gauge(
            "repro_tcp_stat", "TCP channel-layer counters (TcpStats fields).",
            labels=("stat",),
        )
        for stat, value in self.stats.to_dict().items():
            gauges.labels(stat).set(value)
        ack_lag = sum(len(ch.unacked) for ch in self._channels.values())
        obs.metrics.gauge(
            "repro_tcp_ack_lag_frames",
            "Unacknowledged frames across all channels at collection time.",
        ).set(ack_lag)
        obs.metrics.gauge(
            "repro_tcp_pending_frames",
            "Unacknowledged frames on channels to live peers.",
        ).set(sum(self.pending_frames().values()))

    # ------------------------------------------------------------ quiescence

    def pending_frames(self) -> dict[tuple[ProcessId, ProcessId], int]:
        """Unacknowledged frame counts on channels whose peer is live."""
        return {
            channel: len(ch.unacked)
            for channel, ch in self._channels.items()
            if ch.unacked and not self._peer_gone(channel[1])
        }

    async def wait_quiet(self, timeout: float = 5.0, poll: float = 0.02) -> bool:
        """Wait until every channel to a live peer has drained (acked)."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        while loop.time() < deadline:
            if not self.pending_frames():
                return True
            await asyncio.sleep(poll)
        return not self.pending_frames()

    # -------------------------------------------------------------- receipt

    def _receive_frame(
        self, server_pid: ProcessId, frame: bytes, writer: asyncio.StreamWriter
    ) -> None:
        try:
            if self.wire == "compact":
                sender, receiver, payload, category, msg_id = codec.decode_compact(frame)
            else:
                sender, receiver, payload, category, msg_id = codec.decode_bytes(frame)
        except codec.CodecError:
            return  # malformed frame: drop (never crash the server on input)
        mid = msg_id if msg_id is not None else 0
        channel = (sender, receiver)
        duplicate = False
        if mid:
            hwm = self._delivered_hwm.get(channel, 0)
            if mid <= hwm:
                duplicate = True
                self.stats.duplicates_dropped += 1
            else:
                self._delivered_hwm[channel] = mid
            # Acknowledge receipt (even of duplicates) with the channel's
            # high-water mark, so resent prefixes prune the sender's buffer.
            try:
                writer.write(_ACK.pack(self._delivered_hwm[channel]))
            except (ConnectionResetError, OSError):  # pragma: no cover - rare
                pass
        if duplicate:
            return
        if receiver != server_pid:
            return  # misrouted frame
        process = self._processes.get(server_pid)
        if process is None or process.crashed:
            return
        record = MessageRecord(
            sender=sender,
            receiver=receiver,
            payload=payload,
            msg_id=msg_id if msg_id is not None else -1,
            category=category,
        )
        process._receive(record)
