"""TCP transport: the protocol over real sockets.

:class:`TcpNetwork` implements the Network surface over loopback TCP using
either wire codec from :mod:`repro.codec` — newline-framed JSON
(``wire="json"``, the default) or length-prefixed compact binary
(``wire="compact"``, wire version 2; each frame is preceded by a u32
big-endian byte length).  Each member hosts a TCP server; a directed
channel is one persistent connection, so TCP's in-order delivery gives the
paper's FIFO channel property for free, and the kernel's send buffering
gives reliability as long as the peer lives.

All members still run inside one asyncio event loop (this is a transport
demonstration, not a deployment harness), but every protocol byte genuinely
crosses a socket, the codec, and the kernel — exercising the full
encode/route/decode path a distributed deployment would use.
"""

from __future__ import annotations

import asyncio
import struct
from typing import TYPE_CHECKING, Callable, Optional

from repro import codec
from repro.errors import ProcessCrashedError, SimulationError
from repro.ids import ProcessId
from repro.model.events import EventKind, MessageRecord
from repro.sim.trace import RunTrace
from repro.aio.scheduler import AioScheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.process import SimProcess

__all__ = ["TcpNetwork"]

#: framing for wire="compact": u32 big-endian frame length.
_LEN_PREFIX = struct.Struct("!I")


class TcpNetwork:
    """Loopback-TCP message fabric with the simulator's Network API."""

    def __init__(
        self,
        scheduler: AioScheduler,
        trace: Optional[RunTrace] = None,
        host: str = "127.0.0.1",
        wire: str = "json",
    ) -> None:
        if wire not in ("json", "compact"):
            raise ValueError(f"unknown wire format {wire!r} (json or compact)")
        self.scheduler = scheduler
        self.trace = trace if trace is not None else RunTrace()
        self.host = host
        self.wire = wire
        self._processes: dict[ProcessId, "SimProcess"] = {}
        self._ports: dict[ProcessId, int] = {}
        self._servers: dict[ProcessId, asyncio.AbstractServer] = {}
        #: per-directed-channel outbound queue + writer task
        self._outboxes: dict[tuple[ProcessId, ProcessId], asyncio.Queue] = {}
        self._writers: dict[tuple[ProcessId, ProcessId], asyncio.Task] = {}
        self._send_observers: list[Callable[[MessageRecord], None]] = []
        self._crash_observers: list[Callable[[ProcessId], None]] = []
        self._started = False

    # ----------------------------------------------------------- registry

    def register(self, process: "SimProcess") -> None:
        if process.pid in self._processes:
            raise SimulationError(f"duplicate process id {process.pid}")
        self._processes[process.pid] = process

    def process(self, pid: ProcessId) -> "SimProcess":
        return self._processes[pid]

    def get_process(self, pid: ProcessId) -> "Optional[SimProcess]":
        return self._processes.get(pid)

    def processes(self) -> dict[ProcessId, "SimProcess"]:
        return dict(self._processes)

    def live_processes(self) -> list["SimProcess"]:
        return [p for p in self._processes.values() if not p.crashed]

    # ---------------------------------------------------------- observers

    def add_send_observer(self, observer: Callable[[MessageRecord], None]) -> None:
        self._send_observers.append(observer)

    def add_crash_observer(self, observer: Callable[[ProcessId], None]) -> None:
        self._crash_observers.append(observer)

    def notify_crash(self, pid: ProcessId) -> None:
        for observer in list(self._crash_observers):
            observer(pid)

    # ------------------------------------------------------------ serving

    async def start(self) -> None:
        """Open one TCP server per registered process (and per late joiner
        via :meth:`serve`)."""
        self._started = True
        for pid in list(self._processes):
            if pid not in self._servers:
                await self.serve(pid)

    async def serve(self, pid: ProcessId) -> int:
        """Start (or return) the server socket for one process."""
        if pid in self._ports:
            return self._ports[pid]

        compact = self.wire == "compact"

        async def handle(reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
            try:
                while True:
                    if compact:
                        header = await reader.readexactly(_LEN_PREFIX.size)
                        (length,) = _LEN_PREFIX.unpack(header)
                        frame = await reader.readexactly(length)
                    else:
                        frame = await reader.readline()
                        if not frame:
                            break
                    self._deliver_frame(pid, frame)
            except (ConnectionResetError, asyncio.IncompleteReadError):
                pass
            finally:
                writer.close()

        server = await asyncio.start_server(handle, self.host, 0)
        port = server.sockets[0].getsockname()[1]
        self._servers[pid] = server
        self._ports[pid] = port
        return port

    async def stop(self) -> None:
        """Close all sockets and writer tasks."""
        for task in self._writers.values():
            task.cancel()
        for server in self._servers.values():
            server.close()
        await asyncio.gather(
            *(s.wait_closed() for s in self._servers.values()),
            return_exceptions=True,
        )
        self._writers.clear()
        self._servers.clear()

    # -------------------------------------------------------------- sending

    def send(
        self,
        sender: ProcessId,
        receiver: ProcessId,
        payload: object,
        category: str = "protocol",
    ) -> MessageRecord:
        process = self._processes.get(sender)
        if process is None:
            raise SimulationError(f"unknown sender {sender}")
        if process.crashed:
            raise ProcessCrashedError(f"{sender} is crashed and cannot send")
        record = MessageRecord(
            sender=sender, receiver=receiver, payload=payload, category=category
        )
        self.trace.record(
            sender,
            EventKind.SEND,
            time=self.scheduler.now,
            peer=receiver,
            message=record,
        )
        for observer in list(self._send_observers):
            observer(record)
        if self.wire == "compact":
            frame = codec.encode_compact(
                payload, sender, receiver, category, msg_id=record.msg_id
            )
            data = _LEN_PREFIX.pack(len(frame)) + frame
        else:
            data = codec.encode_bytes(
                payload, sender, receiver, category, msg_id=record.msg_id
            )
        channel = (sender, receiver)
        outbox = self._outboxes.get(channel)
        if outbox is None:
            outbox = asyncio.Queue()
            self._outboxes[channel] = outbox
            self._writers[channel] = asyncio.get_event_loop().create_task(
                self._drain(channel, outbox)
            )
        outbox.put_nowait(data)
        return record

    def broadcast(
        self,
        sender: ProcessId,
        receivers,
        payload: object,
        category: str = "protocol",
    ) -> int:
        """Fan-out with :meth:`repro.sim.network.Network.broadcast` semantics:
        skips self, truncates (without raising) on mid-loop sender crash,
        returns the number of messages sent."""
        process = self._processes.get(sender)
        if process is None:
            raise SimulationError(f"unknown sender {sender}")
        sent = 0
        for receiver in receivers:
            if receiver == sender:
                continue
            if process.crashed:
                break
            self.send(sender, receiver, payload, category=category)
            sent += 1
        return sent

    async def _drain(self, channel: tuple[ProcessId, ProcessId], outbox: asyncio.Queue) -> None:
        """One persistent connection per directed channel (FIFO)."""
        _, receiver = channel
        writer: Optional[asyncio.StreamWriter] = None
        try:
            while True:
                data = await outbox.get()
                while True:
                    if writer is None:
                        port = self._ports.get(receiver)
                        if port is None:
                            break  # receiver never came up: drop (it is down)
                        try:
                            _, writer = await asyncio.open_connection(self.host, port)
                        except OSError:
                            break  # receiver unreachable: message dies with it
                    try:
                        writer.write(data)
                        await writer.drain()
                        break
                    except (ConnectionResetError, BrokenPipeError, OSError):
                        writer = None  # reconnect once, then give up
                        port = None
                        break
        except asyncio.CancelledError:
            pass
        finally:
            if writer is not None:
                writer.close()

    # -------------------------------------------------------------- receipt

    def _deliver_frame(self, receiver_pid: ProcessId, frame: bytes) -> None:
        try:
            if self.wire == "compact":
                sender, receiver, payload, category, msg_id = codec.decode_compact(frame)
            else:
                sender, receiver, payload, category, msg_id = codec.decode_bytes(frame)
        except codec.CodecError:
            return  # malformed frame: drop (never crash the server on input)
        if receiver != receiver_pid:
            return  # misrouted frame
        process = self._processes.get(receiver_pid)
        if process is None or process.crashed:
            return
        record = MessageRecord(
            sender=sender,
            receiver=receiver,
            payload=payload,
            msg_id=msg_id if msg_id is not None else -1,
            category=category,
        )
        process._receive(record)
