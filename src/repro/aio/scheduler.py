"""Asyncio-backed implementation of the Scheduler surface.

Exposes the same ``now`` / ``after`` / ``at`` API as
:class:`repro.sim.scheduler.Scheduler`, but delegates to a running asyncio
event loop: time is the loop's monotonic clock (rebased to zero at
construction) and timers are ``loop.call_later`` handles.
"""

from __future__ import annotations

import asyncio
from typing import Callable

__all__ = ["AioTimer", "AioScheduler"]


class AioTimer:
    """Cancellable handle compatible with :class:`repro.sim.scheduler.Timer`."""

    __slots__ = ("_handle", "_deadline", "_cancelled")

    def __init__(self, handle: asyncio.TimerHandle, deadline: float) -> None:
        self._handle = handle
        self._deadline = deadline
        self._cancelled = False

    def cancel(self) -> None:
        self._cancelled = True
        self._handle.cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def deadline(self) -> float:
        return self._deadline


class AioScheduler:
    """The protocol-facing clock/timer surface over an asyncio loop."""

    def __init__(self, loop: asyncio.AbstractEventLoop | None = None) -> None:
        if loop is None:
            # Prefer the running loop (get_event_loop is deprecated there and
            # a wrong-loop hazard under nested runners); fall back for
            # schedulers constructed before the loop starts running.
            try:
                loop = asyncio.get_running_loop()
            except RuntimeError:
                loop = asyncio.get_event_loop()
        self._loop = loop
        self._t0 = self._loop.time()

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        return self._loop

    @property
    def now(self) -> float:
        """Seconds since this scheduler was created."""
        return self._loop.time() - self._t0

    def after(self, delay: float, callback: Callable[[], None]) -> AioTimer:
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        handle = self._loop.call_later(delay, callback)
        return AioTimer(handle, self.now + delay)

    def at(self, time: float, callback: Callable[[], None]) -> AioTimer:
        # call_at with an absolute loop deadline, not after(time - now):
        # converting to a relative delay re-reads loop.time() inside
        # call_later, and that per-call drift can reorder timers scheduled
        # microseconds apart (e.g. the FIFO-spacing timestamps the aio
        # channel emits).
        handle = self._loop.call_at(self._t0 + time, callback)
        return AioTimer(handle, time)
