"""Deciding GMP-0..GMP-5 (Section 2.3) over a recorded run.

Each property maps to a check over the trace's event structure:

* **GMP-0** — the initial system view exists: every process's installs start
  at version 1 or later (version 0 *is* the commonly-known initial view).
* **GMP-1** — no capricious removal: in every history, ``remove_p(q)`` is
  preceded by ``faulty_p(q)``; symmetrically ``add_p(q)`` by
  ``operating_p(q)``.
* **GMP-2** — a unique sequence of system views exists: all installers of a
  version agree (uniqueness), versions are dense, each transition changes
  exactly one process, and the canonical cuts for successive versions are
  consistent and monotonically ordered.
* **GMP-3** — identical local view sequences: for every version installed by
  two processes, the views are identical (including seniority order, which
  the ranking rule of Section 4.2 depends on).
* **GMP-4** — no re-instatement: within one process's view sequence, a
  removed process (same incarnation) never reappears.
* **GMP-5** — suspicion is consequential: for every ``faulty_p(q)`` with p
  surviving in the final view, eventually q or p leaves the system view.

Plus the system property **S1** (isolation): no history contains a RECV
from q after ``faulty_p(q)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.errors import TraceError
from repro.ids import ProcessId
from repro.model.cuts import cut_leq, is_consistent
from repro.model.events import Event, EventKind
from repro.model.knowledge import KnowledgeAnalysis
from repro.model.views import SystemView, view_sequences
from repro.sim.trace import RunTrace

__all__ = ["Violation", "PropertyReport", "check_gmp"]


@dataclass(frozen=True, slots=True)
class Violation:
    """One property violation found in a run."""

    prop: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.prop}: {self.detail}"


@dataclass
class PropertyReport:
    """Outcome of checking a run against the GMP specification."""

    checked: list[str] = field(default_factory=list)
    violations: list[Violation] = field(default_factory=list)
    system_views: list[SystemView] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def violated(self, prop: str) -> bool:
        return any(v.prop == prop for v in self.violations)

    def raise_if_violated(self) -> None:
        from repro.errors import PropertyViolation

        if self.violations:
            worst = self.violations[0]
            raise PropertyViolation(worst.prop, worst.detail)

    def to_dict(self) -> dict:
        """Machine-readable form (chaos verdicts, CI artifacts)."""
        return {
            "ok": self.ok,
            "checked": list(self.checked),
            "violations": [
                {"prop": v.prop, "detail": v.detail} for v in self.violations
            ],
            "system_views": [
                {"version": view.version, "members": [str(m) for m in view.members]}
                for view in self.system_views
            ],
        }


def check_gmp(
    trace: RunTrace | Iterable[Event],
    initial_view: Sequence[ProcessId],
    check_liveness: bool = True,
    check_cuts: bool = True,
) -> PropertyReport:
    """Check every GMP property (plus S1) over a complete run.

    Args:
        trace: the run (a :class:`RunTrace` or raw event iterable).
        initial_view: the commonly-known initial membership, Mgr first.
        check_liveness: include GMP-5 (only meaningful on quiesced runs).
        check_cuts: include the consistent-cut portion of GMP-2 (costs a
            causality reconstruction; large sweeps may skip it).
    """
    events = list(trace)
    report = PropertyReport()
    histories = _histories_by_process(events)

    _check_gmp0(report, histories, initial_view)
    _check_gmp1(report, histories)
    sequences = _safe_view_sequences(report, events)
    _check_gmp3(report, sequences)
    _check_gmp2(report, events, sequences, initial_view, check_cuts)
    _check_gmp4(report, sequences, initial_view)
    if check_liveness:
        _check_gmp5(report, events, sequences, initial_view)
    _check_s1(report, histories)
    return report


# ---------------------------------------------------------------------------
# individual properties
# ---------------------------------------------------------------------------


def _histories_by_process(events: list[Event]) -> dict[ProcessId, list[Event]]:
    histories: dict[ProcessId, list[Event]] = {}
    for event in events:
        histories.setdefault(event.proc, []).append(event)
    return histories


def _safe_view_sequences(
    report: PropertyReport, events: list[Event]
) -> dict[ProcessId, list[SystemView]]:
    try:
        return view_sequences(events)
    except TraceError as exc:
        report.violations.append(Violation("GMP-4", f"malformed view sequence: {exc}"))
        return {}


def _check_gmp0(
    report: PropertyReport,
    histories: dict[ProcessId, list[Event]],
    initial_view: Sequence[ProcessId],
) -> None:
    report.checked.append("GMP-0")
    initial = set(initial_view)
    for proc, events in histories.items():
        if proc not in initial:
            continue
        for event in events:
            if event.kind is EventKind.INSTALL and (event.version or 0) < 1:
                report.violations.append(
                    Violation(
                        "GMP-0",
                        f"{proc} installed version {event.version}, clobbering "
                        "the initial system view",
                    )
                )


def _check_gmp1(report: PropertyReport, histories: dict[ProcessId, list[Event]]) -> None:
    report.checked.append("GMP-1")
    for proc, events in histories.items():
        believed_faulty: set[ProcessId] = set()
        believed_operating: set[ProcessId] = set()
        for event in events:
            if event.kind is EventKind.FAULTY and event.peer is not None:
                believed_faulty.add(event.peer)
            elif event.kind is EventKind.OPERATING and event.peer is not None:
                believed_operating.add(event.peer)
            elif event.kind is EventKind.REMOVE and event.peer is not None:
                if event.peer not in believed_faulty:
                    report.violations.append(
                        Violation(
                            "GMP-1",
                            f"{proc} removed {event.peer} without a prior "
                            f"faulty_{proc}({event.peer}) event",
                        )
                    )
            elif event.kind is EventKind.ADD and event.peer is not None:
                if event.peer != proc and event.peer not in believed_operating:
                    report.violations.append(
                        Violation(
                            "GMP-1",
                            f"{proc} added {event.peer} without a prior "
                            f"operating_{proc}({event.peer}) event",
                        )
                    )


def _check_gmp2(
    report: PropertyReport,
    events: list[Event],
    sequences: dict[ProcessId, list[SystemView]],
    initial_view: Sequence[ProcessId],
    check_cuts: bool,
) -> None:
    report.checked.append("GMP-2")
    by_version: dict[int, SystemView] = {}
    for seq in sequences.values():
        for view in seq:
            existing = by_version.setdefault(view.version, view)
            if tuple(existing.members) != tuple(view.members):
                report.violations.append(
                    Violation(
                        "GMP-2",
                        f"version {view.version} is not unique: "
                        f"{existing.members} vs {view.members}",
                    )
                )
    if not by_version:
        report.system_views = [SystemView(0, tuple(initial_view))]
        return
    versions = sorted(by_version)
    if versions != list(range(versions[0], versions[-1] + 1)) or versions[0] != 1:
        report.violations.append(
            Violation("GMP-2", f"system view versions are not dense from 1: {versions}")
        )
    chain = [SystemView(0, tuple(initial_view))] + [by_version[v] for v in versions]
    report.system_views = chain
    for prev, curr in zip(chain, chain[1:]):
        removed = set(prev.members) - set(curr.members)
        added = set(curr.members) - set(prev.members)
        if not ((len(removed) == 1 and not added) or (len(added) == 1 and not removed)):
            report.violations.append(
                Violation(
                    "GMP-2",
                    f"transition {prev.version}->{curr.version} changes "
                    f"-{removed} +{added}; views must change by exactly one "
                    "process",
                )
            )
    if not check_cuts:
        return
    try:
        analysis = KnowledgeAnalysis(events)
    except TraceError as exc:
        report.violations.append(Violation("GMP-2", f"causality reconstruction failed: {exc}"))
        return
    # Monotonicity is checked over *cumulative* cuts (pointwise maxima of
    # the minimal install cuts so far): a straggler catching up late makes
    # the minimal cut for an old version extend past the minimal cut for a
    # newer one at third parties, but the cumulative chain is the paper's
    # c_0 << c_1 << ... once crash-terminated histories are exempted.
    from repro.model.cuts import Cut

    cumulative: dict[ProcessId, int] = {}
    previous_cut: Optional[Cut] = None
    for version in versions:
        cut = analysis.exact_view_cut(version)
        if cut is None:
            continue
        if not is_consistent(cut, analysis.histories):
            report.violations.append(
                Violation("GMP-2", f"install cut for version {version} is inconsistent")
            )
        for proc, length in cut.lengths.items():
            if length > cumulative.get(proc, 0):
                cumulative[proc] = length
        cumulative_cut = Cut(dict(cumulative))
        if not is_consistent(cumulative_cut, analysis.histories):
            report.violations.append(
                Violation(
                    "GMP-2",
                    f"cumulative install cut through version {version} is "
                    "inconsistent",
                )
            )
        if previous_cut is not None and not cut_leq(previous_cut, cumulative_cut):
            report.violations.append(
                Violation(
                    "GMP-2",
                    f"install cuts through versions {version - 1} and "
                    f"{version} are not monotonically ordered",
                )
            )
        previous_cut = cumulative_cut


def _check_gmp3(
    report: PropertyReport, sequences: dict[ProcessId, list[SystemView]]
) -> None:
    report.checked.append("GMP-3")
    by_version: dict[int, tuple[ProcessId, SystemView]] = {}
    for proc, seq in sequences.items():
        for view in seq:
            if view.version not in by_version:
                by_version[view.version] = (proc, view)
                continue
            first_proc, first = by_version[view.version]
            if tuple(first.members) != tuple(view.members):
                report.violations.append(
                    Violation(
                        "GMP-3",
                        f"Memb^{view.version} differs: {first_proc} installed "
                        f"{first.members}, {proc} installed {view.members}",
                    )
                )


def _check_gmp4(
    report: PropertyReport,
    sequences: dict[ProcessId, list[SystemView]],
    initial_view: Sequence[ProcessId],
) -> None:
    report.checked.append("GMP-4")
    for proc, seq in sequences.items():
        present = set(initial_view)
        removed: set[ProcessId] = set()
        for view in seq:
            members = set(view.members)
            newly_removed = present - members
            reinstalled = removed & members
            if reinstalled:
                report.violations.append(
                    Violation(
                        "GMP-4",
                        f"{proc} re-instated {sorted(map(str, reinstalled))} "
                        f"in version {view.version}",
                    )
                )
            removed |= newly_removed
            present = members


def _check_gmp5(
    report: PropertyReport,
    events: list[Event],
    sequences: dict[ProcessId, list[SystemView]],
    initial_view: Sequence[ProcessId],
) -> None:
    report.checked.append("GMP-5")
    final_members: set[ProcessId] = set(initial_view)
    final_version = -1
    for seq in sequences.values():
        for view in seq:
            if view.version > final_version:
                final_version = view.version
                final_members = set(view.members)
    for event in events:
        if event.kind is not EventKind.FAULTY or event.peer is None:
            continue
        suspecter, suspected = event.proc, event.peer
        if suspecter in final_members and suspected in final_members:
            report.violations.append(
                Violation(
                    "GMP-5",
                    f"faulty_{suspecter}({suspected}) at t={event.time:.2f} "
                    f"but both remain in the final view (version {final_version})",
                )
            )


def _check_s1(report: PropertyReport, histories: dict[ProcessId, list[Event]]) -> None:
    report.checked.append("S1")
    for proc, events in histories.items():
        believed_faulty: set[ProcessId] = set()
        for event in events:
            if event.kind is EventKind.FAULTY and event.peer is not None:
                believed_faulty.add(event.peer)
            elif event.kind is EventKind.RECV and event.peer is not None:
                if event.peer in believed_faulty:
                    report.violations.append(
                        Violation(
                            "S1",
                            f"{proc} received a message from {event.peer} "
                            f"after believing it faulty (t={event.time:.2f})",
                        )
                    )
