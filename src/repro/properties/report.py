"""Human-readable rendering of property-check results."""

from __future__ import annotations

from repro.properties.checker import PropertyReport

__all__ = ["format_report"]


def format_report(report: PropertyReport) -> str:
    """Render a :class:`PropertyReport` as a terminal-friendly summary."""
    lines = []
    verdict = "PASS" if report.ok else "FAIL"
    lines.append(f"GMP property check: {verdict}")
    lines.append(f"  properties checked: {', '.join(report.checked)}")
    if report.system_views:
        lines.append("  system view sequence:")
        for view in report.system_views:
            members = ", ".join(str(m) for m in view.members)
            lines.append(f"    Sys^{view.version} = {{{members}}}")
    if report.violations:
        lines.append("  violations:")
        for violation in report.violations:
            lines.append(f"    - {violation}")
    return "\n".join(lines)
