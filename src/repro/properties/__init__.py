"""GMP-0..GMP-5 property checkers over run traces.

The protocol is *specified* by the six properties of Section 2.3; this
package decides them over a recorded run.  Tests and benchmarks call
:func:`check_gmp` after every scenario, so each of the hundreds of runs in
the suite doubles as a safety check — and the strawman baselines of Section
7.3 are shown to *fail* these same checkers under the paper's adversarial
schedules.
"""

from repro.properties.checker import PropertyReport, Violation, check_gmp
from repro.properties.report import format_report

__all__ = ["PropertyReport", "Violation", "check_gmp", "format_report"]
