"""MUT3xx — two-phase mutation lint.

Section 3 of the paper is a *commit discipline*: view/membership state
changes exactly once per agreed operation, inside the commit path, never
ad hoc.  In this codebase that discipline is embodied by
:class:`repro.core.state.LocalState`: its fields (``view``, ``version``,
``seq``, ``plans``, ``faulty``, ``ever_faulty``, ``recovered``, ``mgr``)
may only be written through its own methods (``apply``, ``note_faulty``,
``set_plan``, ``set_mgr``, …) or by the whitelisted round/commit modules.

This pass flags, in every module *outside* the whitelist:

* **MUT301** — a direct attribute write to a protected field
  (``state.version = 7``, ``member.state.mgr = x``, ``del state.view[0]``);
* **MUT302** — a mutating container-method call on a protected field
  (``state.view.append(...)``, ``state.faulty.add(...)``).

Expressions are considered *state-like* when they are an attribute access
ending in ``.state`` (``self.state``, ``member.state``), a local alias of
one (``state = self.state``), or a parameter annotated ``LocalState``.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.lint.base import (
    LintedModule,
    ModuleIndex,
    attribute_chain,
    emit,
    iter_functions,
    rule,
    walk_scope,
)
from repro.lint.findings import Finding

__all__ = ["MutationPass", "COMMIT_PATH_WHITELIST"]

MUT301 = rule("MUT301", "direct write to protected view/membership state")
MUT302 = rule("MUT302", "mutating call on protected view/membership state")

_STATE_PATH = "core/state.py"
_STATE_CLASS = "LocalState"

#: Modules allowed to mutate LocalState fields directly: the state class
#: itself and the round/commit bookkeeping (the paper's commit path).
COMMIT_PATH_WHITELIST: tuple[str, ...] = (
    "core/state.py",
    "core/rounds.py",
    "core/determine.py",
)

_MUTATORS = {
    "append",
    "appendleft",
    "add",
    "remove",
    "discard",
    "clear",
    "pop",
    "popleft",
    "popitem",
    "insert",
    "extend",
    "update",
    "setdefault",
    "sort",
    "reverse",
}

#: Fallback when core/state.py cannot be parsed (fixture trees).
_DEFAULT_PROTECTED = frozenset(
    {"view", "version", "seq", "plans", "faulty", "ever_faulty", "recovered", "mgr"}
)


class MutationPass:
    """AST pass implementing rules MUT301–MUT302."""

    name = "mutation"

    def run(self, index: ModuleIndex) -> list[Finding]:
        protected = self._protected_fields(index)
        findings: list[Finding] = []
        for module in index.under():
            if module.rel_path in COMMIT_PATH_WHITELIST:
                continue
            findings.extend(self._check_module(module, protected))
        return findings

    # -------------------------------------------------------------- registry

    def _protected_fields(self, index: ModuleIndex) -> frozenset[str]:
        """Field names of LocalState, parsed from core/state.py."""
        state_mod = index.get(_STATE_PATH)
        if state_mod is None:
            return _DEFAULT_PROTECTED
        for node in state_mod.tree.body:
            if isinstance(node, ast.ClassDef) and node.name == _STATE_CLASS:
                fields = {
                    stmt.target.id
                    for stmt in node.body
                    if isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                }
                if fields:
                    return frozenset(fields)
        return _DEFAULT_PROTECTED

    # ------------------------------------------------------------- per module

    def _check_module(
        self, module: LintedModule, protected: frozenset[str]
    ) -> list[Finding]:
        findings: list[Finding] = []
        for _class_node, func in iter_functions(module.tree):
            aliases = self._state_aliases(func)
            for node in walk_scope(func):
                if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        findings.extend(
                            self._check_write_target(
                                module, node, target, protected, aliases
                            )
                        )
                elif isinstance(node, ast.Delete):
                    for target in node.targets:
                        findings.extend(
                            self._check_write_target(
                                module, node, target, protected, aliases
                            )
                        )
                elif isinstance(node, ast.Call):
                    findings.extend(
                        self._check_mutating_call(module, node, protected, aliases)
                    )
        return [f for f in findings if f is not None]

    # --------------------------------------------------------------- helpers

    @staticmethod
    def _state_aliases(func: ast.AST) -> set[str]:
        """Local names bound to a ``*.state`` expression (or annotated
        LocalState parameters) within one function."""
        aliases: set[str] = set()
        if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = list(func.args.posonlyargs) + list(func.args.args) + list(
                func.args.kwonlyargs
            )
            for arg in args:
                annotation = arg.annotation
                if annotation is not None:
                    chain = attribute_chain(annotation)
                    if chain and chain[-1] == _STATE_CLASS:
                        aliases.add(arg.arg)
        for stmt in ast.walk(func):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    if (
                        isinstance(stmt.value, ast.Attribute)
                        and stmt.value.attr == "state"
                    ):
                        aliases.add(target.id)
                    elif target.id in aliases:
                        aliases.discard(target.id)
        return aliases

    def _is_state_expr(self, node: ast.expr, aliases: set[str]) -> bool:
        """Does ``node`` denote a LocalState instance?"""
        if isinstance(node, ast.Attribute) and node.attr == "state":
            return True
        if isinstance(node, ast.Name) and node.id in aliases:
            return True
        return False

    def _protected_attribute(
        self, node: ast.expr, protected: frozenset[str], aliases: set[str]
    ) -> Optional[str]:
        """When ``node`` is ``<state>.<protected-field>``, return the field."""
        if (
            isinstance(node, ast.Attribute)
            and node.attr in protected
            and self._is_state_expr(node.value, aliases)
        ):
            return node.attr
        return None

    # ---------------------------------------------------------------- checks

    def _check_write_target(
        self,
        module: LintedModule,
        stmt: ast.AST,
        target: ast.expr,
        protected: frozenset[str],
        aliases: set[str],
    ) -> list:
        # Unpack tuple/list targets: ``a, state.mgr = ...``.
        if isinstance(target, (ast.Tuple, ast.List)):
            out = []
            for elt in target.elts:
                out.extend(
                    self._check_write_target(module, stmt, elt, protected, aliases)
                )
            return out
        # ``state.view[i] = ...`` / ``del state.view[i]``.
        if isinstance(target, ast.Subscript):
            field = self._protected_attribute(target.value, protected, aliases)
            if field is not None:
                return [
                    emit(
                        module,
                        stmt,
                        MUT301,
                        f"item write to protected field '{field}' outside "
                        "the commit path; use the LocalState API "
                        "(core/state.py) instead",
                    )
                ]
            return []
        field = self._protected_attribute(target, protected, aliases)
        if field is not None:
            return [
                emit(
                    module,
                    stmt,
                    MUT301,
                    f"direct write to protected field '{field}' outside the "
                    "commit path (core/state.py, core/rounds.py, "
                    "core/determine.py); route it through the LocalState API",
                )
            ]
        return []

    def _check_mutating_call(
        self,
        module: LintedModule,
        node: ast.Call,
        protected: frozenset[str],
        aliases: set[str],
    ) -> list:
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in _MUTATORS:
            return []
        field = self._protected_attribute(func.value, protected, aliases)
        if field is None:
            return []
        return [
            emit(
                module,
                node,
                MUT302,
                f"mutating call .{func.attr}() on protected field '{field}' "
                "outside the commit path; route it through the LocalState "
                "API (core/state.py)",
            )
        ]
