"""Command-line front end: ``python -m repro.lint [root]``.

Runs the three protocol-aware passes over a package root (default:
``src/repro`` when run from the repo, else the installed ``repro``
package) and reports findings.  Exit status: 0 clean, 1 findings, 2 usage
error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.lint import run_lint
from repro.lint.base import RULES
from repro.lint.reporters import (
    apply_baseline,
    load_baseline,
    render_json,
    render_sarif,
    render_text,
)

__all__ = ["main"]


def _default_root() -> Path:
    """Prefer the source tree when invoked from a checkout."""
    candidate = Path("src/repro")
    if (candidate / "core" / "messages.py").exists():
        return candidate
    return Path(__file__).resolve().parent.parent


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="Protocol-aware static analysis: determinism auditor, "
        "message-schema cross-checker, two-phase mutation lint.",
    )
    parser.add_argument(
        "root",
        nargs="?",
        default=None,
        help="package root to scan (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="suppression list of accepted findings: the tool's own JSON "
        "report, or file:RULE / file:LINE:RULE lines",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="PREFIX",
        help="only report rules matching this id/prefix (repeatable, "
        "e.g. --select DET --select MUT301)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="PREFIX",
        help="suppress rules matching this id/prefix (repeatable)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rule ids and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, description in sorted(RULES.items()):
            print(f"{rule_id}  {description}")
        return 0

    root = Path(args.root) if args.root is not None else _default_root()
    if not root.exists():
        print(f"repro.lint: no such path: {root}", file=sys.stderr)
        return 2

    result = run_lint(root)
    for rel in result.skipped:
        print(
            f"repro.lint: warning: could not parse {rel}; it was NOT checked",
            file=sys.stderr,
        )
    findings = result.findings
    if args.select:
        findings = [
            f for f in findings if any(f.rule.startswith(p) for p in args.select)
        ]
    if args.ignore:
        findings = [
            f
            for f in findings
            if not any(f.rule.startswith(p) for p in args.ignore)
        ]
    if args.baseline:
        baseline_path = Path(args.baseline)
        if not baseline_path.exists():
            print(
                f"repro.lint: no such baseline file: {baseline_path}",
                file=sys.stderr,
            )
            return 2
        try:
            baseline = load_baseline(baseline_path)
        except ValueError as error:
            print(f"repro.lint: {error}", file=sys.stderr)
            return 2
        findings, suppressed = apply_baseline(findings, baseline)
        if suppressed:
            print(
                f"repro.lint: {suppressed} finding(s) suppressed by baseline",
                file=sys.stderr,
            )

    renderers = {"text": render_text, "json": render_json, "sarif": render_sarif}
    print(renderers[args.format](findings, files_scanned=result.files_scanned))
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
