"""WIRE5xx — wire-format conformance checker.

The codec defines the same protocol twice (JSON wire v1 and compact binary
wire v2), and both must track the message dataclasses field-by-field.  The
SCH2xx pass checks that every type is *registered*; these rules check that
each registration is *right* — the field-level drift SCH cannot see:

* **WIRE501** — a JSON encoder's frame-body keys differ from the message
  dataclass's fields (a field silently never travels, or a phantom key is
  written that nothing defines);
* **WIRE502** — a JSON decoder disagrees with its encoder or its schema:
  it reads body keys the encoder never writes (guaranteed ``KeyError`` /
  silent default), ignores keys the encoder writes (data loss on
  round-trip), passes constructor keywords that are not dataclass fields,
  or constructs a different type than its table key names;
* **WIRE503** — the compact tables are out of step: the compact encoder
  covers a different type set than the JSON encoder (the two wire formats
  diverge), a type id is reused, or the compact decoder table does not
  invert the encoder's id assignment;
* **WIRE504** — a paired code table (``_CAT_CODES``/``_CAT_NAMES``,
  ``_OP_KIND_CODES``/``_OP_KIND_NAMES``) is not an exact inverse — a value
  that encodes but decodes to something else (or not at all);
* **WIRE505** — version-bound handling: a decoder passes a ``version=``
  straight from the frame without a validating call (negative versions are
  impossible protocol states and must be rejected), or a top-level decode
  function never compares the frame against its wire-version constant.

All checks are table-driven from the AST of ``codec.py`` against the
dataclasses of ``core/messages.py`` (plus the detector ping/pong types);
encoders written in a shape the checker cannot read (no dict-literal
lambda) are skipped rather than guessed at.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.base import (
    LintedModule,
    ModuleIndex,
    attribute_chain,
    emit,
    rule,
)
from repro.lint.findings import Finding

__all__ = ["WirePass"]

WIRE501 = rule("WIRE501", "JSON encoder body keys diverge from the message schema")
WIRE502 = rule("WIRE502", "JSON decoder disagrees with its encoder or schema")
WIRE503 = rule("WIRE503", "compact codec tables diverge from the JSON codec")
WIRE504 = rule("WIRE504", "paired code tables are not exact inverses")
WIRE505 = rule("WIRE505", "wire version / version bound not validated")

_CODEC_PATH = "codec.py"
#: modules whose dataclasses define wire message schemas.
_SCHEMA_PATHS = ("core/messages.py", "detectors/heartbeat.py")

#: forward/reverse code-table pairs that must be exact inverses.
_CODE_TABLE_PAIRS = (
    ("_CAT_CODES", "_CAT_NAMES"),
    ("_OP_KIND_CODES", "_OP_KIND_NAMES"),
)

#: decode entry points and the version constant each must test against.
_VERSION_GATES = (("decode", "WIRE_VERSION"), ("decode_compact", "COMPACT_WIRE_VERSION"))


def _top_level_assign(module: LintedModule, name: str) -> Optional[ast.expr]:
    for node in module.tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return node.value
        elif isinstance(node, ast.AnnAssign):
            if (
                isinstance(node.target, ast.Name)
                and node.target.id == name
                and node.value is not None
            ):
                return node.value
    return None


def _dataclass_fields(module: LintedModule) -> dict[str, tuple[str, ...]]:
    """Field tuples of every decorated dataclass in one module."""
    schemas: dict[str, tuple[str, ...]] = {}
    for node in module.tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        is_dataclass = False
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            chain = attribute_chain(target)
            if chain and chain[-1] == "dataclass":
                is_dataclass = True
        if not is_dataclass:
            continue
        fields = tuple(
            stmt.target.id
            for stmt in node.body
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name)
        )
        schemas[node.name] = fields
    return schemas


def _str_keys(value: ast.expr) -> Optional[dict[str, ast.expr]]:
    """String-keyed dict literal as ``{key: value_expr}`` (else None)."""
    if not isinstance(value, ast.Dict):
        return None
    out: dict[str, ast.expr] = {}
    for key, val in zip(value.keys, value.values):
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            return None
        out[key.value] = val
    return out


def _subscript_keys(node: ast.AST, of_name: str) -> set[str]:
    """String keys ``of_name[...]`` is subscripted with inside ``node``."""
    keys: set[str] = set()
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Subscript)
            and isinstance(sub.value, ast.Name)
            and sub.value.id == of_name
            and isinstance(sub.slice, ast.Constant)
            and isinstance(sub.slice.value, str)
        ):
            keys.add(sub.slice.value)
        # d.get("key", ...) also counts as a read.
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr == "get"
            and isinstance(sub.func.value, ast.Name)
            and sub.func.value.id == of_name
            and sub.args
            and isinstance(sub.args[0], ast.Constant)
            and isinstance(sub.args[0].value, str)
        ):
            keys.add(sub.args[0].value)
    return keys


class WirePass:
    """Table-driven pass implementing rules WIRE501–WIRE505."""

    name = "wire"

    def run(self, index: ModuleIndex) -> list[Finding]:
        codec = index.get(_CODEC_PATH)
        if codec is None:
            return []
        schemas: dict[str, tuple[str, ...]] = {}
        for rel in _SCHEMA_PATHS:
            schema_mod = index.get(rel)
            if schema_mod is not None:
                schemas.update(_dataclass_fields(schema_mod))
        findings: list[Finding] = []
        encoder_keys = self._check_json_encoders(codec, schemas, findings)
        self._check_json_decoders(codec, schemas, encoder_keys, findings)
        self._check_compact_tables(codec, findings)
        self._check_code_tables(codec, findings)
        self._check_version_gates(codec, findings)
        return [f for f in findings if f is not None]

    # ----------------------------------------------------------------- WIRE501

    def _check_json_encoders(
        self,
        codec: LintedModule,
        schemas: dict[str, tuple[str, ...]],
        findings: list,
    ) -> dict[str, set[str]]:
        """Validate encoder body keys against schemas; returns the keys each
        type's encoder writes (for the decoder cross-check)."""
        encoder_keys: dict[str, set[str]] = {}
        table = _top_level_assign(codec, "_ENCODERS")
        if not isinstance(table, ast.Dict):
            return encoder_keys
        for key, value in zip(table.keys, table.values):
            if key is None:
                continue
            chain = attribute_chain(key)
            if not chain:
                continue
            type_name = chain[-1]
            body = value.body if isinstance(value, ast.Lambda) else None
            keys = _str_keys(body) if body is not None else None
            if keys is None:
                continue  # not a dict-literal lambda: shape unknown, skip
            encoder_keys[type_name] = set(keys)
            fields = schemas.get(type_name)
            if fields is None:
                continue
            missing = sorted(set(fields) - set(keys))
            extra = sorted(set(keys) - set(fields))
            if missing:
                findings.append(
                    emit(
                        codec,
                        value,
                        WIRE501,
                        f"encoder for {type_name} omits schema field(s) "
                        f"{', '.join(missing)} — they never cross the wire",
                    )
                )
            if extra:
                findings.append(
                    emit(
                        codec,
                        value,
                        WIRE501,
                        f"encoder for {type_name} writes key(s) "
                        f"{', '.join(extra)} that the schema does not define",
                    )
                )
        return encoder_keys

    # ----------------------------------------------------------------- WIRE502

    def _check_json_decoders(
        self,
        codec: LintedModule,
        schemas: dict[str, tuple[str, ...]],
        encoder_keys: dict[str, set[str]],
        findings: list,
    ) -> None:
        table = _top_level_assign(codec, "_DECODERS")
        if not isinstance(table, ast.Dict):
            return
        for key, value in zip(table.keys, table.values):
            if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                continue
            type_name = key.value
            ctor = self._decoder_constructor(value)
            if ctor is None:
                continue
            constructed, kwargs, param = ctor
            if constructed != type_name:
                findings.append(
                    emit(
                        codec,
                        value,
                        WIRE502,
                        f"decoder registered for {type_name} constructs "
                        f"{constructed} instead",
                    )
                )
                continue
            fields = schemas.get(type_name)
            if fields is not None:
                bogus = sorted(set(kwargs) - set(fields))
                if bogus:
                    findings.append(
                        emit(
                            codec,
                            value,
                            WIRE502,
                            f"decoder for {type_name} passes keyword(s) "
                            f"{', '.join(bogus)} that are not schema fields",
                        )
                    )
            written = encoder_keys.get(type_name)
            if written is None or param is None:
                continue
            read = _subscript_keys(value, param)
            phantom = sorted(read - written)
            ignored = sorted(written - read)
            if phantom:
                findings.append(
                    emit(
                        codec,
                        value,
                        WIRE502,
                        f"decoder for {type_name} reads body key(s) "
                        f"{', '.join(phantom)} the encoder never writes",
                    )
                )
            if ignored:
                findings.append(
                    emit(
                        codec,
                        value,
                        WIRE502,
                        f"decoder for {type_name} ignores encoded body "
                        f"key(s) {', '.join(ignored)} — the value is lost on "
                        "round-trip",
                    )
                )

    @staticmethod
    def _decoder_constructor(
        value: ast.expr,
    ) -> Optional[tuple[str, set[str], Optional[str]]]:
        """Decompose ``lambda d: Type(kw=...)`` into (type, kwargs, param)."""
        if not isinstance(value, ast.Lambda):
            return None
        param = value.args.args[0].arg if value.args.args else None
        body = value.body
        if not isinstance(body, ast.Call):
            return None
        chain = attribute_chain(body.func)
        if not chain:
            return None
        kwargs = {kw.arg for kw in body.keywords if kw.arg is not None}
        return chain[-1], kwargs, param

    # ----------------------------------------------------------------- WIRE503

    def _check_compact_tables(self, codec: LintedModule, findings: list) -> None:
        json_table = _top_level_assign(codec, "_ENCODERS")
        enc_table = _top_level_assign(codec, "_COMPACT_ENCODERS")
        dec_table = _top_level_assign(codec, "_COMPACT_DECODERS")
        if not isinstance(enc_table, ast.Dict):
            return
        json_types: set[str] = set()
        if isinstance(json_table, ast.Dict):
            for key in json_table.keys:
                chain = attribute_chain(key) if key is not None else ()
                if chain:
                    json_types.add(chain[-1])
        compact_types: dict[str, int] = {}
        ids_seen: dict[int, str] = {}
        for key, value in zip(enc_table.keys, enc_table.values):
            chain = attribute_chain(key) if key is not None else ()
            if not chain:
                continue
            type_name = chain[-1]
            type_id = None
            if (
                isinstance(value, ast.Tuple)
                and value.elts
                and isinstance(value.elts[0], ast.Constant)
                and isinstance(value.elts[0].value, int)
            ):
                type_id = value.elts[0].value
            if type_id is None:
                continue
            compact_types[type_name] = type_id
            if type_id in ids_seen:
                findings.append(
                    emit(
                        codec,
                        value,
                        WIRE503,
                        f"compact type id {type_id} is assigned to both "
                        f"{ids_seen[type_id]} and {type_name}",
                    )
                )
            ids_seen[type_id] = type_name
        if json_types:
            for name in sorted(json_types - set(compact_types)):
                findings.append(
                    emit(
                        codec,
                        enc_table,
                        WIRE503,
                        f"type {name} encodes on the JSON wire but has no "
                        "compact encoder — the two wire formats diverge",
                    )
                )
            for name in sorted(set(compact_types) - json_types):
                findings.append(
                    emit(
                        codec,
                        enc_table,
                        WIRE503,
                        f"type {name} has a compact encoder but no JSON "
                        "encoder — the two wire formats diverge",
                    )
                )
        if isinstance(dec_table, ast.Dict):
            decoder_ids = {
                key.value
                for key in dec_table.keys
                if isinstance(key, ast.Constant) and isinstance(key.value, int)
            }
            for type_name, type_id in sorted(compact_types.items()):
                if type_id not in decoder_ids:
                    findings.append(
                        emit(
                            codec,
                            dec_table,
                            WIRE503,
                            f"compact type id {type_id} ({type_name}) has no "
                            "compact decoder entry",
                        )
                    )
            for type_id in sorted(decoder_ids - set(compact_types.values())):
                findings.append(
                    emit(
                        codec,
                        dec_table,
                        WIRE503,
                        f"compact decoder id {type_id} matches no compact "
                        "encoder — frames with it can never be produced",
                    )
                )

    # ----------------------------------------------------------------- WIRE504

    def _check_code_tables(self, codec: LintedModule, findings: list) -> None:
        for forward_name, reverse_name in _CODE_TABLE_PAIRS:
            forward = _top_level_assign(codec, forward_name)
            reverse = _top_level_assign(codec, reverse_name)
            if not isinstance(forward, ast.Dict) or not isinstance(reverse, ast.Dict):
                continue
            fwd = self._const_dict(forward)
            rev = self._const_dict(reverse)
            if fwd is None or rev is None:
                continue
            inverted = {v: k for k, v in fwd.items()}
            if len(inverted) != len(fwd):
                findings.append(
                    emit(
                        codec,
                        forward,
                        WIRE504,
                        f"{forward_name} maps two keys to one code — the "
                        "reverse mapping cannot be faithful",
                    )
                )
            for code, name in sorted(inverted.items(), key=repr):
                if rev.get(code) != name:
                    findings.append(
                        emit(
                            codec,
                            reverse,
                            WIRE504,
                            f"{reverse_name}[{code!r}] = {rev.get(code)!r} "
                            f"does not invert {forward_name} "
                            f"({name!r} -> {code!r})",
                        )
                    )
            for code in sorted(set(rev) - set(inverted), key=repr):
                findings.append(
                    emit(
                        codec,
                        reverse,
                        WIRE504,
                        f"{reverse_name}[{code!r}] has no counterpart in "
                        f"{forward_name}",
                    )
                )

    @staticmethod
    def _const_dict(node: ast.Dict) -> Optional[dict]:
        out = {}
        for key, value in zip(node.keys, node.values):
            if not isinstance(key, ast.Constant) or not isinstance(
                value, ast.Constant
            ):
                return None
            out[key.value] = value.value
        return out

    # ----------------------------------------------------------------- WIRE505

    def _check_version_gates(self, codec: LintedModule, findings: list) -> None:
        # (a) decoder lambdas must validate version= through a call.
        table = _top_level_assign(codec, "_DECODERS")
        if isinstance(table, ast.Dict):
            for key, value in zip(table.keys, table.values):
                if not isinstance(value, ast.Lambda) or not isinstance(
                    value.body, ast.Call
                ):
                    continue
                for kw in value.body.keywords:
                    if kw.arg != "version":
                        continue
                    if self._is_raw_frame_read(kw.value):
                        type_name = (
                            key.value
                            if isinstance(key, ast.Constant)
                            else "<unknown>"
                        )
                        findings.append(
                            emit(
                                codec,
                                kw.value,
                                WIRE505,
                                f"decoder for {type_name} passes version= "
                                "straight from the frame without validation; "
                                "wrap it in the version validator (negative "
                                "versions are impossible protocol states)",
                            )
                        )
        # (b) top-level decode functions must gate on the version constant.
        for func_name, constant in _VERSION_GATES:
            func = self._module_function(codec, func_name)
            if func is None:
                continue
            if not self._compares_against(func, constant):
                findings.append(
                    emit(
                        codec,
                        func,
                        WIRE505,
                        f"{func_name}() never compares the frame against "
                        f"{constant}; frames from incompatible wire versions "
                        "would be misparsed instead of rejected",
                    )
                )

    @staticmethod
    def _is_raw_frame_read(value: ast.expr) -> bool:
        """True for a bare ``d["version"]`` / ``d.get("version")`` read."""
        if isinstance(value, ast.Subscript):
            return True
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr == "get"
        ):
            return True
        return False

    @staticmethod
    def _module_function(
        codec: LintedModule, name: str
    ) -> Optional[ast.FunctionDef]:
        for node in codec.tree.body:
            if isinstance(node, ast.FunctionDef) and node.name == name:
                return node
        return None

    @staticmethod
    def _compares_against(func: ast.FunctionDef, constant: str) -> bool:
        for node in ast.walk(func):
            if isinstance(node, ast.Compare):
                names = {
                    n.id
                    for sub in [node.left, *node.comparators]
                    for n in ast.walk(sub)
                    if isinstance(n, ast.Name)
                }
                if constant in names:
                    return True
        return False

    def _iter_unused(self) -> Iterator[None]:  # pragma: no cover
        yield None
