"""Protocol-aware static analysis for the GMP reproduction.

Six passes keep the implementation honest against the paper's model
assumptions (see ``docs/LINTING.md``).  Three are AST pattern matchers:

* :mod:`repro.lint.determinism` (``DET1xx``) — the sim/core/verify layers
  must be replayable: no wall-clock, no global RNG, no address- or
  hash-order-dependent behaviour;
* :mod:`repro.lint.schema` (``SCH2xx``) — the message dataclasses, the
  codec tables, and the isinstance dispatch must agree;
* :mod:`repro.lint.mutation` (``MUT3xx``) — view/membership state mutates
  only through the commit path (the paper's Section 3 two-phase
  discipline).

Three are flow-sensitive, built on the per-function CFGs of
:mod:`repro.lint.cfg` and the worklist engine of
:mod:`repro.lint.dataflow`:

* :mod:`repro.lint.asyncrules` (``ASY4xx``) — handler atomicity ends at
  every ``await``: stale-check races, fire-and-forget tasks, misplaced
  asyncio primitives, loop-blocking calls;
* :mod:`repro.lint.wire` (``WIRE5xx``) — the JSON and compact wire
  formats are cross-checked field-by-field against the message schemas
  so they can never silently diverge;
* :mod:`repro.lint.obsrules` (``OBS6xx``) — span begin/end lifecycle
  proofs and the obs ``is not None`` disabled-path discipline.

Use :func:`run_lint` programmatically, or ``python -m repro.lint`` /
``repro lint`` from the shell.  Findings are suppressed line-by-line with
``# lint: allow[RULE-or-family]`` comments.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence

from repro.lint.asyncrules import AsyncPass
from repro.lint.base import RULES, ModuleIndex
from repro.lint.determinism import DEFAULT_DETERMINISM_SCOPE, DeterminismPass
from repro.lint.findings import Finding
from repro.lint.mutation import MutationPass
from repro.lint.obsrules import ObsPass
from repro.lint.schema import SchemaPass
from repro.lint.wire import WirePass

__all__ = ["Finding", "LintResult", "run_lint", "RULES"]


@dataclass(frozen=True, slots=True)
class LintResult:
    """Outcome of one lint run."""

    findings: tuple[Finding, ...]
    files_scanned: int
    #: files that exist but could not be parsed (reported, never silently
    #: dropped — a broken file must not pass the merge gate unseen).
    skipped: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.findings


def run_lint(
    root: Path | str,
    determinism_scope: Optional[Sequence[str]] = None,
) -> LintResult:
    """Run all three passes over ``root`` and return sorted findings.

    ``root`` is a package directory (or a single file).  The determinism
    auditor restricts itself to the replay-critical sub-packages when the
    root looks like the ``repro`` package itself; for any other root (e.g.
    a test fixture tree) it scans everything, so fixtures behave the same
    without mimicking the full package layout.
    """
    root = Path(root)
    index = ModuleIndex.build(root)
    if determinism_scope is None:
        is_repro_pkg = index.get("core/messages.py") is not None
        scope: Optional[Sequence[str]] = (
            DEFAULT_DETERMINISM_SCOPE if is_repro_pkg else None
        )
    else:
        scope = determinism_scope
    passes = [
        DeterminismPass(scope=scope),
        SchemaPass(),
        MutationPass(),
        AsyncPass(),
        WirePass(),
        ObsPass(),
    ]
    findings: list[Finding] = []
    for lint_pass in passes:
        findings.extend(lint_pass.run(index))
    findings.sort(key=Finding.sort_key)
    return LintResult(
        findings=tuple(findings),
        files_scanned=len(index.modules),
        skipped=index.skipped,
    )
