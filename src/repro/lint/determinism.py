"""DET1xx — determinism auditor.

The sim/core/verify layers must be bit-for-bit replayable: every run is a
function of the seed and the schedule, nothing else.  This pass flags the
four ways nondeterminism typically leaks in:

* **DET101** — wall-clock reads (``time.time``, ``datetime.now``, …).  The
  simulator's logical clock (``scheduler.now``) is the only time source.
* **DET102** — the process-global RNG (``random.random()`` et al., bare
  ``random.Random()`` with no seed, ``random.seed``).  Randomness must flow
  through an explicitly seeded ``random.Random`` instance.
* **DET103** — ``id()``-based ordering (``key=id`` or ``id()`` inside a
  sort/min/max or comparison): CPython object addresses vary run to run.
* **DET104** — iteration over a ``set``/``frozenset`` that feeds an
  order-sensitive sink (message sends, trace records, detector watches,
  scheduler calls) or builds an ordered collection.  Set iteration order
  depends on ``PYTHONHASHSEED``; iterate ``sorted(...)`` instead.  (Dict
  iteration is insertion-ordered in Python 3.7+ and therefore exempt.)
* **DET105** — ``sim/`` only: a for-loop over a private mutable dict
  attribute (``self._held``, ``self._processes``, ...) feeding an
  order-sensitive sink.  Dict iteration is insertion-ordered, but for
  these substrate dicts insertion order *is arrival history* — a loop
  that emits in that order couples replay to incidental event ordering
  and breaks under any refactor that changes when entries appear.
  Iterate ``sorted(...)`` over a stable key instead.

The ``aio/`` real-network layer legitimately touches wall-clock machinery;
it carries explicit ``# lint: allow[nondeterminism]`` comments where it
does.
"""

from __future__ import annotations

import ast
from typing import Optional, Sequence

from repro.lint.base import (
    LintedModule,
    ModuleIndex,
    SetTypeInferencer,
    attribute_chain,
    emit,
    iter_functions,
    rule,
    walk_scope,
)
from repro.lint.findings import Finding

__all__ = ["DeterminismPass", "DEFAULT_DETERMINISM_SCOPE"]

DET101 = rule("DET101", "wall-clock read in replay-critical code")
DET102 = rule("DET102", "process-global / unseeded RNG use")
DET103 = rule("DET103", "id()-based ordering is address-dependent")
DET104 = rule("DET104", "set iteration feeds an order-sensitive sink")
DET105 = rule(
    "DET105", "arrival-ordered dict iteration feeds an order-sensitive sink"
)

#: Directories (relative to the package root) the auditor covers by default.
DEFAULT_DETERMINISM_SCOPE: tuple[str, ...] = (
    "core",
    "sim",
    "verify",
    "transport",
    "detectors",
    "aio",
    "runner",
)

_WALL_CLOCK_CHAINS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "monotonic_ns"),
    ("time", "perf_counter"),
    ("time", "perf_counter_ns"),
    ("time", "process_time"),
    ("time", "sleep"),
}

_DATETIME_FACTORIES = {"now", "utcnow", "today"}

_GLOBAL_RNG_FUNCS = {
    "random",
    "randint",
    "randrange",
    "uniform",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "gauss",
    "normalvariate",
    "lognormvariate",
    "expovariate",
    "betavariate",
    "gammavariate",
    "paretovariate",
    "vonmisesvariate",
    "weibullvariate",
    "triangular",
    "getrandbits",
    "randbytes",
    "seed",
}

#: Callee names whose argument order is observable: message emission, trace
#: recording, detector bookkeeping, scheduler insertion, FIFO queueing.
_ORDER_SINKS = {
    "send",
    "broadcast",
    "record",
    "watch",
    "unwatch",
    "at",
    "after",
    "set_timer",
    "suspect",
    "suspect_at",
    "on_suspect",
    "on_message",
    "note_faulty",
    "note_operating",
    "append",
    "appendleft",
    "extend",
    "hold",
    "offer",
    "put",
    "push",
    "schedule",
    "_receive",
    "_deliver",
    "_suspect",
    "_note_faulty",
    "_note_operating",
}


_DICT_ANNOTATION_NAMES = (
    "dict",
    "Dict",
    "defaultdict",
    "OrderedDict",
    "MutableMapping",
    "Mapping",
)


def _annotation_is_dict(annotation: Optional[ast.expr]) -> bool:
    if annotation is None:
        return False
    target = annotation
    if isinstance(target, ast.Subscript):
        target = target.value
    if isinstance(target, ast.Constant) and isinstance(target.value, str):
        return target.value.lstrip().startswith(_DICT_ANNOTATION_NAMES)
    chain = attribute_chain(target)
    return bool(chain) and chain[-1] in _DICT_ANNOTATION_NAMES


class DeterminismPass:
    """AST pass implementing rules DET101–DET105."""

    name = "determinism"

    def __init__(self, scope: Optional[Sequence[str]] = None) -> None:
        #: path prefixes to audit; ``None`` means every module in the index.
        self.scope = tuple(scope) if scope is not None else None

    def run(self, index: ModuleIndex) -> list[Finding]:
        findings: list[Finding] = []
        modules = (
            index.under(*self.scope) if self.scope is not None else index.under()
        )
        for module in modules:
            findings.extend(self._check_module(module))
        return findings

    # ------------------------------------------------------------ per module

    def _check_module(self, module: LintedModule) -> list[Finding]:
        findings: list[Finding] = []
        bare_rng_names = self._bare_random_imports(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                findings.extend(self._check_call(module, node, bare_rng_names))
            elif isinstance(node, ast.keyword):
                findings.extend(self._check_keyword(module, node))
            elif isinstance(node, ast.Compare):
                findings.extend(self._check_compare(module, node))
        findings.extend(self._check_set_iteration(module))
        if module.rel_path.split("/", 1)[0] == "sim":
            findings.extend(self._check_dict_iteration(module))
        return [f for f in findings if f is not None]

    @staticmethod
    def _bare_random_imports(tree: ast.Module) -> set[str]:
        """Names imported via ``from random import x`` (global RNG access)."""
        names: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name in _GLOBAL_RNG_FUNCS:
                        names.add(alias.asname or alias.name)
        return names

    # ------------------------------------------------------- DET101 / DET102

    def _check_call(
        self, module: LintedModule, node: ast.Call, bare_rng: set[str]
    ) -> list:
        out = []
        chain = attribute_chain(node.func)
        if chain[-2:] in _WALL_CLOCK_CHAINS or (
            len(chain) >= 2
            and chain[-1] in _DATETIME_FACTORIES
            and "datetime" in chain[:-1]
        ):
            out.append(
                emit(
                    module,
                    node,
                    DET101,
                    f"wall-clock call {'.'.join(chain)}(); use the logical "
                    "scheduler clock (scheduler.now) instead",
                )
            )
        if len(chain) == 2 and chain[0] == "random" and chain[1] in _GLOBAL_RNG_FUNCS:
            out.append(
                emit(
                    module,
                    node,
                    DET102,
                    f"global RNG call random.{chain[1]}(); thread a seeded "
                    "random.Random instance through instead",
                )
            )
        if (
            chain[-2:] == ("random", "Random")
            and not node.args
            and not node.keywords
        ):
            out.append(
                emit(
                    module,
                    node,
                    DET102,
                    "random.Random() constructed without a seed; pass an "
                    "explicit seed so runs replay",
                )
            )
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in bare_rng
        ):
            out.append(
                emit(
                    module,
                    node,
                    DET102,
                    f"global RNG call {node.func.id}() (imported from "
                    "random); thread a seeded random.Random through instead",
                )
            )
        # DET103: id() as an ordering key inside sorted/min/max arguments.
        if chain[-1:] == ("sorted",) or chain[-1:] in (("min",), ("max",)):
            for arg in node.args:
                if self._contains_id_call(arg):
                    out.append(
                        emit(
                            module,
                            node,
                            DET103,
                            "id() inside a sort/min/max expression orders by "
                            "object address; use an explicit key",
                        )
                    )
                    break
        return out

    # ----------------------------------------------------------------- DET103

    @staticmethod
    def _contains_id_call(node: ast.AST) -> bool:
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id == "id"
            ):
                return True
        return False

    def _check_keyword(self, module: LintedModule, node: ast.keyword) -> list:
        if node.arg != "key":
            return []
        value = node.value
        is_id = isinstance(value, ast.Name) and value.id == "id"
        if isinstance(value, ast.Lambda) and self._contains_id_call(value.body):
            is_id = True
        if not is_id:
            return []
        return [
            emit(
                module,
                node.value,
                DET103,
                "key=id orders by object address, which varies between "
                "runs; use a value-based key",
            )
        ]

    def _check_compare(self, module: LintedModule, node: ast.Compare) -> list:
        ordering_ops = (ast.Lt, ast.LtE, ast.Gt, ast.GtE)
        if not any(isinstance(op, ordering_ops) for op in node.ops):
            return []
        operands = [node.left, *node.comparators]
        if any(
            isinstance(o, ast.Call)
            and isinstance(o.func, ast.Name)
            and o.func.id == "id"
            for o in operands
        ):
            return [
                emit(
                    module,
                    node,
                    DET103,
                    "ordering comparison on id() is address-dependent",
                )
            ]
        return []

    # ----------------------------------------------------------------- DET104

    def _check_set_iteration(self, module: LintedModule) -> list:
        out = []
        for class_node, func in iter_functions(module.tree):
            inferencer = SetTypeInferencer(class_node)
            aliases = (
                inferencer.local_aliases(func)
                if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
                else {}
            )
            for node in walk_scope(func):
                if isinstance(node, ast.For) and inferencer.is_set_expr(
                    node.iter, aliases
                ):
                    if self._has_order_sink(node):
                        out.append(
                            emit(
                                module,
                                node,
                                DET104,
                                "for-loop over a set feeds an order-sensitive "
                                "operation; iterate sorted(...) for a "
                                "deterministic order",
                            )
                        )
                elif isinstance(node, (ast.ListComp, ast.DictComp)):
                    for gen in node.generators:
                        if inferencer.is_set_expr(gen.iter, aliases):
                            out.append(
                                emit(
                                    module,
                                    node,
                                    DET104,
                                    "comprehension builds an ordered "
                                    "collection from a set; iterate "
                                    "sorted(...) for a deterministic order",
                                )
                            )
                            break
        return out

    @staticmethod
    def _has_order_sink(loop: ast.For) -> bool:
        for node in ast.walk(loop):
            if isinstance(node, ast.Call):
                chain = attribute_chain(node.func)
                if chain and chain[-1] in _ORDER_SINKS:
                    return True
        return False

    # ----------------------------------------------------------------- DET105

    _DICT_VIEWS = ("items", "keys", "values")

    @classmethod
    def _private_dict_attributes(cls, class_node: ast.ClassDef) -> set[str]:
        """Attributes of ``self`` named ``_x`` and initialised/annotated as
        dicts anywhere in the class body."""
        attrs: set[str] = set()
        for stmt in class_node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                if stmt.target.id.startswith("_") and _annotation_is_dict(
                    stmt.annotation
                ):
                    attrs.add(stmt.target.id)
        for method in (
            n
            for n in class_node.body
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ):
            for stmt in ast.walk(method):
                target = None
                value = None
                if isinstance(stmt, ast.AnnAssign):
                    if _annotation_is_dict(stmt.annotation):
                        target = stmt.target
                elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target, value = stmt.targets[0], stmt.value
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and target.attr.startswith("_")
                    and (value is None or cls._is_dict_literal(value))
                ):
                    attrs.add(target.attr)
        return attrs

    @staticmethod
    def _is_dict_literal(node: ast.expr) -> bool:
        if isinstance(node, (ast.Dict, ast.DictComp)):
            return True
        if isinstance(node, ast.Call):
            chain = attribute_chain(node.func)
            return bool(chain) and chain[-1] in ("dict", "defaultdict", "OrderedDict")
        return False

    def _iterates_private_dict(
        self, iter_node: ast.expr, dict_attrs: set[str], aliases: set[str]
    ) -> Optional[str]:
        """The dict attribute a loop iterates, or None.

        Matches ``self._x``, ``self._x.items()/keys()/values()``, and the
        same through a hoisted local alias (``held = self._held``).
        ``sorted(...)`` wrappers never match: the call chain is ``sorted``.
        """
        target = iter_node
        if (
            isinstance(target, ast.Call)
            and isinstance(target.func, ast.Attribute)
            and target.func.attr in self._DICT_VIEWS
        ):
            target = target.func.value
        chain = attribute_chain(target)
        if len(chain) == 2 and chain[0] == "self" and chain[1] in dict_attrs:
            return chain[1]
        if len(chain) == 1 and chain[0] in aliases:
            return chain[0]
        return None

    def _check_dict_iteration(self, module: LintedModule) -> list:
        out = []
        for class_node, func in iter_functions(module.tree):
            if class_node is None or not isinstance(
                func, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            dict_attrs = self._private_dict_attributes(class_node)
            if not dict_attrs:
                continue
            aliases: set[str] = set()
            for stmt in ast.walk(func):
                if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                    target = stmt.targets[0]
                    value_chain = attribute_chain(stmt.value)
                    if (
                        isinstance(target, ast.Name)
                        and len(value_chain) == 2
                        and value_chain[0] == "self"
                        and value_chain[1] in dict_attrs
                    ):
                        aliases.add(target.id)
            for node in walk_scope(func):
                if not isinstance(node, ast.For):
                    continue
                attr = self._iterates_private_dict(node.iter, dict_attrs, aliases)
                if attr is not None and self._has_order_sink(node):
                    out.append(
                        emit(
                            module,
                            node,
                            DET105,
                            f"for-loop over arrival-ordered dict {attr!r} "
                            "feeds an order-sensitive operation; iterate "
                            "sorted(...) over a stable key instead",
                        )
                    )
        return out
