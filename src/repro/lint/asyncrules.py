"""ASY4xx — async atomicity / race detector.

The paper's correctness argument assumes a handler runs atomically between
message deliveries.  Under asyncio that atomicity ends at every ``await``:
the loop may run any other coroutine — another handler, a reconnect, a
crash observer — before control returns, so instance state checked before
an ``await`` may be stale after it.  These rules make that window visible:

* **ASY401** — read-check-``await``-write: an ``if``/``while``/``assert``
  condition reads ``self.<attr>``, the path then crosses an ``await``, and
  ``self.<attr>`` is written without the condition being re-established in
  between.  The write may act on a decision another task has invalidated
  (the double-started-server class of bug).  Flow-sensitive: built on the
  CFG and a forward fresh/stale fact analysis, so a re-check after the
  suspension point clears the finding.
* **ASY402** — fire-and-forget task: a bare ``create_task``/
  ``ensure_future`` whose result is discarded.  Nothing retains the task
  (the loop keeps only a weak reference — it can be garbage-collected
  mid-flight) and nothing ever observes its exception.
* **ASY403** — asyncio primitive (``Event``, ``Lock``, ``Queue``, …)
  constructed at import time (module/class scope or a parameter default):
  the object is shared across event loops and fails at use with "bound to
  a different event loop".
* **ASY404** — blocking call inside a coroutine (``time.sleep``,
  ``subprocess.run``, ``socket.create_connection``, …): it stalls the
  whole event loop, turning one slow handler into the Lifeguard
  slow-processing failure mode for every group this process serves.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.base import (
    LintedModule,
    ModuleIndex,
    attribute_chain,
    emit,
    iter_functions,
    rule,
    walk_scope,
)
from repro.lint.cfg import Block, build_cfg, stmt_contains_await
from repro.lint.dataflow import solve_forward
from repro.lint.findings import Finding

__all__ = ["AsyncPass"]

ASY401 = rule(
    "ASY401", "instance state checked before an await and written after it"
)
ASY402 = rule("ASY402", "fire-and-forget task: result (and exceptions) dropped")
ASY403 = rule("ASY403", "asyncio primitive constructed outside a running loop")
ASY404 = rule("ASY404", "blocking call inside a coroutine stalls the event loop")

_TASK_FACTORIES = {"create_task", "ensure_future"}

_ASYNC_PRIMITIVES = {
    "Event",
    "Lock",
    "Condition",
    "Semaphore",
    "BoundedSemaphore",
    "Queue",
    "LifoQueue",
    "PriorityQueue",
    "Barrier",
}

#: call chains that block the loop when executed inside a coroutine.
_BLOCKING_CHAINS = {
    ("time", "sleep"),
    ("os", "system"),
    ("os", "wait"),
    ("subprocess", "run"),
    ("subprocess", "call"),
    ("subprocess", "check_call"),
    ("subprocess", "check_output"),
    ("socket", "create_connection"),
    ("socket", "getaddrinfo"),
    ("socket", "gethostbyname"),
    ("urllib", "request", "urlopen"),
    ("requests", "get"),
    ("requests", "post"),
    ("requests", "put"),
    ("requests", "delete"),
    ("requests", "head"),
    ("requests", "request"),
}

_BLOCKING_METHODS = {"run_until_complete"}


def _self_attr_written(stmt: ast.stmt) -> set[str]:
    """Attributes of ``self`` written (directly or via subscript) by one
    statement: ``self.x = ...``, ``self.x[k] = ...``, ``self.x += ...``,
    ``del self.x[k]``."""
    written: set[str] = set()

    def target_attr(target: ast.expr) -> Optional[str]:
        node = target
        if isinstance(node, ast.Subscript):
            node = node.value
        chain = attribute_chain(node)
        if len(chain) == 2 and chain[0] == "self":
            return chain[1]
        return None

    targets: list[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    elif isinstance(stmt, ast.Delete):
        targets = list(stmt.targets)
    for target in targets:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                attr = target_attr(elt)
                if attr is not None:
                    written.add(attr)
        else:
            attr = target_attr(target)
            if attr is not None:
                written.add(attr)
    return written


def _self_attrs_read(expr: ast.expr) -> set[str]:
    """``self.<attr>`` chains read anywhere inside one expression."""
    read: set[str] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Attribute):
            chain = attribute_chain(node)
            if len(chain) >= 2 and chain[0] == "self":
                read.add(chain[1])
    return read


class AsyncPass:
    """CFG/dataflow pass implementing rules ASY401–ASY404."""

    name = "async"

    def run(self, index: ModuleIndex) -> list[Finding]:
        findings: list[Finding] = []
        for module in index.under():
            findings.extend(self._check_module(module))
        return findings

    def _check_module(self, module: LintedModule) -> list[Finding]:
        findings: list[Finding] = []
        findings.extend(self._check_import_time_primitives(module))
        for class_node, func in iter_functions(module.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            findings.extend(self._check_fire_and_forget(module, func))
            if isinstance(func, ast.AsyncFunctionDef):
                findings.extend(self._check_blocking_calls(module, func))
                findings.extend(self._check_stale_state(module, func))
        return [f for f in findings if f is not None]

    # ----------------------------------------------------------------- ASY401

    def _check_stale_state(
        self, module: LintedModule, func: ast.AsyncFunctionDef
    ) -> Iterator[Optional[Finding]]:
        cfg = build_cfg(func)
        has_write = any(
            _self_attr_written(stmt)
            for block in cfg.blocks
            for stmt in block.stmts
        )
        if not has_write:
            return

        def transfer(block: Block, in_state) -> tuple:
            facts = set(in_state)
            self._transfer_block(block, facts, emit_to=None, module=module)
            return frozenset(facts), {}

        in_states = solve_forward(cfg, frozenset(), transfer)
        out: list[Optional[Finding]] = []
        for block in cfg.blocks:
            state = in_states.get(block.bid)
            if state is None:
                continue
            facts = set(state)
            self._transfer_block(block, facts, emit_to=out, module=module)
        yield from out

    def _transfer_block(
        self,
        block: Block,
        facts: set,
        emit_to: Optional[list],
        module: LintedModule,
    ) -> None:
        """Run the fresh/stale automaton over one block (in place).

        Facts are ``("fresh", attr)`` / ``("stale", attr)``: *fresh* means
        "attr was read by a branch condition with no suspension since";
        crossing an await downgrades fresh to stale; a write while stale is
        the race (reported when ``emit_to`` is given); a re-check clears
        staleness.
        """
        for stmt in block.stmts:
            for test in self._condition_exprs(stmt):
                for attr in _self_attrs_read(test):
                    facts.discard(("stale", attr))
                    facts.add(("fresh", attr))
            if stmt_contains_await(stmt):
                for kind, attr in list(facts):
                    if kind == "fresh":
                        facts.discard(("fresh", attr))
                        facts.add(("stale", attr))
            for attr in _self_attr_written(stmt):
                if ("stale", attr) in facts:
                    if emit_to is not None:
                        emit_to.append(
                            emit(
                                module,
                                stmt,
                                ASY401,
                                f"self.{attr} was checked before an await and "
                                "is written here without re-validation; "
                                "another task may have changed it during the "
                                "suspension — re-check (or re-read) "
                                f"self.{attr} after the await",
                            )
                        )
                facts.discard(("stale", attr))
                facts.discard(("fresh", attr))
        if block.test is not None:
            for attr in _self_attrs_read(block.test):
                facts.discard(("stale", attr))
                facts.add(("fresh", attr))

    @staticmethod
    def _condition_exprs(stmt: ast.stmt) -> Iterator[ast.expr]:
        """Condition expressions evaluated by one straight-line statement
        (assert tests and conditional expressions; if/while tests live on
        the block as ``Block.test``)."""
        if isinstance(stmt, ast.Assert):
            yield stmt.test
        for node in ast.walk(stmt):
            if isinstance(node, ast.IfExp):
                yield node.test

    # ----------------------------------------------------------------- ASY402

    def _check_fire_and_forget(
        self, module: LintedModule, func: ast.AST
    ) -> Iterator[Optional[Finding]]:
        for node in walk_scope(func):
            if not isinstance(node, ast.Expr):
                continue
            call = node.value
            if not isinstance(call, ast.Call):
                continue
            name = self._task_factory_name(call.func)
            if name is None:
                continue
            yield emit(
                module,
                node,
                ASY402,
                f"{name}(...) result is discarded: the loop holds only a "
                "weak reference (the task can be collected mid-flight) and "
                "its exception is silently dropped — retain the task and "
                "observe its outcome (add_done_callback or await)",
            )

    @staticmethod
    def _task_factory_name(func: ast.expr) -> Optional[str]:
        if isinstance(func, ast.Attribute) and func.attr in _TASK_FACTORIES:
            return func.attr
        if isinstance(func, ast.Name) and func.id in _TASK_FACTORIES:
            return func.id
        return None

    # ----------------------------------------------------------------- ASY403

    def _check_import_time_primitives(
        self, module: LintedModule
    ) -> Iterator[Optional[Finding]]:
        for scope in self._import_time_scopes(module.tree):
            for stmt in scope.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    # Parameter defaults evaluate at import time even though
                    # the body does not.
                    for default in list(stmt.args.defaults) + [
                        d for d in stmt.args.kw_defaults if d is not None
                    ]:
                        yield from self._primitive_calls(module, default)
                elif not isinstance(stmt, ast.ClassDef):
                    yield from self._primitive_calls(module, stmt)

    def _import_time_scopes(self, tree: ast.Module) -> Iterator[ast.AST]:
        yield tree
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                yield node

    def _primitive_calls(
        self, module: LintedModule, node: ast.AST
    ) -> Iterator[Optional[Finding]]:
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            chain = attribute_chain(sub.func)
            if (
                len(chain) == 2
                and chain[0] == "asyncio"
                and chain[1] in _ASYNC_PRIMITIVES
            ):
                yield emit(
                    module,
                    sub,
                    ASY403,
                    f"asyncio.{chain[1]}() constructed at import time runs "
                    "outside any event loop; create it from the coroutine "
                    "(or lazily on first use inside the running loop)",
                )

    # ----------------------------------------------------------------- ASY404

    def _check_blocking_calls(
        self, module: LintedModule, func: ast.AsyncFunctionDef
    ) -> Iterator[Optional[Finding]]:
        for node in walk_scope(func):
            if not isinstance(node, ast.Call):
                continue
            chain = attribute_chain(node.func)
            if chain[-2:] in _BLOCKING_CHAINS or chain[-3:] in _BLOCKING_CHAINS:
                yield emit(
                    module,
                    node,
                    ASY404,
                    f"blocking call {'.'.join(chain)}() inside a coroutine "
                    "stalls the whole event loop; use the asyncio "
                    "equivalent (asyncio.sleep, loop.run_in_executor, ...)",
                )
            elif chain and chain[-1] in _BLOCKING_METHODS:
                yield emit(
                    module,
                    node,
                    ASY404,
                    f"{chain[-1]}() inside a coroutine re-enters the event "
                    "loop and deadlocks; await the coroutine instead",
                )
