"""OBS6xx — span and metric discipline checker.

The obs layer's contract (see ``repro.obs``) has two halves that plain
code review keeps getting wrong:

* **span lifecycle** — every ``SpanLog.begin`` needs a matching ``end``
  (or a deliberate ``discard``) or the interval silently vanishes from
  every report.  **OBS601** proves it with CFG path reachability: when a
  function both begins and closes a span name, every path from the begin
  to the function's *normal* exit must pass a close for that name
  (exception paths are exempt — a crashed interval has no duration).
  **OBS602** covers the cross-function pairs (tcp.reconnect begins in the
  drain loop and ends in the ack reader): a span name begun anywhere must
  have an ``end``/``discard`` somewhere in the linted tree, else it can
  never complete.
* **disabled-path discipline** — instrumented layers hold an ``obs``
  attribute defaulting to ``None`` and every touch must sit behind the
  single ``if obs is not None`` attribute check, so uninstrumented runs
  pay one pointer test.  **OBS603** is a must-analysis over the CFG:
  facts are obs expressions proven non-None (by a guard edge, an assert,
  or construction), and any attribute access on an unproven obs
  expression is a crash on the disabled path.

Span calls are recognised by shape — ``<anything>.spans.begin(...)`` or a
local ``spans`` alias — with a *literal* first argument; dynamically named
spans (the member-layer ``_span_begin`` helpers) are out of scope.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.base import (
    LintedModule,
    ModuleIndex,
    attribute_chain,
    emit,
    iter_functions,
    rule,
    walk_scope,
)
from repro.lint.cfg import CFG, Block, build_cfg
from repro.lint.dataflow import solve_forward
from repro.lint.findings import Finding

__all__ = ["ObsPass"]

OBS601 = rule("OBS601", "span can reach function exit without end/discard")
OBS602 = rule("OBS602", "span is begun but never ended anywhere in the tree")
OBS603 = rule("OBS603", "obs touched outside the is-not-None guard")

#: spans methods that close an open (name, key) interval.
_CLOSERS = {"end", "discard"}


def _span_call(node: ast.AST) -> Optional[tuple[str, Optional[str]]]:
    """Decompose a spans-API call into ``(method, literal_name_or_None)``.

    Matches ``<expr>.spans.<method>(...)`` and ``spans.<method>(...)`` (the
    local-alias idiom); returns the first argument when it is a string
    literal, else ``None`` for the name.
    """
    if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
        return None
    method = node.func.attr
    if method not in ("begin", *_CLOSERS, "emit"):
        return None
    receiver = node.func.value
    chain = attribute_chain(receiver)
    if not (
        (chain and chain[-1] == "spans")
        or (isinstance(receiver, ast.Name) and receiver.id == "spans")
    ):
        return None
    name: Optional[str] = None
    if node.args:
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            name = first.value
    return method, name


def _stmt_span_calls(stmt: ast.stmt) -> Iterator[tuple[str, Optional[str]]]:
    for node in ast.walk(stmt):
        found = _span_call(node)
        if found is not None:
            yield found


class ObsPass:
    """CFG/dataflow pass implementing rules OBS601–OBS603."""

    name = "obs"

    def run(self, index: ModuleIndex) -> list[Finding]:
        findings: list[Finding] = []
        begins: list[tuple[LintedModule, ast.AST, str]] = []
        closed_names: set[str] = set()
        for module in index.under():
            for _class_node, func in iter_functions(module.tree):
                findings.extend(self._check_span_paths(module, func))
                findings.extend(self._check_obs_guard(module, func))
                for node in walk_scope(func):
                    found = _span_call(node)
                    if found is None:
                        continue
                    method, name = found
                    if name is None:
                        continue
                    if method == "begin":
                        begins.append((module, node, name))
                    elif method in _CLOSERS:
                        closed_names.add(name)
        # OBS602: a begun span name with no closer anywhere can never
        # complete — it will sit open until the capture is dropped.
        for module, node, name in begins:
            if name not in closed_names:
                findings.append(
                    emit(
                        module,
                        node,
                        OBS602,
                        f"span {name!r} is begun here but no spans.end/"
                        "spans.discard for it exists anywhere in the tree — "
                        "the interval can never complete",
                    )
                )
        return [f for f in findings if f is not None]

    # ----------------------------------------------------------------- OBS601

    def _check_span_paths(
        self, module: LintedModule, func: ast.AST
    ) -> Iterator[Optional[Finding]]:
        """Intra-function lifecycle: when a function both begins and closes
        a span name, no path from the begin may reach the normal exit
        still holding the span open."""
        begun: dict[str, list[ast.stmt]] = {}
        closed: set[str] = set()
        for node in walk_scope(func):
            if node is func or not isinstance(node, ast.stmt):
                continue
            for method, name in _stmt_span_calls(node):
                if name is None:
                    continue
                if method == "begin":
                    begun.setdefault(name, []).append(node)
                elif method in _CLOSERS:
                    closed.add(name)
        paired = {name: stmts for name, stmts in begun.items() if name in closed}
        if not paired:
            return
        cfg = build_cfg(func)

        def transfer(block: Block, in_state) -> tuple:
            facts = set(in_state)
            for stmt in block.stmts:
                for method, name in _stmt_span_calls(stmt):
                    if name is None or name not in paired:
                        continue
                    if method == "begin":
                        facts.add(name)
                    elif method in _CLOSERS:
                        facts.discard(name)
            return frozenset(facts), {}

        in_states = solve_forward(cfg, frozenset(), transfer)
        leaked = in_states.get(cfg.exit.bid, frozenset())
        for name in sorted(leaked):
            for stmt in paired[name]:
                yield emit(
                    module,
                    stmt,
                    OBS601,
                    f"span {name!r} begun here can reach the function's "
                    "normal exit without spans.end/spans.discard — close it "
                    "on every non-exception path",
                )

    # ----------------------------------------------------------------- OBS603

    def _check_obs_guard(
        self, module: LintedModule, func: ast.AST
    ) -> Iterator[Optional[Finding]]:
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        uses = self._collect_obs_uses(func)
        if not uses:
            return
        cfg = build_cfg(func)
        # Parameters named obs are contract-non-None (collect_metrics(obs)).
        entry = frozenset(
            (arg.arg,)
            for arg in [*func.args.args, *func.args.kwonlyargs, *func.args.posonlyargs]
            if arg.arg == "obs" or arg.arg.endswith("_obs")
        )

        def transfer(block: Block, in_state) -> tuple:
            facts = set(in_state)
            self._obs_transfer(block, facts, emit_to=None, module=module)
            default = frozenset(facts)
            by_kind: dict[str, frozenset] = {}
            if block.test is not None:
                true_facts, false_facts = self._guard_facts(block.test)
                if true_facts:
                    by_kind["true"] = frozenset(facts | true_facts)
                if false_facts:
                    by_kind["false"] = frozenset(facts | false_facts)
            return default, by_kind

        in_states = solve_forward(cfg, entry, transfer, must=True)
        out: list[Optional[Finding]] = []
        for block in cfg.blocks:
            state = in_states.get(block.bid)
            if state is None:
                continue
            facts = set(state)
            self._obs_transfer(block, facts, emit_to=out, module=module)
        yield from out

    def _obs_transfer(
        self,
        block: Block,
        facts: set,
        emit_to: Optional[list],
        module: LintedModule,
    ) -> None:
        """Straight-line obs-discipline automaton over one block (in place).

        Facts are attribute chains (tuples) proven non-None.  Unproven
        dereferences are reported when ``emit_to`` is given.
        """
        for stmt in block.stmts:
            if isinstance(stmt, ast.Assert):
                true_facts, _ = self._guard_facts(stmt.test)
                facts |= true_facts
                continue
            self._report_unguarded(stmt, facts, emit_to, module)
            self._apply_assignment(stmt, facts)
        if block.test is not None:
            self._report_unguarded(block.test, facts, emit_to, module)

    def _report_unguarded(
        self,
        node: ast.AST,
        facts: set,
        emit_to: Optional[list],
        module: LintedModule,
    ) -> None:
        if emit_to is None:
            return
        for use_node, key in self._obs_uses_in(node):
            if key not in facts:
                emit_to.append(
                    emit(
                        module,
                        use_node,
                        OBS603,
                        f"{'.'.join(key)} is dereferenced here without the "
                        "is-not-None guard; on an uninstrumented run obs is "
                        "None and this crashes — wrap the touch in "
                        f"`if {'.'.join(key)} is not None:`",
                    )
                )
                # One report per key per block run: treat as proven after.
                facts.add(key)

    def _apply_assignment(self, stmt: ast.stmt, facts: set) -> None:
        """Track provenness through assignments: construction proves the
        target; copying a proven obs expression preserves the proof; any
        other write invalidates it."""
        if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            return
        value = stmt.value
        if value is None:
            return
        targets = (
            stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        )
        value_key = self._obs_key(value)
        proven = (
            isinstance(value, ast.Call)
            or (value_key is not None and value_key in facts)
        )
        for target in targets:
            key = self._obs_key(target)
            if key is None:
                continue
            if proven:
                facts.add(key)
            else:
                facts.discard(key)

    # -- use/key extraction ------------------------------------------------

    def _collect_obs_uses(self, func: ast.AST) -> list[ast.AST]:
        return [node for node, _ in self._obs_uses_in_scope(func)]

    def _obs_uses_in_scope(
        self, func: ast.AST
    ) -> list[tuple[ast.AST, tuple[str, ...]]]:
        uses = []
        for node in walk_scope(func):
            uses.extend(self._obs_uses_in(node, walk=False))
        return uses

    def _obs_uses_in(
        self, node: ast.AST, walk: bool = True
    ) -> list[tuple[ast.AST, tuple[str, ...]]]:
        """Attribute accesses *on* an obs expression inside ``node``: the
        ``.spans`` of ``obs.spans.begin``, the ``.count_send`` of
        ``self.obs.count_send`` — each returned with the obs key it
        dereferences."""
        found: list[tuple[ast.AST, tuple[str, ...]]] = []
        nodes = ast.walk(node) if walk else [node]
        for sub in nodes:
            if not isinstance(sub, ast.Attribute):
                continue
            key = self._obs_key(sub.value)
            if key is not None:
                found.append((sub, key))
        return found

    @staticmethod
    def _obs_key(node: ast.expr) -> Optional[tuple[str, ...]]:
        """Canonical key for an expression that may hold an Obs: any
        attribute chain ending in ``obs`` (``self.obs``,
        ``self.network.obs``) or a bare ``obs``-named local."""
        chain = attribute_chain(node)
        if chain and (chain[-1] == "obs" or chain[-1].endswith("_obs")):
            return chain
        return None

    def _guard_facts(
        self, test: ast.expr
    ) -> tuple[set[tuple[str, ...]], set[tuple[str, ...]]]:
        """Obs keys proven non-None on the true / false edge of a test.

        Handles ``X is not None`` (true edge), ``X is None`` (false edge),
        ``and`` chains (conjunct proofs hold on the true edge), ``or``
        chains of ``is None`` (all-false on the false edge), and bare
        truthiness ``if X:`` / ``if not X:``.
        """
        true_facts: set[tuple[str, ...]] = set()
        false_facts: set[tuple[str, ...]] = set()
        key = self._obs_key(test)
        if key is not None:  # if obs: — truthy implies non-None
            true_facts.add(key)
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            inner = self._obs_key(test.operand)
            if inner is not None:  # if not obs: — false edge means truthy
                false_facts.add(inner)
            inner_true, inner_false = self._guard_facts(test.operand)
            true_facts |= inner_false
            false_facts |= inner_true
        elif isinstance(test, ast.Compare) and len(test.ops) == 1:
            left, op, right = test.left, test.ops[0], test.comparators[0]
            operand = None
            if isinstance(right, ast.Constant) and right.value is None:
                operand = left
            elif isinstance(left, ast.Constant) and left.value is None:
                operand = right
            if operand is not None:
                key = self._obs_key(operand)
                if key is not None:
                    if isinstance(op, (ast.IsNot, ast.NotEq)):
                        true_facts.add(key)
                    elif isinstance(op, (ast.Is, ast.Eq)):
                        false_facts.add(key)
        elif isinstance(test, ast.BoolOp):
            parts = [self._guard_facts(value) for value in test.values]
            if isinstance(test.op, ast.And):
                # All conjuncts true on the true edge.
                for part_true, _ in parts:
                    true_facts |= part_true
            else:
                # All disjuncts false on the false edge.
                for _, part_false in parts:
                    false_facts |= part_false
        return true_facts, false_facts
