"""Shared infrastructure for the lint passes.

:class:`ModuleIndex` walks a package root once, parsing every module into an
AST and its allowlist, so the three passes share one parse.  The module also
hosts the small static-inference helpers the passes lean on:

* :func:`attribute_chain` — flatten ``a.b.c`` into ``("a", "b", "c")``;
* :class:`SetTypeInferencer` — decide whether an expression is statically
  known to evaluate to a ``set``/``frozenset`` (literals, comprehensions,
  ``set()`` calls, annotated attributes/parameters, local aliases, and
  same-class helper methods that return sets).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional, Protocol

from repro.lint.findings import Allowlist, Finding

__all__ = [
    "LintedModule",
    "ModuleIndex",
    "LintPass",
    "RULES",
    "rule",
    "attribute_chain",
    "SetTypeInferencer",
    "iter_functions",
    "walk_scope",
]


#: rule id -> one-line description, populated by :func:`rule` at import time.
RULES: dict[str, str] = {}


def rule(rule_id: str, description: str) -> str:
    """Register a rule id with its description; returns the id."""
    RULES[rule_id] = description
    return rule_id


@dataclass
class LintedModule:
    """One parsed source module."""

    path: Path
    #: path relative to the scanned root (stable across machines, used in
    #: findings and reports).
    rel_path: str
    source: str
    tree: ast.Module
    allowlist: Allowlist

    @classmethod
    def parse(cls, path: Path, rel_path: str) -> Optional["LintedModule"]:
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError):
            return None
        return cls(
            path=path,
            rel_path=rel_path,
            source=source,
            tree=tree,
            allowlist=Allowlist.from_source(source),
        )


class ModuleIndex:
    """All parsed modules under one package root."""

    def __init__(
        self,
        root: Path,
        modules: list[LintedModule],
        skipped: tuple[str, ...] = (),
    ) -> None:
        self.root = root
        self.modules = modules
        #: files that exist but could not be read or parsed — surfaced so a
        #: broken file cannot silently pass the merge gate.
        self.skipped = skipped
        self._by_rel = {m.rel_path: m for m in modules}

    @classmethod
    def build(cls, root: Path) -> "ModuleIndex":
        root = root.resolve()
        modules: list[LintedModule] = []
        skipped: list[str] = []
        if root.is_file():
            parsed = LintedModule.parse(root, root.name)
            if parsed is not None:
                modules.append(parsed)
            else:
                skipped.append(root.name)
            return cls(root.parent, modules, tuple(skipped))
        for path in sorted(root.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            rel = path.relative_to(root).as_posix()
            parsed = LintedModule.parse(path, rel)
            if parsed is not None:
                modules.append(parsed)
            else:
                skipped.append(rel)
        return cls(root, modules, tuple(skipped))

    def get(self, rel_path: str) -> Optional[LintedModule]:
        return self._by_rel.get(rel_path)

    def under(self, *prefixes: str) -> Iterator[LintedModule]:
        """Modules whose relative path starts with any prefix (all when
        no prefix is given)."""
        for module in self.modules:
            if not prefixes or any(
                module.rel_path == p or module.rel_path.startswith(p.rstrip("/") + "/")
                for p in prefixes
            ):
                yield module


class LintPass(Protocol):
    """One analysis pass over the module index."""

    name: str

    def run(self, index: ModuleIndex) -> list[Finding]:
        ...  # pragma: no cover


def emit(
    module: LintedModule,
    node: ast.AST,
    rule_id: str,
    message: str,
    severity: str = "error",
) -> Optional[Finding]:
    """Build a finding for ``node`` unless its line is allowlisted."""
    line = getattr(node, "lineno", 1)
    col = getattr(node, "col_offset", 0)
    if module.allowlist.permits(line, rule_id):
        return None
    return Finding(
        file=module.rel_path,
        line=line,
        col=col,
        rule=rule_id,
        severity=severity,
        message=message,
    )


def attribute_chain(node: ast.AST) -> tuple[str, ...]:
    """Flatten ``a.b.c`` / ``a.b.c()``-style expressions to name parts.

    Returns ``()`` when the expression is not a pure name/attribute chain
    (e.g. a subscript or call in the middle).
    """
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return tuple(reversed(parts))
    return ()


def _annotation_is_set(annotation: Optional[ast.expr]) -> bool:
    """True when an annotation names ``set``/``frozenset`` (bare or
    subscripted, e.g. ``set[ProcessId]``)."""
    if annotation is None:
        return False
    target = annotation
    if isinstance(target, ast.Subscript):
        target = target.value
    chain = attribute_chain(target)
    return bool(chain) and chain[-1] in ("set", "frozenset", "Set", "FrozenSet", "AbstractSet")


class SetTypeInferencer:
    """Static 'is this expression a set?' oracle for one class or module.

    The inference is deliberately shallow — single-function alias tracking,
    declared attribute annotations, and same-class helper methods whose
    return expression is itself a set — which keeps it fast, predictable,
    and free of false positives from deep dataflow guessing.
    """

    _SET_BUILTINS = ("set", "frozenset")

    def __init__(self, class_node: Optional[ast.ClassDef] = None) -> None:
        #: attributes of ``self`` declared (or initialised) as sets
        self.set_attributes: set[str] = set()
        #: methods of the class whose return value is statically a set
        self.set_returning_methods: set[str] = set()
        if class_node is not None:
            self._scan_class(class_node)

    # ------------------------------------------------------------ class scan

    def _scan_class(self, class_node: ast.ClassDef) -> None:
        for stmt in class_node.body:
            # Dataclass-style field declarations: ``faulty: set[ProcessId]``.
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                if _annotation_is_set(stmt.annotation):
                    self.set_attributes.add(stmt.target.id)
        for method in (
            n for n in class_node.body if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ):
            for stmt in ast.walk(method):
                # ``self.x: set[...] = ...`` annotated attribute assignment.
                if (
                    isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Attribute)
                    and isinstance(stmt.target.value, ast.Name)
                    and stmt.target.value.id == "self"
                    and _annotation_is_set(stmt.annotation)
                ):
                    self.set_attributes.add(stmt.target.attr)
                # Un-annotated ``self.x = set()`` / set literal in __init__.
                if isinstance(stmt, ast.Assign) and self._is_set_literal(stmt.value, {}):
                    for target in stmt.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            self.set_attributes.add(target.attr)
        # Second sweep: methods whose every return is a set expression.
        for method in (
            n for n in class_node.body if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ):
            returns = [
                s for s in ast.walk(method) if isinstance(s, ast.Return) and s.value is not None
            ]
            if returns and all(self.is_set_expr(r.value, {}) for r in returns):
                self.set_returning_methods.add(method.name)

    # ----------------------------------------------------------- expressions

    def _is_set_literal(self, node: Optional[ast.expr], aliases: dict[str, bool]) -> bool:
        if node is None:
            return False
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            chain = attribute_chain(node.func)
            if chain and chain[-1] in self._SET_BUILTINS:
                return True
        return False

    def is_set_expr(self, node: Optional[ast.expr], aliases: dict[str, bool]) -> bool:
        """Is ``node`` statically known to produce a set/frozenset?"""
        if node is None:
            return False
        if self._is_set_literal(node, aliases):
            return True
        # Set algebra preserves set-ness.
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_set_expr(node.left, aliases) or self.is_set_expr(
                node.right, aliases
            )
        if isinstance(node, ast.Name):
            return aliases.get(node.id, False)
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                return node.attr in self.set_attributes
            return False
        if isinstance(node, ast.Call):
            chain = attribute_chain(node.func)
            # ``self.helper()`` where helper returns a set.
            if (
                len(chain) == 2
                and chain[0] == "self"
                and chain[1] in self.set_returning_methods
            ):
                return True
            # ``x.union(...)`` etc. on a known set.
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr
                in ("union", "intersection", "difference", "symmetric_difference", "copy")
                and self.is_set_expr(node.func.value, aliases)
            ):
                return True
        return False

    def local_aliases(self, func: ast.AST) -> dict[str, bool]:
        """Names bound to set expressions within one function body.

        Parameters annotated as sets count; so do simple assignments of a
        set expression to a bare name.  A later non-set rebind clears the
        alias (last assignment wins, in source order).
        """
        aliases: dict[str, bool] = {}
        if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = list(func.args.posonlyargs) + list(func.args.args) + list(
                func.args.kwonlyargs
            )
            for arg in args:
                if _annotation_is_set(arg.annotation):
                    aliases[arg.arg] = True
        for stmt in ast.walk(func):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    aliases[target.id] = self.is_set_expr(stmt.value, aliases)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                if _annotation_is_set(stmt.annotation):
                    aliases[stmt.target.id] = True
        return aliases


def iter_functions(tree: ast.Module) -> Iterator[tuple[Optional[ast.ClassDef], ast.AST]]:
    """Yield ``(enclosing_class_or_None, scope_node)`` pairs.

    The module itself is yielded first as a pseudo-scope for top-level
    code; every (possibly nested) function follows, tagged with its nearest
    enclosing class so ``self``-attribute inference works inside methods
    and their nested helpers.  Pair with :func:`walk_scope`, which prunes
    nested definitions, so every statement belongs to exactly one scope.
    """
    yield None, tree

    def visit(
        node: ast.AST, cls: Optional[ast.ClassDef]
    ) -> Iterator[tuple[Optional[ast.ClassDef], ast.AST]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from visit(child, child)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield cls, child
                yield from visit(child, cls)
            else:
                yield from visit(child, cls)

    yield from visit(tree, None)


def walk_scope(root: ast.AST) -> Iterator[ast.AST]:
    """Walk ``root`` without descending into nested function/class
    definitions — the statements of this one scope only."""
    stack: list[ast.AST] = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            stack.append(child)
