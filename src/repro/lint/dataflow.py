"""Worklist dataflow over the lint CFGs.

Two layers:

* :func:`solve_forward` — the generic engine.  A client supplies the edge
  lattice (any hashable facts set), the entry state, the merge (may- vs
  must-analysis) and a per-block transfer function that may be
  edge-sensitive (conditional facts like "the true edge of ``x is not
  None`` proves x non-null).  The engine iterates block states to a
  fixpoint with a FIFO worklist; lattices here are finite (sets over
  program entities), so termination is by monotonicity.
* Ready-made analyses the rule families share:
  :class:`ReachingDefinitions` (which assignments of each local may reach
  a block) and :func:`crossed_await_paths` ("is there a path from A to B
  crossing an await?") — the core fact behind the ASY4xx atomicity rules.

States are frozensets of opaque facts; transfer functions return the
out-state plus optional per-edge-kind overrides.
"""

from __future__ import annotations

import ast
from collections import deque
from typing import Callable, Hashable, Optional

from repro.lint.cfg import CFG, Block

__all__ = [
    "solve_forward",
    "merge_union",
    "merge_intersection",
    "ReachingDefinitions",
    "crossed_await_paths",
    "reaches",
]

State = frozenset
#: transfer(block, in_state) -> (default_out, {edge_kind: out_for_that_kind})
Transfer = Callable[[Block, State], tuple[State, dict[str, State]]]


def merge_union(states: list[State]) -> State:
    """May-analysis merge: a fact holds if it holds on any predecessor."""
    out: set[Hashable] = set()
    for state in states:
        out |= state
    return frozenset(out)


def merge_intersection(states: list[State]) -> Optional[State]:
    """Must-analysis merge: a fact holds only if it holds on all
    predecessors.  ``None`` (no predecessor information yet) is the top
    element and is skipped."""
    known = [s for s in states if s is not None]
    if not known:
        return None
    out = set(known[0])
    for state in known[1:]:
        out &= state
    return frozenset(out)


def solve_forward(
    cfg: CFG,
    entry_state: State,
    transfer: Transfer,
    must: bool = False,
) -> dict[int, State]:
    """Iterate ``transfer`` over ``cfg`` to a fixpoint; returns the IN state
    of every reachable block.

    ``must=False`` runs a may-analysis (union merge, unreachable-so-far
    predecessors contribute nothing); ``must=True`` runs a must-analysis
    (intersection merge, not-yet-visited predecessors are top).
    """
    in_states: dict[int, Optional[State]] = {cfg.entry.bid: entry_state}
    #: OUT state per (block, edge kind); "" is the default for all kinds.
    out_states: dict[int, tuple[State, dict[str, State]]] = {}
    worklist: deque[Block] = deque([cfg.entry])
    enqueued = {cfg.entry.bid}

    while worklist:
        block = worklist.popleft()
        enqueued.discard(block.bid)
        in_state = in_states.get(block.bid)
        if in_state is None:
            in_state = frozenset()
        default_out, by_kind = transfer(block, in_state)
        previous = out_states.get(block.bid)
        if previous == (default_out, by_kind):
            continue
        out_states[block.bid] = (default_out, by_kind)
        for succ, kind in block.succs:
            contribution = by_kind.get(kind, default_out)
            incoming: list[Optional[State]] = []
            for pred, pkind in succ.preds:
                if pred.bid == block.bid and pkind == kind:
                    incoming.append(contribution)
                    continue
                pred_out = out_states.get(pred.bid)
                if pred_out is None:
                    incoming.append(None)
                else:
                    incoming.append(pred_out[1].get(pkind, pred_out[0]))
            if must:
                merged = merge_intersection(incoming)  # type: ignore[arg-type]
            else:
                merged = merge_union([s for s in incoming if s is not None])
            if merged is None:
                continue
            if in_states.get(succ.bid) != merged:
                in_states[succ.bid] = merged
                if succ.bid not in enqueued:
                    worklist.append(succ)
                    enqueued.add(succ.bid)
    return {
        bid: state for bid, state in in_states.items() if state is not None
    }


# --------------------------------------------------------------------------
# reaching definitions
# --------------------------------------------------------------------------


def _assigned_names(stmt: ast.stmt) -> set[str]:
    """Local names (re)bound by one statement (targets of assignments,
    aug-assignments, for-targets, with-as bindings)."""
    names: set[str] = set()

    def collect(target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                collect(elt)
        elif isinstance(target, ast.Starred):
            collect(target.value)

    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            collect(target)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        collect(stmt.target)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        collect(stmt.target)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                collect(item.optional_vars)
    elif isinstance(stmt, ast.NamedExpr):  # pragma: no cover - stmt-level :=
        collect(stmt.target)
    return names


class ReachingDefinitions:
    """Which definition sites of each local name may reach each block.

    Facts are ``(name, def_block_id, stmt_index)`` triples; the analysis is
    a classic gen/kill may-analysis.  Used by rules that need "was this
    alias rebound between its definition and this use?".
    """

    def __init__(self, cfg: CFG) -> None:
        self.cfg = cfg
        self.in_states = solve_forward(cfg, frozenset(), self._transfer)

    def _transfer(self, block: Block, in_state: State) -> tuple[State, dict[str, State]]:
        facts = set(in_state)
        for index, stmt in enumerate(block.stmts):
            assigned = _assigned_names(stmt)
            if not assigned:
                continue
            facts = {f for f in facts if f[0] not in assigned}
            for name in assigned:
                facts.add((name, block.bid, index))
        return frozenset(facts), {}

    def definitions_reaching(self, block: Block, name: str) -> set[tuple[str, int, int]]:
        """Definition sites of ``name`` that may reach the entry of ``block``."""
        return {
            f for f in self.in_states.get(block.bid, frozenset()) if f[0] == name
        }


# --------------------------------------------------------------------------
# await-crossing reachability
# --------------------------------------------------------------------------


def crossed_await_paths(cfg: CFG, sources: set[int]) -> dict[int, bool]:
    """For every block: is it reachable from ``sources`` along a path that
    crosses an await *after* leaving the source?

    The returned map holds an entry for each block reachable from the
    sources at all; the value says whether some such path suspends on the
    way.  Sources themselves count their own await (a block that both
    checks and awaits invalidates its own check).
    """
    AWAITED = "awaited"

    def transfer(block: Block, in_state: State) -> tuple[State, dict[str, State]]:
        facts = set(in_state)
        if block.bid in sources:
            facts.add("reached")
        if "reached" in facts and block.has_await():
            facts.add(AWAITED)
        return frozenset(facts), {}

    in_states = solve_forward(cfg, frozenset(), transfer)
    result: dict[int, bool] = {}
    for block in cfg.blocks:
        state = in_states.get(block.bid)
        if state is None:
            if block.bid in sources:  # source in dead code
                result[block.bid] = block.has_await()
            continue
        # Evaluate at block *exit*: an await inside the block itself counts
        # for the block's own statements (block granularity: a write that
        # precedes its block's await is over-approximated as crossed).
        out, _ = transfer(block, state)
        if "reached" in out:
            result[block.bid] = AWAITED in out
    return result


def reaches(cfg: CFG, src: Block, dst: Block) -> bool:
    """Plain reachability src -> dst (following all edge kinds)."""
    seen: set[int] = set()
    stack = [src]
    while stack:
        block = stack.pop()
        if block.bid in seen:
            continue
        seen.add(block.bid)
        if block is dst:
            return True
        for succ, _ in block.succs:
            stack.append(succ)
    return False
