"""SCH2xx — message-schema cross-checker.

The wire protocol is defined three times over: the dataclasses in
``core/messages.py``, the explicit per-type encoder/decoder tables in
``codec.py``, and the ``isinstance`` dispatch in the protocol handlers
(``core/member.py``, ``core/service.py``, ``baselines/*``, extensions,
detectors).  Drift between the three is exactly the "implementation drift"
class of membership bug; this pass cross-checks them statically:

* **SCH201** — a wire message type in ``core/messages.py`` has no entry in
  the codec's ``_ENCODERS`` table (it cannot leave the simulator).
* **SCH202** — the codec's encoder and decoder tables disagree (a type
  encodes but cannot decode, or vice versa — round-trip broken).
* **SCH203** — a wire message type has no ``isinstance`` handler anywhere
  in the tree (it can be sent but never acted on).
* **SCH204** — a ``send``/``broadcast`` call site constructs a payload type
  that is neither codec-registered nor handled by any ``isinstance``
  dispatch: an unregistered message type.

"Wire message" means a dataclass in ``core/messages.py`` that is not a
*component* type — a class referenced inside another message's field
annotations (``Op``, ``Plan``) travels only inside frames, never as one.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.lint.base import (
    LintedModule,
    ModuleIndex,
    attribute_chain,
    emit,
    rule,
)
from repro.lint.findings import Finding

__all__ = ["SchemaPass"]

SCH201 = rule("SCH201", "wire message type missing from the codec encoder table")
SCH202 = rule("SCH202", "codec encoder/decoder tables disagree (round-trip broken)")
SCH203 = rule("SCH203", "wire message type has no isinstance handler")
SCH204 = rule("SCH204", "send/broadcast of an unregistered payload type")

_MESSAGES_PATH = "core/messages.py"
_CODEC_PATH = "codec.py"
_SEND_NAMES = {"send", "broadcast"}


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        chain = attribute_chain(target)
        if chain and chain[-1] == "dataclass":
            return True
    return False


class SchemaPass:
    """AST pass implementing rules SCH201–SCH204."""

    name = "schema"

    def run(self, index: ModuleIndex) -> list[Finding]:
        messages_mod = index.get(_MESSAGES_PATH)
        codec_mod = index.get(_CODEC_PATH)
        if messages_mod is None:
            return []  # nothing to cross-check (fixture tree without a protocol)

        wire_messages = self._wire_messages(messages_mod)
        handled = self._handled_type_names(index)
        findings: list[Finding] = []

        encoder_names: set[str] = set()
        decoder_names: set[str] = set()
        if codec_mod is not None:
            encoder_names, encoders_node = self._dict_key_names(codec_mod, "_ENCODERS")
            decoder_names, decoders_node = self._dict_key_strings(codec_mod, "_DECODERS")
            # SCH201: every wire message must encode.
            for name, node in sorted(wire_messages.items()):
                if name not in encoder_names:
                    finding = emit(
                        messages_mod,
                        node,
                        SCH201,
                        f"message type {name} has no encoder in "
                        f"{_CODEC_PATH}::_ENCODERS — it cannot cross a real "
                        "transport",
                    )
                    if finding:
                        findings.append(finding)
            # SCH202: encoder and decoder tables must agree exactly.
            for name in sorted(encoder_names - decoder_names):
                finding = emit(
                    codec_mod,
                    encoders_node or codec_mod.tree,
                    SCH202,
                    f"type {name} has an encoder but no decoder — frames it "
                    "produces cannot be read back",
                )
                if finding:
                    findings.append(finding)
            for name in sorted(decoder_names - encoder_names):
                finding = emit(
                    codec_mod,
                    decoders_node or codec_mod.tree,
                    SCH202,
                    f"type {name} has a decoder but no encoder — it can "
                    "never be produced by this codec",
                )
                if finding:
                    findings.append(finding)

        # SCH203: every wire message needs a handler somewhere.
        for name, node in sorted(wire_messages.items()):
            if name not in handled:
                finding = emit(
                    messages_mod,
                    node,
                    SCH203,
                    f"message type {name} is never dispatched via "
                    "isinstance() in any handler — it would be sent and "
                    "silently ignored",
                )
                if finding:
                    findings.append(finding)

        # SCH204: call-site check on constructed payloads.
        registered = set(wire_messages) | encoder_names | decoder_names | handled
        for module in index.under():
            findings.extend(
                self._check_send_sites(module, registered)
            )
        return findings

    # ------------------------------------------------------------- registries

    def _wire_messages(self, module: LintedModule) -> dict[str, ast.ClassDef]:
        """Dataclasses in the messages module, minus component types."""
        classes = {
            node.name: node
            for node in module.tree.body
            if isinstance(node, ast.ClassDef) and _is_dataclass(node)
        }
        referenced: set[str] = set()
        for node in classes.values():
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and stmt.annotation is not None:
                    for sub in ast.walk(stmt.annotation):
                        if isinstance(sub, ast.Name) and sub.id in classes:
                            referenced.add(sub.id)
                        elif isinstance(sub, ast.Constant) and isinstance(
                            sub.value, str
                        ):
                            # String annotations: a crude but adequate scan.
                            for name in classes:
                                if name in sub.value:
                                    referenced.add(name)
        return {
            name: node for name, node in classes.items() if name not in referenced
        }

    @staticmethod
    def _handled_type_names(index: ModuleIndex) -> set[str]:
        """Every class name appearing as an isinstance() type argument."""
        handled: set[str] = set()

        def collect(type_arg: ast.expr) -> None:
            if isinstance(type_arg, ast.Tuple):
                for elt in type_arg.elts:
                    collect(elt)
                return
            chain = attribute_chain(type_arg)
            if chain:
                handled.add(chain[-1])

        for module in index.under():
            for node in ast.walk(module.tree):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "isinstance"
                    and len(node.args) == 2
                ):
                    collect(node.args[1])
                # Tuples of types assigned to *_TYPES constants participate
                # in isinstance dispatch via is_reconfiguration_message etc.
                if isinstance(node, ast.Assign) and isinstance(node.value, ast.Tuple):
                    targets = [
                        t.id for t in node.targets if isinstance(t, ast.Name)
                    ]
                    if any(t.endswith("_TYPES") for t in targets):
                        collect(node.value)
        return handled

    @staticmethod
    def _find_assign(module: LintedModule, name: str) -> Optional[ast.Assign]:
        for node in module.tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == name:
                        return node
            elif isinstance(node, ast.AnnAssign):
                if (
                    isinstance(node.target, ast.Name)
                    and node.target.id == name
                    and node.value is not None
                ):
                    synthetic = ast.Assign(targets=[node.target], value=node.value)
                    ast.copy_location(synthetic, node)
                    return synthetic
        return None

    def _dict_key_names(
        self, module: LintedModule, var: str
    ) -> tuple[set[str], Optional[ast.AST]]:
        """Class names used as keys of a ``{Type: ...}`` table."""
        assign = self._find_assign(module, var)
        if assign is None or not isinstance(assign.value, ast.Dict):
            return set(), None
        names: set[str] = set()
        for key in assign.value.keys:
            if key is None:
                continue
            chain = attribute_chain(key)
            if chain:
                names.add(chain[-1])
        return names, assign

    def _dict_key_strings(
        self, module: LintedModule, var: str
    ) -> tuple[set[str], Optional[ast.AST]]:
        """String keys of a ``{"Type": ...}`` table."""
        assign = self._find_assign(module, var)
        if assign is None or not isinstance(assign.value, ast.Dict):
            return set(), None
        names = {
            key.value
            for key in assign.value.keys
            if isinstance(key, ast.Constant) and isinstance(key.value, str)
        }
        return names, assign

    # -------------------------------------------------------------- call sites

    def _check_send_sites(
        self, module: LintedModule, registered: set[str]
    ) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attribute_chain(node.func)
            if not chain or chain[-1] not in _SEND_NAMES:
                continue
            for arg in node.args:
                payload_type = self._constructed_type(arg)
                if payload_type is None:
                    continue
                if payload_type not in registered:
                    finding = emit(
                        module,
                        arg,
                        SCH204,
                        f"payload type {payload_type} is sent here but is "
                        "neither codec-registered nor handled by any "
                        "isinstance dispatch",
                    )
                    if finding:
                        findings.append(finding)
        return findings

    @staticmethod
    def _constructed_type(arg: ast.expr) -> Optional[str]:
        """The class name when ``arg`` looks like ``SomeType(...)``."""
        if not isinstance(arg, ast.Call):
            return None
        chain = attribute_chain(arg.func)
        if not chain:
            return None
        name = chain[-1]
        if name and name[0].isupper():
            return name
        return None
