"""Per-function control-flow graphs for the flow-sensitive lint passes.

The AST-pattern passes (DET/SCH/MUT) see one statement at a time; the
concurrency and span-discipline rules need to reason about *paths* — "does
an ``await`` sit between this check and that write?", "does every normal
exit pass a ``spans.end``?".  :func:`build_cfg` lowers one function (or
module) body into basic blocks:

* a :class:`Block` executes its ``stmts`` linearly, then either falls
  through (``next``), branches on ``test`` (``true``/``false`` edges, used
  by ``if``/``while``/``for``/``match``), or leaves the function
  (``return``/``raise``);
* every function gets three synthetic blocks: ``entry``, ``exit`` (normal
  completion — fall-off and ``return``) and ``raise_exit`` (exceptional
  completion).  Analyses that only care about non-exception paths simply
  ignore ``raise_exit``;
* ``try`` bodies are approximated coarsely: every block of the body gains
  an ``except`` edge to each handler (an exception may occur anywhere) and
  to ``raise_exit`` (no handler may match).  ``finally`` bodies are
  sequenced after both the normal and handled paths;
* ``break``/``continue`` resolve against the innermost enclosing loop;
  statements after a terminator in the same suite become an unreachable
  block with no predecessors — exactly how a path-sensitive analysis should
  treat dead code;
* nested function/class definitions are opaque single statements — their
  bodies get their own CFGs via :func:`iter_cfgs`.

Await-points are first-class: :meth:`Block.has_await` and
:func:`stmt_contains_await` let dataflow clients model the "handler
atomicity ends here" semantics of the asyncio runtime without re-walking
the AST.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional

__all__ = [
    "Block",
    "CFG",
    "build_cfg",
    "iter_cfgs",
    "stmt_contains_await",
    "expr_contains_await",
]


def _contains_await(node: ast.AST) -> bool:
    """True when ``node`` contains an await/async-for/async-with suspension
    point, not counting nested function bodies."""
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        # Executing a def/lambda statement only binds the function — the
        # suspension points belong to the nested body, not this scope.
        return False
    stack: list[ast.AST] = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, (ast.Await, ast.AsyncFor, ast.AsyncWith)):
            return True
        for child in ast.iter_child_nodes(current):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            stack.append(child)
    return False


def stmt_contains_await(stmt: ast.stmt) -> bool:
    """Does executing this one statement (not nested defs) cross an await?"""
    return _contains_await(stmt)


def expr_contains_await(expr: ast.expr) -> bool:
    """Does evaluating this expression cross an await?"""
    return _contains_await(expr)


@dataclass
class Block:
    """One basic block: straight-line statements plus an optional branch test."""

    bid: int
    #: statements executed unconditionally, in order.
    stmts: list[ast.stmt] = field(default_factory=list)
    #: branch condition evaluated after ``stmts`` (if/while tests, for
    #: iterables, match subjects); ``None`` for fall-through blocks.
    test: Optional[ast.expr] = None
    #: successor edges as ``(block, kind)``; kinds: ``next``, ``true``,
    #: ``false``, ``except``.
    succs: list[tuple["Block", str]] = field(default_factory=list)
    preds: list[tuple["Block", str]] = field(default_factory=list)

    def add_edge(self, dst: "Block", kind: str = "next") -> None:
        if any(b is dst and k == kind for b, k in self.succs):
            return
        self.succs.append((dst, kind))
        dst.preds.append((self, kind))

    def has_await(self) -> bool:
        """True when executing this block crosses a suspension point."""
        if any(stmt_contains_await(s) for s in self.stmts):
            return True
        return self.test is not None and expr_contains_await(self.test)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = ",".join(f"{b.bid}:{k}" for b, k in self.succs)
        return f"<Block {self.bid} stmts={len(self.stmts)} -> [{kinds}]>"


@dataclass
class CFG:
    """The control-flow graph of one function (or module) body."""

    #: the function/module node this graph was built from.
    scope: ast.AST
    blocks: list[Block]
    entry: Block
    exit: Block
    raise_exit: Block

    @property
    def is_async(self) -> bool:
        return isinstance(self.scope, ast.AsyncFunctionDef)

    def reachable(self) -> set[int]:
        """Block ids reachable from entry (dead code is excluded)."""
        seen: set[int] = set()
        stack = [self.entry]
        while stack:
            block = stack.pop()
            if block.bid in seen:
                continue
            seen.add(block.bid)
            for succ, _ in block.succs:
                stack.append(succ)
        return seen


class _Builder:
    """Lowers one statement suite into blocks (recursive descent)."""

    def __init__(self, scope: ast.AST) -> None:
        self.scope = scope
        self.blocks: list[Block] = []
        self.exit = self._new()
        self.raise_exit = self._new()
        #: stack of (loop_head, after_loop) for break/continue resolution.
        self._loops: list[tuple[Block, Block]] = []
        #: innermost enclosing try-handler entries (for raise edges).
        self._handlers: list[list[Block]] = []

    def _new(self) -> Block:
        block = Block(bid=len(self.blocks))
        self.blocks.append(block)
        return block

    def build(self, body: list[ast.stmt]) -> CFG:
        entry = self._new()
        end = self._suite(body, entry)
        if end is not None:
            end.add_edge(self.exit)
        return CFG(
            scope=self.scope,
            blocks=self.blocks,
            entry=entry,
            exit=self.exit,
            raise_exit=self.raise_exit,
        )

    # ------------------------------------------------------------- plumbing

    def _raise_targets(self) -> list[Block]:
        """Where control may go when a statement raises: the innermost
        handlers (if any) and the exceptional exit."""
        targets = [self.raise_exit]
        if self._handlers:
            targets = list(self._handlers[-1]) + targets
        return targets

    def _suite(
        self, body: list[ast.stmt], current: Optional[Block]
    ) -> Optional[Block]:
        """Lower a statement suite starting in ``current``.

        Returns the block holding control after the suite, or ``None`` when
        every path left the suite (return/raise/break/continue).
        """
        for stmt in body:
            if current is None:
                # Dead code after a terminator: park it in an unreachable
                # block so its statements still exist in exactly one block.
                current = self._new()
            current = self._statement(stmt, current)
        return current

    def _statement(self, stmt: ast.stmt, current: Block) -> Optional[Block]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, current)
        if isinstance(stmt, (ast.While,)):
            return self._while(stmt, current)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, current)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            # Context managers run their body linearly; the enter/exit
            # expressions live in the same block.
            current.stmts.append(stmt)
            with_block = self._new()
            current.add_edge(with_block)
            return self._suite(stmt.body, with_block)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, current)
        if isinstance(stmt, ast.Return):
            current.stmts.append(stmt)
            current.add_edge(self.exit)
            return None
        if isinstance(stmt, ast.Raise):
            current.stmts.append(stmt)
            for target in self._raise_targets():
                current.add_edge(target, "except")
            return None
        if isinstance(stmt, ast.Break):
            current.stmts.append(stmt)
            if self._loops:
                current.add_edge(self._loops[-1][1])
            return None
        if isinstance(stmt, ast.Continue):
            current.stmts.append(stmt)
            if self._loops:
                current.add_edge(self._loops[-1][0])
            return None
        # Plain statement (including nested defs, which stay opaque).
        current.stmts.append(stmt)
        return current

    # ------------------------------------------------------------- branches

    def _if(self, stmt: ast.If, current: Block) -> Optional[Block]:
        current.test = stmt.test
        after = self._new()
        true_entry = self._new()
        current.add_edge(true_entry, "true")
        true_end = self._suite(stmt.body, true_entry)
        if true_end is not None:
            true_end.add_edge(after)
        if stmt.orelse:
            false_entry = self._new()
            current.add_edge(false_entry, "false")
            false_end = self._suite(stmt.orelse, false_entry)
            if false_end is not None:
                false_end.add_edge(after)
        else:
            current.add_edge(after, "false")
        if not after.preds:
            return None
        return after

    def _while(self, stmt: ast.While, current: Block) -> Optional[Block]:
        head = self._new()
        current.add_edge(head)
        head.test = stmt.test
        after = self._new()
        body_entry = self._new()
        head.add_edge(body_entry, "true")
        is_forever = (
            isinstance(stmt.test, ast.Constant) and bool(stmt.test.value)
        )
        if not is_forever:
            head.add_edge(after, "false")
        self._loops.append((head, after))
        body_end = self._suite(stmt.body, body_entry)
        self._loops.pop()
        if body_end is not None:
            body_end.add_edge(head)
        if stmt.orelse and not is_forever:
            # while/else: the else suite runs on normal loop exhaustion.
            # Coarse approximation: sequence it into the after-block path.
            else_end = self._suite(stmt.orelse, after)
            return else_end
        if not after.preds:
            return None
        return after

    def _for(self, stmt: ast.For | ast.AsyncFor, current: Block) -> Optional[Block]:
        head = self._new()
        current.add_edge(head)
        head.test = stmt.iter
        after = self._new()
        body_entry = self._new()
        head.add_edge(body_entry, "true")
        head.add_edge(after, "false")
        self._loops.append((head, after))
        body_end = self._suite(stmt.body, body_entry)
        self._loops.pop()
        if body_end is not None:
            body_end.add_edge(head)
        if stmt.orelse:
            return self._suite(stmt.orelse, after)
        return after

    def _match(self, stmt: ast.Match, current: Block) -> Optional[Block]:
        current.test = stmt.subject
        after = self._new()
        any_fallthrough = False
        for case in stmt.cases:
            case_entry = self._new()
            current.add_edge(case_entry, "true")
            case_end = self._suite(case.body, case_entry)
            if case_end is not None:
                case_end.add_edge(after)
                any_fallthrough = True
        current.add_edge(after, "false")  # no case matched
        if not any_fallthrough and not after.preds:
            return None
        return after

    def _try(self, stmt: ast.Try, current: Block) -> Optional[Block]:
        body_entry = self._new()
        current.add_edge(body_entry)
        handler_entries = [self._new() for _ in stmt.handlers]

        self._handlers.append(handler_entries)
        body_end = self._suite(stmt.body, body_entry)
        self._handlers.pop()

        # An exception may surface at any point of the body: every body
        # block gains edges to each handler and to the exceptional exit.
        body_ids = self._collect_region(body_entry, stop={b.bid for b in handler_entries})
        for block in self.blocks:
            if block.bid in body_ids:
                for handler_entry in handler_entries:
                    block.add_edge(handler_entry, "except")
                if not _catches_everything(stmt):
                    block.add_edge(self.raise_exit, "except")

        after = self._new()
        handler_ends: list[Optional[Block]] = []
        for handler, handler_entry in zip(stmt.handlers, handler_entries):
            handler_end = self._suite(handler.body, handler_entry)
            handler_ends.append(handler_end)

        if stmt.orelse and body_end is not None:
            body_end = self._suite(stmt.orelse, body_end)

        if stmt.finalbody:
            final_entry = self._new()
            if body_end is not None:
                body_end.add_edge(final_entry)
            for handler_end in handler_ends:
                if handler_end is not None:
                    handler_end.add_edge(final_entry)
            # The finally body also runs on the exceptional path; keeping a
            # single copy sequenced before ``after`` is a sound, simple
            # approximation for the path properties the passes check.
            final_end = self._suite(stmt.finalbody, final_entry)
            if final_end is not None:
                final_end.add_edge(after)
        else:
            if body_end is not None:
                body_end.add_edge(after)
            for handler_end in handler_ends:
                if handler_end is not None:
                    handler_end.add_edge(after)
        if not after.preds:
            return None
        return after

    def _collect_region(self, entry: Block, stop: set[int]) -> set[int]:
        """Blocks reachable from ``entry`` without passing ``stop`` blocks —
        the body region of a try statement (handlers excluded)."""
        seen: set[int] = set()
        stack = [entry]
        while stack:
            block = stack.pop()
            if block.bid in seen or block.bid in stop:
                continue
            if block is self.exit or block is self.raise_exit:
                continue
            seen.add(block.bid)
            for succ, kind in block.succs:
                if kind != "except":
                    stack.append(succ)
        return seen


def _catches_everything(stmt: ast.Try) -> bool:
    """True when a bare ``except:`` / ``except BaseException`` is present."""
    for handler in stmt.handlers:
        if handler.type is None:
            return True
        if isinstance(handler.type, ast.Name) and handler.type.id == "BaseException":
            return True
    return False


def build_cfg(scope: ast.AST) -> CFG:
    """Build the CFG for one function/module scope.

    ``scope`` is a ``FunctionDef``, ``AsyncFunctionDef``, or ``Module``;
    nested definitions inside it are opaque statements.
    """
    body = getattr(scope, "body", None)
    if not isinstance(body, list):
        raise TypeError(f"cannot build a CFG for {type(scope).__name__}")
    return _Builder(scope).build(body)


def iter_cfgs(tree: ast.Module) -> Iterator[tuple[Optional[ast.ClassDef], CFG]]:
    """CFGs for every function in a module, tagged with the enclosing class.

    The module top level is not yielded — flow-sensitive rules target
    function bodies; module-level code is the AST passes' domain.
    """
    from repro.lint.base import iter_functions

    for class_node, func in iter_functions(tree):
        if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield class_node, build_cfg(func)
