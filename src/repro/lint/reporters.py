"""Finding reporters: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json
from collections import Counter
from typing import Sequence

from repro.lint.findings import Finding

__all__ = ["render_text", "render_json"]

#: Bump when the JSON report shape changes incompatibly.
REPORT_VERSION = 1


def render_text(findings: Sequence[Finding], files_scanned: int = 0) -> str:
    """GCC-style one-line-per-finding rendering plus a summary footer."""
    lines = [
        f"{f.file}:{f.line}:{f.col + 1}: {f.severity} {f.rule}: {f.message}"
        for f in sorted(findings, key=Finding.sort_key)
    ]
    by_rule = Counter(f.rule for f in findings)
    if findings:
        summary = ", ".join(f"{rule} x{n}" for rule, n in sorted(by_rule.items()))
        lines.append("")
        lines.append(
            f"{len(findings)} finding(s) in {files_scanned} file(s) scanned "
            f"({summary})"
        )
    else:
        lines.append(f"clean: 0 findings in {files_scanned} file(s) scanned")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], files_scanned: int = 0) -> str:
    report = {
        "version": REPORT_VERSION,
        "files_scanned": files_scanned,
        "counts": dict(
            sorted(Counter(f.rule for f in findings).items())
        ),
        "findings": [
            f.to_dict() for f in sorted(findings, key=Finding.sort_key)
        ],
    }
    return json.dumps(report, indent=2)
