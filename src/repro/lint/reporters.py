"""Finding reporters and baseline suppression.

Three renderings of the same findings list: human-readable text, the
repo's own JSON report, and SARIF 2.1.0 (the interchange format CI
annotation tooling consumes).  A *baseline* is a suppression list of
accepted findings — run ``repro lint --format json > baseline.json`` to
accept the current state, then ``--baseline baseline.json`` reports only
findings not in it.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Optional, Sequence

from repro.lint.base import RULES
from repro.lint.findings import Finding

__all__ = [
    "render_text",
    "render_json",
    "render_sarif",
    "load_baseline",
    "apply_baseline",
]

#: Bump when the JSON report shape changes incompatibly.
REPORT_VERSION = 1

#: SARIF spec pinned by ``render_sarif``.
SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def render_text(findings: Sequence[Finding], files_scanned: int = 0) -> str:
    """GCC-style one-line-per-finding rendering plus a summary footer."""
    lines = [
        f"{f.file}:{f.line}:{f.col + 1}: {f.severity} {f.rule}: {f.message}"
        for f in sorted(findings, key=Finding.sort_key)
    ]
    by_rule = Counter(f.rule for f in findings)
    if findings:
        summary = ", ".join(f"{rule} x{n}" for rule, n in sorted(by_rule.items()))
        lines.append("")
        lines.append(
            f"{len(findings)} finding(s) in {files_scanned} file(s) scanned "
            f"({summary})"
        )
    else:
        lines.append(f"clean: 0 findings in {files_scanned} file(s) scanned")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], files_scanned: int = 0) -> str:
    report = {
        "version": REPORT_VERSION,
        "files_scanned": files_scanned,
        "counts": dict(
            sorted(Counter(f.rule for f in findings).items())
        ),
        "findings": [
            f.to_dict() for f in sorted(findings, key=Finding.sort_key)
        ],
    }
    return json.dumps(report, indent=2)


def render_sarif(findings: Sequence[Finding], files_scanned: int = 0) -> str:
    """SARIF 2.1.0 report — what CI uploads so code hosts can annotate
    the diff with findings in place."""
    ordered = sorted(findings, key=Finding.sort_key)
    used_rules = sorted({f.rule for f in ordered})
    driver = {
        "name": "repro.lint",
        "informationUri": "docs/LINTING.md",
        "rules": [
            {
                "id": rule_id,
                "shortDescription": {"text": RULES.get(rule_id, rule_id)},
            }
            for rule_id in used_rules
        ],
    }
    rule_index = {rule_id: i for i, rule_id in enumerate(used_rules)}
    results = [
        {
            "ruleId": f.rule,
            "ruleIndex": rule_index[f.rule],
            "level": "error" if f.severity == "error" else "warning",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": f.file},
                        "region": {
                            "startLine": f.line,
                            "startColumn": f.col + 1,
                        },
                    }
                }
            ],
        }
        for f in ordered
    ]
    report = {
        "$schema": _SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {"driver": driver},
                "results": results,
                "properties": {"filesScanned": files_scanned},
            }
        ],
    }
    return json.dumps(report, indent=2)


# ---------------------------------------------------------------------------
# baseline suppression
# ---------------------------------------------------------------------------


def load_baseline(path: Path | str) -> list[tuple[str, str, Optional[int]]]:
    """Parse a suppression list into ``(file, rule, line-or-None)`` entries.

    Accepts either the tool's own JSON report (its ``findings`` array, so
    ``repro lint --format json`` output is directly usable) or a plain
    text file with one ``file:RULE`` / ``file:LINE:RULE`` entry per line
    (``#`` comments allowed).  Entries without a line match the rule
    anywhere in the file; entries with one match that exact line.
    """
    text = Path(path).read_text()
    stripped = text.lstrip()
    entries: list[tuple[str, str, Optional[int]]] = []
    if stripped.startswith(("{", "[")):
        data = json.loads(text)
        records = data.get("findings", data) if isinstance(data, dict) else data
        for record in records:
            entries.append(
                (record["file"], record["rule"], record.get("line"))
            )
        return entries
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.rsplit(":", 2)
        if len(parts) == 3 and parts[1].isdigit():
            entries.append((parts[0], parts[2], int(parts[1])))
        else:
            file_part, _, rule_part = line.rpartition(":")
            if not file_part:
                raise ValueError(f"malformed baseline entry: {raw!r}")
            entries.append((file_part, rule_part, None))
    return entries


def apply_baseline(
    findings: Sequence[Finding],
    baseline: Sequence[tuple[str, str, Optional[int]]],
) -> tuple[list[Finding], int]:
    """Drop findings covered by the baseline; returns (kept, suppressed)."""
    any_line = {(file, rule) for file, rule, line in baseline if line is None}
    exact = {(file, rule, line) for file, rule, line in baseline if line is not None}
    kept: list[Finding] = []
    suppressed = 0
    for f in findings:
        if (f.file, f.rule) in any_line or (f.file, f.rule, f.line) in exact:
            suppressed += 1
        else:
            kept.append(f)
    return kept, suppressed
