"""Finding and rule metadata shared by every lint pass.

A :class:`Finding` is one structured diagnostic — file, line, rule id,
severity, message — the common currency of the three passes and the two
reporters.  Rule ids are grouped into *families* (``DET1xx`` determinism,
``SCH2xx`` schema, ``MUT3xx`` mutation); the allowlist comment syntax
accepts either a concrete rule id or a family alias::

    risky_call()  # lint: allow[DET101]
    risky_call()  # lint: allow[nondeterminism]

An allow comment suppresses findings on its own line, or — when it stands
alone on a line — on the next code line below it.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field


#: Family aliases accepted inside ``# lint: allow[...]`` comments.
FAMILY_ALIASES: dict[str, str] = {
    "nondeterminism": "DET",
    "determinism": "DET",
    "schema": "SCH",
    "mutation": "MUT",
    "async": "ASY",
    "atomicity": "ASY",
    "wire": "WIRE",
    "obs": "OBS",
    "spans": "OBS",
}

_ALLOW_RE = re.compile(r"lint:\s*allow\[([A-Za-z0-9_,\s-]+)\]")


@dataclass(frozen=True, slots=True)
class Finding:
    """One diagnostic emitted by a lint pass."""

    file: str
    line: int
    col: int
    rule: str
    severity: str  # 'error' | 'warning'
    message: str

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.file, self.line, self.col, self.rule)

    def to_dict(self) -> dict[str, object]:
        return {
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }


@dataclass
class Allowlist:
    """Per-file map of line -> allow tokens parsed from comments."""

    #: line number -> set of tokens (rule ids or family prefixes, uppercased)
    by_line: dict[int, set[str]] = field(default_factory=dict)

    @classmethod
    def from_source(cls, source: str) -> "Allowlist":
        """Extract every ``# lint: allow[...]`` comment via the tokenizer.

        Tokenizing (rather than regexing raw lines) means allow markers
        inside string literals are ignored, and comments are found even on
        continuation lines.
        """
        allow = cls()
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            comments = [
                tok for tok in tokens if tok.type == tokenize.COMMENT
            ]
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return allow
        # Lines that hold code (so a standalone comment can cover the next
        # code line, not just the line below it).
        code_lines = {
            i + 1
            for i, text in enumerate(source.splitlines())
            if text.strip() and not text.lstrip().startswith("#")
        }
        max_line = len(source.splitlines())
        for tok in comments:
            match = _ALLOW_RE.search(tok.string)
            if match is None:
                continue
            tokens_set = {
                _normalise_token(part)
                for part in match.group(1).split(",")
                if part.strip()
            }
            line = tok.start[0]
            allow.by_line.setdefault(line, set()).update(tokens_set)
            if line not in code_lines:
                # Standalone comment: also cover the next code line.
                nxt = line + 1
                while nxt <= max_line and nxt not in code_lines:
                    nxt += 1
                if nxt <= max_line:
                    allow.by_line.setdefault(nxt, set()).update(tokens_set)
        return allow

    def permits(self, line: int, rule: str) -> bool:
        """True when ``rule`` on ``line`` is covered by an allow comment."""
        tokens = self.by_line.get(line)
        if not tokens:
            return False
        family = rule.rstrip("0123456789")
        return rule.upper() in tokens or family.upper() in tokens


def _normalise_token(raw: str) -> str:
    token = raw.strip()
    return FAMILY_ALIASES.get(token.lower(), token).upper()
