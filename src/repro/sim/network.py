"""Reliable FIFO channels with unbounded delays and partitions.

Channels are lossless and non-generating (Section 2.1).  FIFO is enforced
per directed channel: a message is never delivered before an earlier message
on the same channel, whatever delays the delay model draws.  Partitions HOLD
messages (they are delivered, in order, when the partition heals) — the
paper's channels are reliable, so a partition manifests as arbitrarily long
delay, which is indistinguishable from failure and is exactly what the
protocol must survive.

Messages to a crashed process are silently discarded at delivery time: a
crashed process executes no further events, so nothing can be recorded for
it (its history is crash-terminated).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, Iterable, Optional, Protocol

from repro.errors import ProcessCrashedError, SimulationError
from repro.ids import ProcessId
from repro.model.events import EventKind, MessageRecord
from repro.sim.scheduler import Scheduler
from repro.sim.trace import RunTrace

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.process import SimProcess

__all__ = ["DelayModel", "FixedDelay", "UniformDelay", "PerPairDelay", "Network"]

#: Minimal spacing between FIFO deliveries on one channel.
_FIFO_EPSILON = 1e-9


class DelayModel(Protocol):
    """Strategy drawing a one-way delay for a message."""

    def delay(self, sender: ProcessId, receiver: ProcessId, rng: random.Random) -> float:
        ...  # pragma: no cover


class FixedDelay:
    """Every message takes exactly ``value`` time units."""

    def __init__(self, value: float = 1.0) -> None:
        if value < 0:
            raise ValueError("delay must be non-negative")
        self.value = value

    def delay(self, sender: ProcessId, receiver: ProcessId, rng: random.Random) -> float:
        return self.value


class UniformDelay:
    """Delays drawn uniformly from ``[low, high]`` — the asynchronous default."""

    def __init__(self, low: float = 0.5, high: float = 2.0) -> None:
        if not 0 <= low <= high:
            raise ValueError(f"invalid delay range [{low}, {high}]")
        self.low = low
        self.high = high

    def delay(self, sender: ProcessId, receiver: ProcessId, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


class PerPairDelay:
    """Adversarial delays: explicit per-channel values over a default.

    Used to script the paper's interleavings (e.g. Figure 4's two concurrent
    reconfigurers whose interrogations must cross).
    """

    def __init__(
        self,
        default: DelayModel | None = None,
        overrides: dict[tuple[ProcessId, ProcessId], float] | None = None,
    ) -> None:
        self.default: DelayModel = default if default is not None else FixedDelay(1.0)
        self.overrides = dict(overrides or {})

    def set(self, sender: ProcessId, receiver: ProcessId, value: float) -> None:
        self.overrides[(sender, receiver)] = value

    def delay(self, sender: ProcessId, receiver: ProcessId, rng: random.Random) -> float:
        try:
            return self.overrides[(sender, receiver)]
        except KeyError:
            return self.default.delay(sender, receiver, rng)


class Network:
    """The completely connected network of FIFO channels."""

    def __init__(
        self,
        scheduler: Scheduler,
        trace: RunTrace,
        delay_model: Optional[DelayModel] = None,
        seed: int = 0,
    ) -> None:
        self.scheduler = scheduler
        self.trace = trace
        self.delay_model: DelayModel = (
            delay_model if delay_model is not None else UniformDelay()
        )
        self.rng = random.Random(seed)
        #: optional :class:`repro.obs.Obs` capture; ``None`` keeps every
        #: instrumentation site to a single attribute check.
        self.obs = None
        self._processes: dict[ProcessId, "SimProcess"] = {}
        #: registration-ordered live subset, maintained incrementally by
        #: :meth:`register` / :meth:`notify_crash` so :meth:`live_processes`
        #: never rescans the whole registry.
        self._live: dict[ProcessId, "SimProcess"] = {}
        #: per-channel time before which no further delivery may occur (FIFO)
        self._channel_clock: dict[tuple[ProcessId, ProcessId], float] = {}
        #: held messages per blocked channel, FIFO order
        self._held: dict[tuple[ProcessId, ProcessId], list[MessageRecord]] = {}
        self._partitioned: set[frozenset[ProcessId]] = set()
        #: observers live in immutable tuples: iteration needs no defensive
        #: copy (registration rebinds), which matters on the per-send path.
        self._send_observers: tuple[Callable[[MessageRecord], None], ...] = ()
        self._crash_observers: tuple[Callable[[ProcessId], None], ...] = ()
        #: append-only backing list for crash observers: every member's
        #: detector registers one, so rebuilding the snapshot tuple per
        #: registration would be O(n^2) at cluster startup.  The tuple is
        #: (re)materialized lazily on the first notification after a change.
        self._crash_observer_list: list[Callable[[ProcessId], None]] = []
        self._crash_observers_stale = False

    # ------------------------------------------------------------ membership

    def register(self, process: "SimProcess") -> None:
        if process.pid in self._processes:
            raise SimulationError(f"duplicate process id {process.pid}")
        self._processes[process.pid] = process
        if not process.crashed:
            self._live[process.pid] = process

    def process(self, pid: ProcessId) -> "SimProcess":
        return self._processes[pid]

    def get_process(self, pid: ProcessId) -> "Optional[SimProcess]":
        """O(1) lookup, or ``None`` — no defensive copy (hot-path accessor;
        :meth:`processes` copies the whole registry on every call)."""
        return self._processes.get(pid)

    def processes(self) -> dict[ProcessId, "SimProcess"]:
        return dict(self._processes)

    def live_processes(self) -> list["SimProcess"]:
        """Registered processes that have not crashed, registration order.

        Backed by the incrementally-maintained live registry: O(live), with
        no per-call scan over crashed processes.
        """
        return list(self._live.values())

    # ------------------------------------------------------------ partitions

    def partition(self, side_a: set[ProcessId], side_b: set[ProcessId]) -> None:
        """Block (hold) all traffic between the two sides, both directions."""
        for a in side_a:
            for b in side_b:
                if a != b:
                    self._partitioned.add(frozenset((a, b)))

    def heal(self) -> None:
        """Remove all partitions and flush held messages in FIFO order."""
        self._partitioned.clear()
        held, self._held = self._held, {}
        # Sorted by (sender, receiver) so heal-time delivery order does not
        # depend on dict insertion/hash order across Python hash seeds.
        for channel, records in sorted(held.items()):
            for record in records:
                self._schedule_delivery(record, extra_delay=0.0)

    def is_partitioned(self, a: ProcessId, b: ProcessId) -> bool:
        return frozenset((a, b)) in self._partitioned

    # --------------------------------------------------------------- sending

    def add_send_observer(self, observer: Callable[[MessageRecord], None]) -> None:
        """Register a hook called on every successful send (crash triggers)."""
        self._send_observers = (*self._send_observers, observer)

    def add_crash_observer(self, observer: Callable[[ProcessId], None]) -> None:
        """Register a hook called whenever a process crashes or quits.

        This is *simulator ground truth*, available only to components that
        legitimately stand outside the asynchronous model: the oracle
        failure detector (which models "suspicion in finite time after a
        real crash", F1's liveness clause) and test assertions.
        """
        self._crash_observer_list.append(observer)
        self._crash_observers_stale = True

    def notify_crash(self, pid: ProcessId) -> None:
        """Called by :class:`SimProcess` when it crashes or quits."""
        self._live.pop(pid, None)
        if self._crash_observers_stale:
            # Snapshot once per registration burst; iteration then runs on
            # an immutable tuple even if an observer registers more.
            self._crash_observers = tuple(self._crash_observer_list)
            self._crash_observers_stale = False
        for observer in self._crash_observers:
            observer(pid)

    def send(
        self,
        sender: ProcessId,
        receiver: ProcessId,
        payload: object,
        category: str = "protocol",
    ) -> MessageRecord:
        """Send a message; records the SEND event and schedules delivery."""
        process = self._processes.get(sender)
        if process is None:
            raise SimulationError(f"unknown sender {sender}")
        if process.crashed:
            raise ProcessCrashedError(f"{sender} is crashed and cannot send")
        if receiver == sender:
            raise SimulationError(f"{sender} attempted to send to itself")
        record = MessageRecord(
            sender=sender, receiver=receiver, payload=payload, category=category
        )
        self.trace.record(
            sender,
            EventKind.SEND,
            time=self.scheduler.now,
            peer=receiver,
            message=record,
        )
        if self.obs is not None:
            self.obs.count_send(sender, category)
        for observer in self._send_observers:
            observer(record)
        # The observer may have crashed the sender (crash-mid-broadcast),
        # but this message was already sent: it stays in flight.
        if self.is_partitioned(sender, receiver):
            self._held.setdefault((sender, receiver), []).append(record)
        else:
            self._schedule_delivery(record)
        return record

    def broadcast(
        self,
        sender: ProcessId,
        receivers: Iterable[ProcessId],
        payload: object,
        category: str = "protocol",
    ) -> int:
        """Batched fan-out of one payload to many receivers.

        Per-receiver behaviour — message record, SEND trace event, send
        observers, partition check, delay draw, FIFO channel clock — is
        exactly that of a sequence of :meth:`send` calls, but the attribute
        lookups are amortized over the whole fan-out.  ``sender`` itself is
        skipped, and a crash of the sender mid-fan-out (e.g. via a send
        observer) truncates the broadcast: already-sent messages stay in
        flight, the rest are never sent.  Returns the number of messages
        actually sent (0, without raising, if the sender is already
        crashed).
        """
        process = self._processes.get(sender)
        if process is None:
            raise SimulationError(f"unknown sender {sender}")
        scheduler = self.scheduler
        now = scheduler.now
        at = scheduler.at
        record_event = self.trace.record
        delay_model_delay = self.delay_model.delay
        rng = self.rng
        obs = self.obs
        clock = self._channel_clock
        partitioned = self._partitioned
        held = self._held
        deliver = self._deliver
        sent = 0
        for receiver in receivers:
            if receiver == sender:
                continue
            if process.crashed:
                break
            record = MessageRecord(sender, receiver, payload, None, category)
            record_event(sender, EventKind.SEND, time=now, peer=receiver, message=record)
            for observer in self._send_observers:
                observer(record)
            if partitioned and frozenset((sender, receiver)) in partitioned:
                held.setdefault((sender, receiver), []).append(record)
            else:
                channel = (sender, receiver)
                when = now + delay_model_delay(sender, receiver, rng)
                earliest_fifo = clock.get(channel, 0.0) + _FIFO_EPSILON
                if when < earliest_fifo:
                    when = earliest_fifo
                clock[channel] = when
                at(when, lambda record=record: deliver(record))
            sent += 1
        # One batched count for the whole fan-out (``sent`` reflects a
        # crash-mid-broadcast truncation, so totals stay exact).
        if obs is not None and sent:
            obs.count_send(sender, category, sent)
        return sent

    def _schedule_delivery(self, record: MessageRecord, extra_delay: float | None = None) -> None:
        delay = (
            extra_delay
            if extra_delay is not None
            else self.delay_model.delay(record.sender, record.receiver, self.rng)
        )
        channel = (record.sender, record.receiver)
        earliest_fifo = self._channel_clock.get(channel, 0.0) + _FIFO_EPSILON
        when = max(self.scheduler.now + delay, earliest_fifo)
        self._channel_clock[channel] = when
        self.scheduler.at(when, lambda: self._deliver(record))

    def _deliver(self, record: MessageRecord) -> None:
        receiver = self._processes.get(record.receiver)
        if receiver is None or receiver.crashed:
            return  # messages to crashed processes vanish with them
        if self.is_partitioned(record.sender, record.receiver):
            # Partition raised after the send: hold for heal-time delivery.
            self._held.setdefault((record.sender, record.receiver), []).append(record)
            return
        receiver._receive(record)
