"""Discrete-event asynchronous network substrate.

The paper assumes a completely connected network of reliable, lossless,
FIFO channels with *unbounded* message delays and no global clock
(Section 2.1).  This package implements that substrate as a deterministic,
seeded discrete-event simulation:

* :mod:`repro.sim.scheduler` — the event loop and timers;
* :mod:`repro.sim.network` — FIFO channels, delay models, partitions;
* :mod:`repro.sim.process` — the base class protocol processes extend;
* :mod:`repro.sim.failures` — crash injection, including crashes *mid
  broadcast* (needed for the invisible-commit scenarios of Figures 3/11);
* :mod:`repro.sim.trace` — the global run trace consumed by the property
  checkers and the complexity benchmarks.

Determinism matters: every adversarial schedule in the paper's proofs is a
specific interleaving, and reproducing it requires exact control over
delivery order.  All nondeterminism flows through one seeded RNG, and ties
in the event queue break by insertion order.
"""

from repro.sim.scheduler import Scheduler, Timer
from repro.sim.trace import RunTrace, TraceLevel
from repro.sim.network import (
    Network,
    DelayModel,
    FixedDelay,
    UniformDelay,
    PerPairDelay,
)
from repro.sim.process import SimProcess
from repro.sim.failures import CrashRule, crash_after_matching_sends

__all__ = [
    "Scheduler",
    "Timer",
    "RunTrace",
    "TraceLevel",
    "Network",
    "DelayModel",
    "FixedDelay",
    "UniformDelay",
    "PerPairDelay",
    "SimProcess",
    "CrashRule",
    "crash_after_matching_sends",
]
