"""Deterministic discrete-event scheduler.

A minimal, fast event loop: callbacks keyed by ``(time, insertion_seq)`` in
a binary heap, so simultaneous events run in the order they were scheduled.
Protocol code never reads the clock — only the network (for delays) and the
failure detectors (the paper's F1 "time-out" mechanism) do.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

from repro.errors import SchedulerExhaustedError

__all__ = ["Scheduler", "Timer"]


class _Entry:
    """One heap cell.  A plain ``__slots__`` class — one is allocated per
    scheduled callback, so construction is on the simulator's hot path."""

    __slots__ = ("time", "seq", "callback", "cancelled", "finished")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        #: set once the callback has run (a late cancel() must not
        #: double-count).
        self.finished = False

    def __lt__(self, other: "_Entry") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq


class Timer:
    """A cancellable handle on a scheduled callback."""

    __slots__ = ("_entry", "_scheduler")

    def __init__(self, entry: _Entry, scheduler: "Scheduler") -> None:
        self._entry = entry
        self._scheduler = scheduler

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""
        entry = self._entry
        if entry.cancelled:
            return
        entry.cancelled = True
        if not entry.finished:
            self._scheduler._live -= 1

    @property
    def cancelled(self) -> bool:
        return self._entry.cancelled

    @property
    def deadline(self) -> float:
        return self._entry.time


class Scheduler:
    """The event loop.

    Attributes:
        now: current simulation time.  Monotonically non-decreasing.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[_Entry] = []
        self._seq = itertools.count()
        self._events_run = 0
        #: count of scheduled-but-not-yet-run, not-cancelled entries, so
        #: :meth:`pending` is O(1) rather than an O(n) heap scan.
        self._live = 0

    @property
    def events_run(self) -> int:
        """Total callbacks executed so far (useful as a runaway guard)."""
        return self._events_run

    def at(self, time: float, callback: Callable[[], None]) -> Timer:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        entry = _Entry(time, next(self._seq), callback)
        heapq.heappush(self._heap, entry)
        self._live += 1
        return Timer(entry, self)

    def after(self, delay: float, callback: Callable[[], None]) -> Timer:
        """Schedule ``callback`` ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.at(self.now + delay, callback)

    def pending(self) -> int:
        """Number of not-yet-cancelled scheduled callbacks (O(1))."""
        return self._live

    def step(self) -> bool:
        """Run the next event.  Returns False when the queue is empty."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.cancelled:
                continue
            entry.finished = True
            self._live -= 1
            self.now = entry.time
            self._events_run += 1
            entry.callback()
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 1_000_000,
    ) -> None:
        """Run events until the queue drains or ``until`` is reached.

        At most ``max_events`` callbacks run; if a further live event would
        remain, :class:`SchedulerExhaustedError` is raised *before* running
        it (the guard used to allow ``max_events + 1`` callbacks through).

        Raises:
            SchedulerExhaustedError: if ``max_events`` callbacks run without
                draining — a runaway-loop guard, since protocol bugs can
                easily produce infinite message ping-pong.
        """
        heap = self._heap
        pop = heapq.heappop
        executed = 0
        while heap:
            entry = heap[0]
            if entry.cancelled:
                pop(heap)
                continue
            if until is not None and entry.time > until:
                self.now = until
                return
            if executed >= max_events:
                raise SchedulerExhaustedError(
                    f"exceeded {max_events} events without quiescing"
                )
            # Execute the entry we just peeked at directly instead of
            # re-popping through step().
            pop(heap)
            entry.finished = True
            self._live -= 1
            self.now = entry.time
            self._events_run += 1
            executed += 1
            entry.callback()
        if until is not None and until > self.now:
            self.now = until

    def run_until(
        self,
        predicate: Callable[[], bool],
        until: Optional[float] = None,
        max_events: int = 1_000_000,
    ) -> bool:
        """Run until ``predicate()`` is true.  Returns whether it became true.

        The predicate is checked before every event, so the loop stops at
        the earliest instant the condition holds.  Like :meth:`run`, at most
        ``max_events`` callbacks are executed.
        """
        heap = self._heap
        pop = heapq.heappop
        executed = 0
        while True:
            if predicate():
                return True
            while heap and heap[0].cancelled:
                pop(heap)
            if not heap:
                return predicate()
            entry = heap[0]
            if until is not None and entry.time > until:
                self.now = until
                return predicate()
            if executed >= max_events:
                raise SchedulerExhaustedError(
                    f"exceeded {max_events} events while waiting for condition"
                )
            pop(heap)
            entry.finished = True
            self._live -= 1
            self.now = entry.time
            self._events_run += 1
            executed += 1
            entry.callback()

    def _peek_live(self) -> Optional[_Entry]:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0] if self._heap else None
