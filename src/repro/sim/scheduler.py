"""Deterministic discrete-event scheduler.

A minimal, fast event loop: callbacks keyed by ``(time, insertion_seq)`` in
a binary heap, so simultaneous events run in the order they were scheduled.
Protocol code never reads the clock — only the network (for delays) and the
failure detectors (the paper's F1 "time-out" mechanism) do.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import SchedulerExhaustedError

__all__ = ["Scheduler", "Timer"]


@dataclass(order=True)
class _Entry:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: set once the callback has run (a late cancel() must not double-count).
    finished: bool = field(default=False, compare=False)


class Timer:
    """A cancellable handle on a scheduled callback."""

    __slots__ = ("_entry", "_scheduler")

    def __init__(self, entry: _Entry, scheduler: "Scheduler") -> None:
        self._entry = entry
        self._scheduler = scheduler

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""
        entry = self._entry
        if entry.cancelled:
            return
        entry.cancelled = True
        if not entry.finished:
            self._scheduler._live -= 1

    @property
    def cancelled(self) -> bool:
        return self._entry.cancelled

    @property
    def deadline(self) -> float:
        return self._entry.time


class Scheduler:
    """The event loop.

    Attributes:
        now: current simulation time.  Monotonically non-decreasing.
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[_Entry] = []
        self._seq = itertools.count()
        self._events_run = 0
        #: count of scheduled-but-not-yet-run, not-cancelled entries, so
        #: :meth:`pending` is O(1) rather than an O(n) heap scan.
        self._live = 0

    @property
    def events_run(self) -> int:
        """Total callbacks executed so far (useful as a runaway guard)."""
        return self._events_run

    def at(self, time: float, callback: Callable[[], None]) -> Timer:
        """Schedule ``callback`` at absolute simulation time ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        entry = _Entry(time, next(self._seq), callback)
        heapq.heappush(self._heap, entry)
        self._live += 1
        return Timer(entry, self)

    def after(self, delay: float, callback: Callable[[], None]) -> Timer:
        """Schedule ``callback`` ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.at(self.now + delay, callback)

    def pending(self) -> int:
        """Number of not-yet-cancelled scheduled callbacks (O(1))."""
        return self._live

    def step(self) -> bool:
        """Run the next event.  Returns False when the queue is empty."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.cancelled:
                continue
            entry.finished = True
            self._live -= 1
            self.now = entry.time
            self._events_run += 1
            entry.callback()
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 1_000_000,
    ) -> None:
        """Run events until the queue drains or ``until`` is reached.

        Raises:
            SchedulerExhaustedError: if ``max_events`` callbacks run without
                draining — a runaway-loop guard, since protocol bugs can
                easily produce infinite message ping-pong.
        """
        executed = 0
        while self._heap:
            next_live = self._peek_live()
            if next_live is None:
                return
            if until is not None and next_live.time > until:
                self.now = until
                return
            if not self.step():
                return
            executed += 1
            if executed > max_events:
                raise SchedulerExhaustedError(
                    f"exceeded {max_events} events without quiescing"
                )
        if until is not None and until > self.now:
            self.now = until

    def run_until(
        self,
        predicate: Callable[[], bool],
        until: Optional[float] = None,
        max_events: int = 1_000_000,
    ) -> bool:
        """Run until ``predicate()`` is true.  Returns whether it became true.

        The predicate is checked before every event, so the loop stops at
        the earliest instant the condition holds.
        """
        executed = 0
        while True:
            if predicate():
                return True
            next_live = self._peek_live()
            if next_live is None:
                return predicate()
            if until is not None and next_live.time > until:
                self.now = until
                return predicate()
            self.step()
            executed += 1
            if executed > max_events:
                raise SchedulerExhaustedError(
                    f"exceeded {max_events} events while waiting for condition"
                )

    def _peek_live(self) -> Optional[_Entry]:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0] if self._heap else None
