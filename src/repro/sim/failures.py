"""Crash injection, including crashes in the middle of a broadcast.

The paper's hardest scenarios hinge on a coordinator crashing after sending
a commit to only *some* of the group (Figure 3: "If Mgr fails in the middle
of an update commit broadcast no system view will exist"; Figure 11's
two invisible partial commits).  :func:`crash_after_matching_sends` arms a
rule on the network's send-observer hook: after the victim has sent its
k-th message matching a predicate, the victim crashes — truncating the rest
of the broadcast, because :meth:`SimProcess.broadcast` checks the crashed
flag between sends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.ids import ProcessId
from repro.model.events import MessageRecord
from repro.sim.network import Network

__all__ = ["CrashRule", "crash_after_matching_sends", "crash_at"]

MessagePredicate = Callable[[MessageRecord], bool]


@dataclass
class CrashRule:
    """An armed crash trigger.

    Attributes:
        victim: the process to crash.
        predicate: which sends count toward the trigger.
        after: crash after this many matching sends have completed.
        fired: whether the rule has triggered.
        matched: how many sends have matched so far.
    """

    victim: ProcessId
    predicate: MessagePredicate
    after: int = 1
    detail: str = "crash-rule"
    fired: bool = False
    matched: int = field(default=0)

    def disarm(self) -> None:
        """Prevent the rule from ever firing."""
        self.fired = True


def crash_after_matching_sends(
    network: Network,
    victim: ProcessId,
    predicate: MessagePredicate,
    after: int = 1,
    detail: str = "",
) -> CrashRule:
    """Crash ``victim`` immediately after its ``after``-th matching send.

    The matching send itself *is* delivered (it was already handed to the
    network); subsequent sends of the same broadcast are lost.  This is
    exactly "Mgr crashed having committed to only k members".
    """
    rule = CrashRule(
        victim=victim,
        predicate=predicate,
        after=after,
        detail=detail or f"after {after} matching sends",
    )

    def observer(record: MessageRecord) -> None:
        if rule.fired or record.sender != victim:
            return
        if not rule.predicate(record):
            return
        rule.matched += 1
        if rule.matched >= rule.after:
            rule.fired = True
            network.process(victim).crash(detail=rule.detail)

    network.add_send_observer(observer)
    return rule


def crash_at(network: Network, victim: ProcessId, time: float, detail: str = "") -> None:
    """Crash ``victim`` at an absolute simulation time."""
    network.scheduler.at(
        time, lambda: network.process(victim).crash(detail=detail or f"at t={time}")
    )


def payload_type_is(*type_names: str) -> MessagePredicate:
    """Predicate matching payloads by class name (e.g. ``"Commit"``)."""
    names = set(type_names)

    def predicate(record: MessageRecord) -> bool:
        return type(record.payload).__name__ in names

    return predicate


def sent_to(receiver: ProcessId) -> MessagePredicate:
    """Predicate matching messages addressed to one process."""

    def predicate(record: MessageRecord) -> bool:
        return record.receiver == receiver

    return predicate


def both(*predicates: MessagePredicate) -> MessagePredicate:
    """Conjunction of message predicates."""

    def predicate(record: MessageRecord) -> bool:
        return all(p(record) for p in predicates)

    return predicate
