"""Base class for simulated processes.

A :class:`SimProcess` owns a process id, can send/broadcast messages, set
timers, and crash.  Subclasses implement :meth:`on_message` (and optionally
:meth:`on_start`).  Two hooks matter to the protocol layer:

* :meth:`should_accept` implements incoming-channel disconnection — the
  paper's isolation rule **S1** ("once p believes q faulty, p never receives
  messages from q again").  Rejected messages are recorded as DISCARD events
  and never reach :meth:`on_message`.
* :meth:`broadcast` is *indivisible but not failure-atomic* (Section 3.1's
  ``Bcast``): all sends happen at one simulation instant, but a crash rule
  firing mid-loop truncates the broadcast — the mechanism behind every
  invisible-commit scenario in the paper.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.errors import ProcessCrashedError
from repro.ids import ProcessId
from repro.model.events import EventKind, MessageRecord
from repro.sim.network import Network
from repro.sim.scheduler import Timer

__all__ = ["SimProcess"]


class SimProcess:
    """One simulated process."""

    def __init__(self, pid: ProcessId, network: Network) -> None:
        self.pid = pid
        self.network = network
        self.crashed = False
        self.quit = False
        self._timers: list[Timer] = []
        network.register(self)

    # ------------------------------------------------------------- lifecycle

    def start(self) -> None:
        """Record the START event and run subclass startup logic."""
        self.network.trace.record(
            self.pid, EventKind.START, time=self.network.scheduler.now
        )
        self.on_start()

    def on_start(self) -> None:
        """Subclass hook; runs once at startup."""

    def crash(self, detail: str = "") -> None:
        """Crash-stop this process (ground truth; unobservable by others)."""
        if self.crashed:
            return
        self.crashed = True
        self._cancel_timers()
        self.network.trace.record(
            self.pid,
            EventKind.CRASH,
            time=self.network.scheduler.now,
            detail=detail,
        )
        self.network.notify_crash(self.pid)

    def quit_protocol(self, detail: str = "") -> None:
        """The paper's ``quit_p``: permanently cease communication.

        Unlike :meth:`crash` this is a *protocol* event (it appears in the
        history as QUIT); it is how a process reacts to discovering it has
        been excluded.
        """
        if self.crashed or self.quit:
            return
        self.quit = True
        self.crashed = True  # ceases all communication, like a crash
        self._cancel_timers()
        self.network.trace.record(
            self.pid,
            EventKind.QUIT,
            time=self.network.scheduler.now,
            detail=detail,
        )
        self.network.notify_crash(self.pid)

    def _cancel_timers(self) -> None:
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()

    # ----------------------------------------------------------------- comms

    def send(self, to: ProcessId, payload: object, category: str = "protocol") -> None:
        """Send one message (raises if this process has crashed)."""
        if self.crashed:
            raise ProcessCrashedError(f"{self.pid} is crashed")
        self.network.send(self.pid, to, payload, category=category)

    def broadcast(
        self,
        targets: Iterable[ProcessId],
        payload: object,
        category: str = "protocol",
    ) -> int:
        """The paper's ``Bcast``: send to each target, skipping self.

        Indivisible (all sends at one instant) but not failure-atomic: if a
        crash rule fires partway, remaining sends are silently skipped.
        Returns the number of messages actually sent.

        Delegates to :meth:`Network.broadcast`, which preserves those
        semantics while amortizing the per-send lookups over the fan-out.
        """
        return self.network.broadcast(self.pid, targets, payload, category=category)

    def set_timer(self, delay: float, callback: Callable[[], None]) -> Timer:
        """Schedule a local timer; auto-suppressed if this process crashes."""
        if self.crashed:
            raise ProcessCrashedError(f"{self.pid} is crashed")

        def guarded() -> None:
            if not self.crashed:
                callback()

        timer = self.network.scheduler.after(delay, guarded)
        self._timers.append(timer)
        return timer

    # -------------------------------------------------------------- delivery

    def _receive(self, record: MessageRecord) -> None:
        """Called by the network at delivery time."""
        if self.crashed:
            return
        if not self.should_accept(record.sender, record.payload):
            self.network.trace.record(
                self.pid,
                EventKind.DISCARD,
                time=self.network.scheduler.now,
                peer=record.sender,
                message=record,
                detail="S1-isolation",
            )
            return
        self.network.trace.record(
            self.pid,
            EventKind.RECV,
            time=self.network.scheduler.now,
            peer=record.sender,
            message=record,
        )
        self.on_message(record.sender, record.payload)

    def should_accept(self, sender: ProcessId, payload: object) -> bool:
        """S1 hook: return False to discard (protocol layer overrides)."""
        return True

    def on_message(self, sender: ProcessId, payload: object) -> None:
        """Subclass hook: handle one delivered message."""
        raise NotImplementedError

    # ----------------------------------------------------------------- debug

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "crashed" if self.crashed else "live"
        return f"<{type(self).__name__} {self.pid} {state}>"
