"""Global run trace: every event of every process, in order.

The trace is the bridge between the running system and the formal model: it
is a *system run* in the paper's sense (a tuple of process histories), and
everything in :mod:`repro.model` and :mod:`repro.properties` consumes it.
It also powers the complexity benchmarks: messages are tagged with a
category so detector traffic (which Section 7.2 does not charge to the
algorithm) can be counted separately from protocol traffic.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator, Optional

from repro.errors import TraceError
from repro.ids import ProcessId
from repro.model.events import Event, EventKind, MessageRecord
from repro.model.history import ProcessHistory, history_of

__all__ = ["RunTrace"]


class RunTrace:
    """Append-only record of a run.

    Per-process event indices are assigned here so processes themselves stay
    oblivious to trace bookkeeping.  After a process records QUIT or CRASH,
    further events for it are rejected (histories are crash-terminated,
    Section 2.1).
    """

    def __init__(self) -> None:
        self._events: list[Event] = []
        self._indices: dict[ProcessId, int] = {}
        self._terminated: set[ProcessId] = set()

    # ------------------------------------------------------------- recording

    def record(
        self,
        proc: ProcessId,
        kind: EventKind,
        time: float,
        peer: Optional[ProcessId] = None,
        message: Optional[MessageRecord] = None,
        version: Optional[int] = None,
        view: Optional[tuple[ProcessId, ...]] = None,
        detail: str = "",
    ) -> Event:
        """Append one event to ``proc``'s history and return it."""
        if proc in self._terminated:
            raise TraceError(f"{proc} already terminated; cannot record {kind}")
        index = self._indices.get(proc)
        if index is None:
            if kind is not EventKind.START:
                # Auto-insert the START event the model requires.
                start = Event(proc=proc, kind=EventKind.START, index=0, time=time)
                self._events.append(start)
                self._indices[proc] = 1
                index = 1
            else:
                index = 0
        event = Event(
            proc=proc,
            kind=kind,
            index=index,
            time=time,
            peer=peer,
            message=message,
            version=version,
            view=view,
            detail=detail,
        )
        self._events.append(event)
        self._indices[proc] = index + 1
        if kind in (EventKind.QUIT, EventKind.CRASH):
            self._terminated.add(proc)
        return event

    # --------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    @property
    def events(self) -> list[Event]:
        """All events, globally ordered by occurrence."""
        return list(self._events)

    def processes(self) -> set[ProcessId]:
        return set(self._indices)

    def history(self, proc: ProcessId) -> ProcessHistory:
        """The validated history of one process."""
        return history_of(self._events, proc)

    def histories(self) -> dict[ProcessId, ProcessHistory]:
        """All validated histories, keyed by process."""
        return {p: self.history(p) for p in sorted(self.processes())}

    def events_of(self, proc: ProcessId, kind: Optional[EventKind] = None) -> list[Event]:
        return [
            e
            for e in self._events
            if e.proc == proc and (kind is None or e.kind is kind)
        ]

    def events_of_kind(self, kind: EventKind) -> list[Event]:
        return [e for e in self._events if e.kind is kind]

    def crashed(self) -> set[ProcessId]:
        """Processes with a ground-truth CRASH event (``DOWN`` in the model)."""
        return {e.proc for e in self._events if e.kind is EventKind.CRASH}

    def quit_or_crashed(self) -> set[ProcessId]:
        return set(self._terminated)

    # ------------------------------------------------------ message counting

    def message_count(self, category: Optional[str] = "protocol") -> int:
        """Number of SEND events, optionally restricted to one category.

        Pass ``category=None`` to count everything.  Section 7.2 counts
        protocol messages only, so that is the default.
        """
        return sum(
            1
            for e in self._events
            if e.kind is EventKind.SEND
            and e.message is not None
            and (category is None or e.message.category == category)
        )

    def message_counts_by_category(self) -> Counter[str]:
        counts: Counter[str] = Counter()
        for e in self._events:
            if e.kind is EventKind.SEND and e.message is not None:
                counts[e.message.category] += 1
        return counts

    def message_counts_by_type(self, category: str = "protocol") -> Counter[str]:
        """SEND counts keyed by payload class name — per-phase breakdowns."""
        counts: Counter[str] = Counter()
        for e in self._events:
            if e.kind is EventKind.SEND and e.message is not None:
                if e.message.category == category:
                    counts[type(e.message.payload).__name__] += 1
        return counts

    # ---------------------------------------------------------------- output

    def format(self, kinds: Optional[Iterable[EventKind]] = None) -> str:
        """Human-readable rendering, optionally filtered by kind."""
        wanted = set(kinds) if kinds is not None else None
        lines = [
            f"{e.time:10.3f}  {e}"
            for e in self._events
            if wanted is None or e.kind in wanted
        ]
        return "\n".join(lines)
