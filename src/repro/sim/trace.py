"""Global run trace: every event of every process, in order.

The trace is the bridge between the running system and the formal model: it
is a *system run* in the paper's sense (a tuple of process histories), and
everything in :mod:`repro.model` and :mod:`repro.properties` consumes it.
It also powers the complexity benchmarks: messages are tagged with a
category so detector traffic (which Section 7.2 does not charge to the
algorithm) can be counted separately from protocol traffic.

Trace levels
------------

Large-group throughput runs spend a surprising fraction of their time
allocating :class:`Event` objects that nobody ever reads.  The trace is
therefore *leveled*:

* :attr:`TraceLevel.FULL` (the default) — record every event object,
  byte-identical to the historical behaviour.  Required by the model
  checkers, the explorer and every correctness test.
* :attr:`TraceLevel.COUNTS` — allocate nothing per event; maintain only
  per-kind and per-category/per-type SEND counters (enough for the
  complexity benchmarks' ``message_count`` queries).
* :attr:`TraceLevel.OFF` — bookkeeping only (indices, termination, ground
  truth crashes); all counts read as zero.

Every level keeps the crash-termination guard and the ``quit_or_crashed``
set exact — the oracle detector reads them during a run.
"""

from __future__ import annotations

import enum
from collections import Counter
from typing import Iterable, Iterator, Optional, Union

from repro.errors import TraceError
from repro.ids import ProcessId
from repro.model.events import N_EVENT_KINDS, Event, EventKind, MessageRecord
from repro.model.history import ProcessHistory, history_of

__all__ = ["RunTrace", "TraceLevel"]


class TraceLevel(enum.IntEnum):
    """How much a :class:`RunTrace` records (see the module docstring)."""

    OFF = 0
    COUNTS = 1
    FULL = 2

    @classmethod
    def coerce(cls, value: Union["TraceLevel", str, int]) -> "TraceLevel":
        """Accept a level, its name (any case), or its integer value."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            try:
                return cls[value.upper()]
            except KeyError:
                raise ValueError(
                    f"unknown trace level {value!r}; "
                    f"expected one of {[m.name.lower() for m in cls]}"
                ) from None
        return cls(value)


class RunTrace:
    """Append-only record of a run.

    Per-process event indices are assigned here so processes themselves stay
    oblivious to trace bookkeeping.  After a process records QUIT or CRASH,
    further events for it are rejected (histories are crash-terminated,
    Section 2.1).
    """

    def __init__(self, level: Union[TraceLevel, str, int] = TraceLevel.FULL) -> None:
        self._level = TraceLevel.coerce(level)
        self._full = self._level is TraceLevel.FULL
        self._counts = self._level is TraceLevel.COUNTS
        self._events: list[Event] = []
        self._indices: dict[ProcessId, int] = {}
        self._terminated: set[ProcessId] = set()
        self._crashed: set[ProcessId] = set()
        #: events recorded at non-FULL levels (FULL uses ``len(_events)``).
        self._recorded = 0
        #: COUNTS-level counters: one preallocated slot per event kind,
        #: indexed by the kind's dense ordinal — no enum hashing per event.
        self._kind_count_slots: list[int] = [0] * N_EVENT_KINDS
        self._send_by_category: dict[str, int] = {}
        self._send_by_type: dict[str, dict[str, int]] = {}

    @property
    def level(self) -> TraceLevel:
        return self._level

    # ------------------------------------------------------------- recording

    def record(
        self,
        proc: ProcessId,
        kind: EventKind,
        time: float,
        peer: Optional[ProcessId] = None,
        message: Optional[MessageRecord] = None,
        version: Optional[int] = None,
        view: Optional[tuple[ProcessId, ...]] = None,
        detail: str = "",
    ) -> Optional[Event]:
        """Append one event to ``proc``'s history and return it.

        Returns ``None`` below :attr:`TraceLevel.FULL` (no event object is
        allocated there).
        """
        if proc in self._terminated:
            raise TraceError(f"{proc} already terminated; cannot record {kind}")
        full = self._full
        indices = self._indices
        index = indices.get(proc)
        if index is None:
            if kind is not EventKind.START:
                # Auto-insert the START event the model requires.
                if full:
                    self._events.append(Event(proc, EventKind.START, 0, time))
                else:
                    self._recorded += 1
                    if self._counts:
                        self._kind_count_slots[EventKind.START._ordinal] += 1
                index = 1
            else:
                index = 0
        event: Optional[Event] = None
        if full:
            event = Event(proc, kind, index, time, peer, message, version, view, detail)
            self._events.append(event)
        else:
            self._recorded += 1
            if self._counts:
                self._kind_count_slots[kind._ordinal] += 1
                if kind is EventKind.SEND and message is not None:
                    category = message.category
                    sends = self._send_by_category
                    sends[category] = sends.get(category, 0) + 1
                    by_type = self._send_by_type.get(category)
                    if by_type is None:
                        by_type = self._send_by_type[category] = {}
                    name = type(message.payload).__name__
                    by_type[name] = by_type.get(name, 0) + 1
        indices[proc] = index + 1
        if kind is EventKind.QUIT or kind is EventKind.CRASH:
            self._terminated.add(proc)
            if kind is EventKind.CRASH:
                self._crashed.add(proc)
        return event

    # --------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self._events) if self._full else self._recorded

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    @property
    def events(self) -> list[Event]:
        """All events, globally ordered by occurrence (empty below FULL)."""
        return list(self._events)

    def processes(self) -> set[ProcessId]:
        return set(self._indices)

    def _require_full(self, what: str) -> None:
        if not self._full:
            raise TraceError(
                f"{what} requires TraceLevel.FULL (this trace is "
                f"{self._level.name})"
            )

    def history(self, proc: ProcessId) -> ProcessHistory:
        """The validated history of one process."""
        self._require_full("history()")
        return history_of(self._events, proc)

    def histories(self) -> dict[ProcessId, ProcessHistory]:
        """All validated histories, keyed by process."""
        self._require_full("histories()")
        return {p: self.history(p) for p in sorted(self.processes())}

    def events_of(self, proc: ProcessId, kind: Optional[EventKind] = None) -> list[Event]:
        return [
            e
            for e in self._events
            if e.proc == proc and (kind is None or e.kind is kind)
        ]

    def events_of_kind(self, kind: EventKind) -> list[Event]:
        return [e for e in self._events if e.kind is kind]

    def crashed(self) -> set[ProcessId]:
        """Processes with a ground-truth CRASH event (``DOWN`` in the model)."""
        return set(self._crashed)

    def quit_or_crashed(self) -> set[ProcessId]:
        return set(self._terminated)

    def kind_counts(self) -> Counter[EventKind]:
        """Events recorded per kind (available at FULL and COUNTS)."""
        if self._full:
            return Counter(e.kind for e in self._events)
        slots = self._kind_count_slots
        return Counter(
            {kind: slots[kind._ordinal] for kind in EventKind if slots[kind._ordinal]}
        )

    # ------------------------------------------------------ message counting

    def message_count(self, category: Optional[str] = "protocol") -> int:
        """Number of SEND events, optionally restricted to one category.

        Pass ``category=None`` to count everything.  Section 7.2 counts
        protocol messages only, so that is the default.
        """
        if self._full:
            return sum(
                1
                for e in self._events
                if e.kind is EventKind.SEND
                and e.message is not None
                and (category is None or e.message.category == category)
            )
        if category is None:
            return sum(self._send_by_category.values())
        return self._send_by_category.get(category, 0)

    def message_counts_by_category(self) -> Counter[str]:
        if self._full:
            counts: Counter[str] = Counter()
            for e in self._events:
                if e.kind is EventKind.SEND and e.message is not None:
                    counts[e.message.category] += 1
            return counts
        return Counter(self._send_by_category)

    def message_counts_by_type(self, category: str = "protocol") -> Counter[str]:
        """SEND counts keyed by payload class name — per-phase breakdowns."""
        if self._full:
            counts: Counter[str] = Counter()
            for e in self._events:
                if e.kind is EventKind.SEND and e.message is not None:
                    if e.message.category == category:
                        counts[type(e.message.payload).__name__] += 1
            return counts
        return Counter(self._send_by_type.get(category, {}))

    def metrics_snapshot(self) -> dict:
        """JSON-able accounting of the run for the bench ``metrics`` section.

        Works at FULL and COUNTS (every accessor used here does); at OFF all
        counts read zero.  Keys are stable: bench baselines diff them.
        """
        return {
            "trace_level": self._level.name,
            "events": len(self),
            "events_by_kind": {
                kind.name: count
                for kind, count in sorted(
                    self.kind_counts().items(), key=lambda kv: kv[0].name
                )
            },
            "sends_by_category": dict(sorted(self.message_counts_by_category().items())),
            "protocol_sends_by_type": dict(
                sorted(self.message_counts_by_type().items())
            ),
            "crashed": sorted(str(p) for p in self._crashed),
            "terminated": sorted(str(p) for p in self._terminated),
        }

    # ---------------------------------------------------------------- output

    def format(self, kinds: Optional[Iterable[EventKind]] = None) -> str:
        """Human-readable rendering, optionally filtered by kind."""
        wanted = set(kinds) if kinds is not None else None
        lines = [
            f"{e.time:10.3f}  {e}"
            for e in self._events
            if wanted is None or e.kind in wanted
        ]
        return "\n".join(lines)
