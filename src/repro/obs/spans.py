"""Protocol spans: begin/end markers around semantically meaningful intervals.

A *span* measures one interval of protocol activity — a detector probe in
flight, a reconfiguration phase, a view-change install, a TCP reconnect
draining its resend queue.  Spans are identified by ``(name, key)`` where
``name`` is the taxonomy entry (``"reconfig.phase1"``, ``"detector.probe"``,
...) and ``key`` disambiguates concurrent instances of the same span kind
(usually a process id or a ``(process, peer)`` pair).

Timestamps are always passed explicitly by the caller (``at=scheduler.now``
in the simulator, ``at=loop.time()`` in the aio layer): the span log itself
never reads a clock, which keeps it usable inside the deterministic
simulator without tripping the DET lint rules.

The hot path appends compact tuples; completed spans materialise as plain
dicts through :attr:`SpanLog.records`, ready for JSONL serialisation.  A
span whose ``end`` never arrives (the process crashed mid-interval) is
simply dropped — a half-open interval has no duration to aggregate.
"""

from __future__ import annotations

from typing import Hashable, Optional

__all__ = ["SpanLog"]


def _as_record(entry: tuple) -> dict:
    name, start, end, labels = entry
    return {
        "name": name,
        "start": start,
        "end": end,
        "duration": end - start,
        "labels": {k: str(v) for k, v in labels.items()} if labels else {},
    }


class SpanLog:
    """Accumulates completed spans; at most one open span per (name, key)."""

    __slots__ = ("_records", "_open")

    def __init__(self) -> None:
        #: completed spans as ``(name, start, end, labels-or-None)`` tuples;
        #: kept compact because instrumented runs append thousands of these.
        self._records: list[tuple] = []
        self._open: dict[tuple[str, Hashable], tuple[float, Optional[dict]]] = {}

    def begin(self, name: str, key: Hashable, at: float, **labels: object) -> None:
        """Open a span.  Re-beginning an open (name, key) restarts it: the
        earlier begin is discarded, mirroring how a protocol retry supersedes
        the attempt it replaces."""
        self._open[(name, key)] = (at, labels or None)

    def end(
        self, name: str, key: Hashable, at: float, **labels: object
    ) -> Optional[float]:
        """Close a span and record it.  Returns the duration, or ``None``
        when no matching begin is open (ends are tolerated unpaired so
        callers need no bookkeeping on crash/quit paths)."""
        opened = self._open.pop((name, key), None)
        if opened is None:
            return None
        start, merged = opened
        if labels:
            merged = {**merged, **labels} if merged else labels
        self._records.append((name, start, at, merged))
        return at - start

    def is_open(self, name: str, key: Hashable) -> bool:
        return (name, key) in self._open

    def discard(self, name: str, key: Hashable) -> None:
        """Drop an open span without recording it (crash/quit cleanup)."""
        self._open.pop((name, key), None)

    def emit(self, name: str, start: float, end: float, **labels: object) -> dict:
        """Record a span retrospectively, both endpoints known.

        Used where the interval is only recognisable at its end — e.g.
        detection latency, which runs from the last message heard from the
        victim to the moment suspicion is raised.
        """
        entry = (name, start, end, labels or None)
        self._records.append(entry)
        return _as_record(entry)

    @property
    def records(self) -> list[dict]:
        """Completed spans as dicts with stringified labels (materialised on
        access; the capture itself stores tuples)."""
        return [_as_record(entry) for entry in self._records]

    def durations(self, name: str) -> list[float]:
        """All recorded durations for one span name, in completion order."""
        return [end - start for n, start, end, _ in self._records if n == name]

    def __len__(self) -> int:
        return len(self._records)
