"""``repro.obs`` — unified metrics + protocol-span telemetry.

One :class:`Obs` object per run bundles a :class:`MetricsRegistry` and a
:class:`SpanLog` and pre-registers the instrument catalogue (see
``docs/OBSERVABILITY.md``).  Instrumented layers — ``sim.network``,
``detectors.heartbeat``, ``aio.tcp``, ``core.member`` — each carry an
``obs`` attribute defaulting to ``None``; every instrumentation site is
guarded by a single ``if obs is not None`` attribute check, the same
zero-cost-when-off discipline as :class:`repro.sim.trace.TraceLevel`.

The facade's helper methods keep call sites one line and centralise the
label vocabulary, so the metric catalogue lives in exactly one place.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs.registry import DEFAULT_BUCKETS, MetricsRegistry
from repro.obs.spans import SpanLog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.trace import RunTrace

__all__ = ["Obs", "MetricsRegistry", "SpanLog", "DEFAULT_BUCKETS"]


class Obs:
    """One run's telemetry capture: metrics registry + span log."""

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()
        self.spans = SpanLog()
        # Hot-path instruments, bound once so instrumented loops pay one
        # attribute access + one dict lookup per event.
        self._sends = self.metrics.counter(
            "repro_messages_sent_total",
            "Messages sent, by sending process and traffic category.",
            labels=("proc", "category"),
        )
        self._suspicions = self.metrics.counter(
            "repro_suspicions_total",
            "New suspicions raised by failure detectors, by observer.",
            labels=("proc",),
        )
        self._false_suspicions = self.metrics.counter(
            "repro_false_suspicions_total",
            "Suspicions of processes that had not crashed (ground truth).",
            labels=("proc",),
        )
        self._probe_rtt = self.metrics.histogram(
            "repro_detector_probe_rtt",
            "Detector probe round-trip time (probe send to first reply).",
            labels=("proc",),
        )
        self._last_heard_age = self.metrics.histogram(
            "repro_detector_last_heard_age",
            "Age of last-heard timestamp per peer, sampled at each tick.",
            labels=("proc",),
        )
        self._round_msgs = self.metrics.gauge(
            "repro_detector_msgs_per_round",
            "Detector messages sent in the most recent probe round, by process.",
            labels=("proc",),
        )
        self._shard_cells = self.metrics.gauge(
            "repro_shard_cells",
            "Leaf cells tracked by a shard-directory replica.",
            labels=("proc",),
        )
        self._shard_leaves = self.metrics.gauge(
            "repro_shard_leaves",
            "Total leaf members tracked by a shard-directory replica.",
            labels=("proc",),
        )
        self._shard_convergence = self.metrics.histogram(
            "repro_shard_convergence_latency",
            "Sim-time from a cell-roster write to its last live leaf applying it.",
            labels=("cell",),
        )
        # Per-(proc, category) Counter children, memoised so the per-message
        # path is one dict get + one float add — ``labels()`` re-validates
        # arity on every call, which the bench overhead gate can't afford.
        self._send_children: dict = {}

    # ----------------------------------------------------------- hot helpers

    def count_send(self, proc: object, category: str, amount: float = 1.0) -> None:
        """Count ``amount`` sends (broadcasts batch a whole fan-out)."""
        child = self._send_children.get((proc, category))
        if child is None:
            child = self._send_children[(proc, category)] = self._sends.labels(
                proc, category
            )
        child.value += amount

    def count_suspicion(self, proc: object, false_suspicion: bool) -> None:
        self._suspicions.labels(proc).inc()
        if false_suspicion:
            self._false_suspicions.labels(proc).inc()

    def observe_probe_rtt(self, proc: object, rtt: float) -> None:
        self._probe_rtt.labels(proc).observe(rtt)

    def observe_last_heard_age(self, proc: object, age: float) -> None:
        self._last_heard_age.labels(proc).observe(age)

    def observe_round_msgs(self, proc: object, msgs: float) -> None:
        """Gauge one probe round's detector fan-out size for ``proc``."""
        self._round_msgs.labels(proc).set(msgs)

    def set_shard_population(self, proc: object, cells: int, leaves: int) -> None:
        """Gauge one shard-directory replica's tracked population."""
        self._shard_cells.labels(proc).set(cells)
        self._shard_leaves.labels(proc).set(leaves)

    def observe_shard_convergence(self, cell: str, latency: float) -> None:
        """One roster write's cell-wide view-convergence latency."""
        self._shard_convergence.labels(cell).observe(latency)

    # ------------------------------------------------------------- snapshots

    def record_trace(self, trace: "RunTrace") -> None:
        """Mirror a finished run's trace-level accounting into gauges.

        Works at FULL and COUNTS trace levels (the underlying accessors do);
        called once post-run, so cost is irrelevant.
        """
        events = self.metrics.gauge(
            "repro_trace_events", "Trace events recorded, by event kind.",
            labels=("kind",),
        )
        kind_counts = trace.kind_counts().items()
        for kind, count in sorted(
            kind_counts, key=lambda kv: getattr(kv[0], "name", str(kv[0]))
        ):
            events.labels(getattr(kind, "name", kind)).set(count)
        sends = self.metrics.gauge(
            "repro_trace_sends", "Messages sent during the run, by category.",
            labels=("category",),
        )
        for category, count in sorted(trace.message_counts_by_category().items()):
            sends.labels(category).set(count)
        by_type = self.metrics.gauge(
            "repro_trace_sends_by_type",
            "Protocol messages sent during the run, by payload type.",
            labels=("payload",),
        )
        for payload, count in sorted(trace.message_counts_by_type().items()):
            by_type.labels(payload).set(count)
        self.metrics.gauge(
            "repro_processes_crashed", "Processes that crashed (ground truth)."
        ).set(len(trace.crashed()))
