"""Zero-dependency metrics registry: counters, gauges, histograms.

The registry is the numeric half of :mod:`repro.obs` (spans are the other).
It deliberately mirrors the Prometheus data model — metric *families* carry
a name, a help string and a tuple of label names; each distinct label-value
tuple owns one child instrument — because that is the shape every external
scraper understands, and :func:`repro.obs.exposition.render_prometheus`
dumps it verbatim.

Design constraints, in order:

1. **Disabled must be free.**  Nothing here is consulted when observability
   is off: instrumented layers hold an ``obs`` attribute that defaults to
   ``None`` and guard every instrumentation site with one attribute check
   (the same discipline as :class:`repro.sim.trace.TraceLevel`).
2. **Enabled must be cheap.**  The hot path of an enabled run is one dict
   lookup (label tuple → child) plus one float add.  Label values are
   stored raw (``ProcessId`` included) and stringified only at exposition
   time.
3. **Deterministic output.**  Families iterate sorted by name and children
   sorted by stringified label values, so two identical runs produce
   byte-identical dumps regardless of instrumentation order.

Histograms use fixed buckets (cumulative counts at exposition, like
Prometheus); :meth:`Histogram.quantile` gives the standard upper-bound
estimate, adequate for the percentile tables the benches print.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

#: Log-spaced defaults wide enough for both wall-clock seconds (aio/TCP
#: runs) and simulated time units (DES runs).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0,
)


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += amount


class Gauge:
    """Value that can go up and down (or be set outright)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with exact sum/count and min/max tracking.

    ``counts[i]`` is the number of observations ``<= uppers[i]`` minus those
    in earlier buckets (non-cumulative internally; exposition cumulates).
    The final implicit bucket is ``+Inf``.
    """

    __slots__ = ("uppers", "counts", "inf_count", "sum", "count", "min", "max")

    def __init__(self, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        uppers = tuple(sorted(float(b) for b in buckets))
        if not uppers:
            raise ValueError("a histogram needs at least one bucket bound")
        if any(b <= a for a, b in zip(uppers, uppers[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self.uppers = uppers
        self.counts = [0] * len(uppers)
        self.inf_count = 0
        self.sum = 0.0
        self.count = 0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for index, upper in enumerate(self.uppers):
            if value <= upper:
                self.counts[index] += 1
                return
        self.inf_count += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ``+Inf`` last."""
        pairs: list[tuple[float, int]] = []
        running = 0
        for upper, count in zip(self.uppers, self.counts):
            running += count
            pairs.append((upper, running))
        pairs.append((math.inf, running + self.inf_count))
        return pairs

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the ``q``-quantile (0 < q <= 1).

        Returns the smallest bucket bound covering rank ``ceil(q * count)``;
        the ``+Inf`` bucket reports the tracked exact maximum.  ``nan`` on an
        empty histogram.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        if self.count == 0:
            return math.nan
        rank = math.ceil(q * self.count)
        running = 0
        for upper, count in zip(self.uppers, self.counts):
            running += count
            if running >= rank:
                return upper
        return self.max


class MetricFamily:
    """One named metric with a fixed label schema and per-labelset children.

    Zero-label families proxy the child API directly (``family.inc()``),
    so unlabelled metrics read naturally at call sites.
    """

    __slots__ = ("name", "kind", "help", "label_names", "buckets", "_children")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        label_names: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = tuple(label_names)
        self.buckets = tuple(buckets) if buckets is not None else None
        self._children: dict[tuple, object] = {}

    def _make_child(self):
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        return Histogram(self.buckets if self.buckets is not None else DEFAULT_BUCKETS)

    def labels(self, *values):
        """The child instrument for one label-value tuple (created lazily)."""
        if len(values) != len(self.label_names):
            raise ValueError(
                f"{self.name} expects {len(self.label_names)} label value(s) "
                f"{self.label_names}, got {len(values)}"
            )
        child = self._children.get(values)
        if child is None:
            child = self._children[values] = self._make_child()
        return child

    # Zero-label conveniences ------------------------------------------------

    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)  # type: ignore[union-attr]

    def set(self, value: float) -> None:
        self.labels().set(value)  # type: ignore[union-attr]

    def dec(self, amount: float = 1.0) -> None:
        self.labels().dec(amount)  # type: ignore[union-attr]

    def observe(self, value: float) -> None:
        self.labels().observe(value)  # type: ignore[union-attr]

    # Iteration --------------------------------------------------------------

    def children(self) -> list[tuple[tuple[str, ...], object]]:
        """``(stringified label values, child)`` pairs, deterministically
        ordered."""
        items = [
            (tuple(str(v) for v in key), child)
            for key, child in self._children.items()
        ]
        items.sort(key=lambda pair: pair[0])
        return items


class MetricsRegistry:
    """Namespace of metric families; registration is idempotent."""

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}

    def _register(
        self,
        name: str,
        kind: str,
        help: str,
        labels: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        existing = self._families.get(name)
        if existing is not None:
            if existing.kind != kind or existing.label_names != tuple(labels):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind} "
                    f"with labels {existing.label_names}"
                )
            return existing
        family = MetricFamily(name, kind, help=help, label_names=labels, buckets=buckets)
        self._families[name] = family
        return family

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        return self._register(name, "counter", help, labels)

    def gauge(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        return self._register(name, "gauge", help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        return self._register(name, "histogram", help, labels, buckets=buckets)

    def families(self) -> list[MetricFamily]:
        """All families, sorted by name (deterministic exposition order)."""
        return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    def snapshot(self) -> dict:
        """JSON-serialisable dump of every sample (used by chaos verdicts).

        Counters and gauges flatten to ``{"name{a=b}": value}``; histograms
        to ``{"name{a=b}": {"count", "sum", "p50", "p99", "max"}}``.
        """
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        for family in self.families():
            for label_values, child in family.children():
                key = _flat_name(family.name, family.label_names, label_values)
                if family.kind == "counter":
                    counters[key] = child.value  # type: ignore[attr-defined]
                elif family.kind == "gauge":
                    gauges[key] = child.value  # type: ignore[attr-defined]
                else:
                    hist: Histogram = child  # type: ignore[assignment]
                    histograms[key] = {
                        "count": hist.count,
                        "sum": hist.sum,
                        "p50": hist.quantile(0.50),
                        "p99": hist.quantile(0.99),
                        "max": hist.max if hist.count else math.nan,
                    }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}


def _flat_name(
    name: str, label_names: Iterable[str], label_values: Iterable[str]
) -> str:
    pairs = ",".join(f"{k}={v}" for k, v in zip(label_names, label_values))
    return f"{name}{{{pairs}}}" if pairs else name
