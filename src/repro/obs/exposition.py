"""Serialisation of an :class:`~repro.obs.Obs` capture.

Two formats:

* **JSONL** — one self-describing record per line (``meta`` header, then
  ``span`` and ``metric`` records).  This is the archival format: lossless,
  greppable, and what ``repro obs <file>`` reads back for summarisation.
* **Prometheus text exposition** — the ``# HELP``/``# TYPE`` format every
  scraper understands, for plugging a run into external dashboards.
  Histograms render cumulative ``_bucket{le=...}`` series plus ``_sum`` and
  ``_count``, counters get the conventional ``_total``-as-written name (we
  do not rename; catalogue names already end in ``_total`` where monotonic).

Both serialisers iterate the registry in its deterministic order, so equal
runs produce byte-identical files.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.obs import Obs
    from repro.obs.registry import MetricsRegistry

__all__ = ["write_jsonl", "load_jsonl", "render_prometheus", "write_prometheus"]


def write_jsonl(path: str | Path, obs: "Obs", meta: Optional[dict] = None) -> Path:
    """Write one run's spans + metrics to ``path`` as JSONL."""
    path = Path(path)
    lines: list[str] = []
    header = {"type": "meta", "format": "repro-obs/1"}
    if meta:
        header.update(meta)
    lines.append(json.dumps(header, sort_keys=True))
    for record in obs.spans.records:
        lines.append(json.dumps({"type": "span", **record}, sort_keys=True))
    snap = obs.metrics.snapshot()
    for kind in ("counters", "gauges"):
        for name, value in snap[kind].items():
            lines.append(
                json.dumps(
                    {"type": "metric", "kind": kind[:-1], "name": name, "value": value},
                    sort_keys=True,
                )
            )
    for name, stats in snap["histograms"].items():
        lines.append(
            json.dumps(
                {"type": "metric", "kind": "histogram", "name": name, **_finite(stats)},
                sort_keys=True,
            )
        )
    path.write_text("\n".join(lines) + "\n")
    return path


def load_jsonl(path: str | Path) -> list[dict]:
    """Parse a JSONL capture back into its records (blank lines skipped)."""
    records = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


def _finite(stats: dict) -> dict:
    """JSON has no NaN/Inf; swap them for None so the file stays standard."""
    return {
        k: (None if isinstance(v, float) and not math.isfinite(v) else v)
        for k, v in stats.items()
    }


# --------------------------------------------------------- Prometheus text


def render_prometheus(registry: "MetricsRegistry") -> str:
    """Render the registry in the Prometheus text exposition format."""
    out: list[str] = []
    for family in registry.families():
        out.append(f"# HELP {family.name} {_escape_help(family.help)}")
        out.append(f"# TYPE {family.name} {family.kind}")
        for label_values, child in family.children():
            label_str = _labels(family.label_names, label_values)
            if family.kind in ("counter", "gauge"):
                out.append(f"{family.name}{label_str} {_num(child.value)}")
            else:
                for upper, cumulative in child.cumulative():
                    le = "+Inf" if math.isinf(upper) else _num(upper)
                    bucket_labels = _labels(
                        family.label_names + ("le",), label_values + (le,)
                    )
                    out.append(f"{family.name}_bucket{bucket_labels} {cumulative}")
                out.append(f"{family.name}_sum{label_str} {_num(child.sum)}")
                out.append(f"{family.name}_count{label_str} {child.count}")
    return "\n".join(out) + "\n" if out else ""


def write_prometheus(path: str | Path, registry: "MetricsRegistry") -> Path:
    path = Path(path)
    path.write_text(render_prometheus(registry))
    return path


def _labels(names: tuple[str, ...], values: tuple[str, ...]) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label(value)}"' for name, value in zip(names, values)
    )
    return "{" + pairs + "}"


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _num(value: float) -> str:
    """Render floats compactly: integral values lose the trailing ``.0``."""
    if isinstance(value, float) and value.is_integer() and math.isfinite(value):
        return str(int(value))
    return repr(value)
