"""Aggregation of an obs capture into human-readable percentile tables.

Consumes either a live :class:`~repro.obs.Obs` or the records loaded from a
JSONL capture (``repro obs <file>``), and renders the table the acceptance
criteria name: per-span-kind count / p50 / p90 / p99 / max, with the two
headline quantities — detection latency and reconfiguration duration —
called out first, followed by counters and gauges.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Obs

__all__ = ["percentile", "span_stats", "summarize", "summarize_records", "summary_dict"]

#: Span names whose percentiles answer the paper's headline questions.
HEADLINE_SPANS = (
    ("detector.detection", "detection latency"),
    ("reconfig.total", "reconfiguration duration"),
)


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile over raw samples (exact, no interpolation)."""
    if not values:
        return math.nan
    if not 0.0 < q <= 1.0:
        raise ValueError(f"q must be in (0, 1], got {q}")
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def span_stats(records: Iterable[dict]) -> dict[str, dict]:
    """Group span records by name → {count, p50, p90, p99, max, sum}."""
    by_name: dict[str, list[float]] = {}
    for record in records:
        if record.get("type", "span") != "span" and "duration" not in record:
            continue
        if "duration" not in record:
            continue
        by_name.setdefault(record["name"], []).append(record["duration"])
    stats: dict[str, dict] = {}
    for name in sorted(by_name):
        durations = by_name[name]
        stats[name] = {
            "count": len(durations),
            "p50": percentile(durations, 0.50),
            "p90": percentile(durations, 0.90),
            "p99": percentile(durations, 0.99),
            "max": max(durations),
            "sum": sum(durations),
        }
    return stats


def summarize_records(records: Iterable[dict]) -> str:
    """Render a full capture (JSONL records) as the ``repro obs`` report."""
    records = list(records)
    spans = [r for r in records if r.get("type") == "span" or "duration" in r]
    metrics = [r for r in records if r.get("type") == "metric"]
    meta = next((r for r in records if r.get("type") == "meta"), None)

    lines: list[str] = []
    if meta:
        described = {k: v for k, v in meta.items() if k not in ("type", "format")}
        if described:
            pairs = "  ".join(f"{k}={v}" for k, v in sorted(described.items()))
            lines.append(f"run: {pairs}")
            lines.append("")

    stats = span_stats(spans)

    lines.append("headline")
    lines.append(f"  {'quantity':<28} {'count':>6} {'p50':>10} {'p99':>10} {'max':>10}")
    for span_name, title in HEADLINE_SPANS:
        row = stats.get(span_name)
        if row is None:
            lines.append(f"  {title:<28} {'-':>6} {'-':>10} {'-':>10} {'-':>10}")
        else:
            lines.append(
                f"  {title:<28} {row['count']:>6} {_fmt(row['p50']):>10}"
                f" {_fmt(row['p99']):>10} {_fmt(row['max']):>10}"
            )
    lines.append("")

    if stats:
        lines.append("spans")
        lines.append(
            f"  {'name':<24} {'count':>6} {'p50':>10} {'p90':>10} {'p99':>10} {'max':>10}"
        )
        for name, row in stats.items():
            lines.append(
                f"  {name:<24} {row['count']:>6} {_fmt(row['p50']):>10}"
                f" {_fmt(row['p90']):>10} {_fmt(row['p99']):>10} {_fmt(row['max']):>10}"
            )
        lines.append("")

    counters = [m for m in metrics if m.get("kind") == "counter"]
    gauges = [m for m in metrics if m.get("kind") == "gauge"]
    histograms = [m for m in metrics if m.get("kind") == "histogram"]
    if counters:
        lines.append("counters")
        for m in sorted(counters, key=lambda m: m["name"]):
            lines.append(f"  {m['name']:<48} {_fmt(m['value']):>12}")
        lines.append("")
    if gauges:
        lines.append("gauges")
        for m in sorted(gauges, key=lambda m: m["name"]):
            lines.append(f"  {m['name']:<48} {_fmt(m['value']):>12}")
        lines.append("")
    if histograms:
        lines.append("histograms")
        for m in sorted(histograms, key=lambda m: m["name"]):
            lines.append(
                f"  {m['name']:<48} count={m.get('count', 0)}"
                f" p50={_fmt(m.get('p50'))} p99={_fmt(m.get('p99'))}"
                f" max={_fmt(m.get('max'))}"
            )
        lines.append("")

    if not spans and not metrics:
        lines.append("(capture is empty)")
    return "\n".join(lines).rstrip() + "\n"


def summarize(obs: "Obs") -> str:
    """Render a live capture (used by ``--metrics-out`` console echo)."""
    return summarize_records(_records_of(obs))


def summary_dict(obs: "Obs") -> dict:
    """Compact JSON-able summary for embedding in verdicts / bench payloads."""
    return {
        "spans": span_stats(obs.spans.records),
        **obs.metrics.snapshot(),
    }


def _records_of(obs: "Obs") -> list[dict]:
    records: list[dict] = [{"type": "span", **r} for r in obs.spans.records]
    snap = obs.metrics.snapshot()
    for kind in ("counters", "gauges"):
        for name, value in snap[kind].items():
            records.append(
                {"type": "metric", "kind": kind[:-1], "name": name, "value": value}
            )
    for name, stats in snap["histograms"].items():
        records.append({"type": "metric", "kind": "histogram", "name": name, **stats})
    return records


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        if math.isnan(value):
            return "-"
        if value.is_integer() and abs(value) < 1e9:
            return str(int(value))
        return f"{value:.4g}"
    return str(value)
