"""Wire codec: serialise protocol messages to/from JSON.

The simulator passes Python objects by reference; a real deployment needs
bytes.  This codec gives every protocol message (and the detector's
ping/pong) a stable, versioned JSON encoding, used by the TCP transport in
:mod:`repro.aio.tcp` and usable by any other integration.

Design notes:

* encoding is explicit per message type — no pickling, no reflection on
  arbitrary classes — so the wire format is auditable and injection-safe;
* ``ProcessId`` round-trips as ``[name, incarnation]``;
* every frame carries a ``t`` (type) tag and the codec version, so future
  revisions can interoperate.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Optional

from repro.errors import ReproError
from repro.ids import ProcessId
from repro.detectors.heartbeat import Ping, Pong
from repro.core.messages import (
    Commit,
    FaultyNotice,
    Interrogate,
    InterrogateOk,
    Invite,
    JoinRequest,
    Op,
    Plan,
    Propose,
    ProposeOk,
    ReconfigCommit,
    StateTransfer,
    UpdateOk,
)

__all__ = ["CodecError", "encode", "decode", "encode_bytes", "decode_bytes"]

#: Bump when the wire format changes incompatibly.
WIRE_VERSION = 1


class CodecError(ReproError):
    """Raised for malformed frames or unknown message types."""


# --------------------------------------------------------------------------
# primitives
# --------------------------------------------------------------------------


def _pid_out(proc: ProcessId) -> list:
    return [proc.name, proc.incarnation]


def _pid_in(raw: Any) -> ProcessId:
    try:
        name, incarnation = raw
        return ProcessId(str(name), int(incarnation))
    except (TypeError, ValueError) as exc:
        raise CodecError(f"malformed process id: {raw!r}") from exc


def _pids_out(procs) -> list:
    return [_pid_out(p) for p in procs]


def _pids_in(raw: Any) -> tuple[ProcessId, ...]:
    if not isinstance(raw, list):
        raise CodecError(f"expected a list of process ids, got {raw!r}")
    return tuple(_pid_in(item) for item in raw)


def _op_out(op: Optional[Op]) -> Optional[list]:
    if op is None:
        return None
    return [op.kind, _pid_out(op.target)]


def _op_in(raw: Any) -> Optional[Op]:
    if raw is None:
        return None
    try:
        kind, target = raw
        return Op(str(kind), _pid_in(target))
    except (TypeError, ValueError) as exc:
        raise CodecError(f"malformed op: {raw!r}") from exc


def _ops_in(raw: Any) -> tuple[Op, ...]:
    if not isinstance(raw, list):
        raise CodecError(f"expected a list of ops, got {raw!r}")
    ops = []
    for item in raw:
        op = _op_in(item)
        if op is None:
            raise CodecError("null op inside an op sequence")
        ops.append(op)
    return tuple(ops)


def _plan_out(plan: Plan) -> list:
    return [_op_out(plan.op), _pid_out(plan.coord), plan.version]


def _plan_in(raw: Any) -> Plan:
    try:
        op, coord, version = raw
        return Plan(_op_in(op), _pid_in(coord), None if version is None else int(version))
    except (TypeError, ValueError) as exc:
        raise CodecError(f"malformed plan: {raw!r}") from exc


def _plans_in(raw: Any) -> tuple[Plan, ...]:
    if not isinstance(raw, list):
        raise CodecError(f"expected a list of plans, got {raw!r}")
    return tuple(_plan_in(item) for item in raw)


# --------------------------------------------------------------------------
# per-type encoders/decoders
# --------------------------------------------------------------------------

_ENCODERS: dict[type, Callable[[Any], dict]] = {
    FaultyNotice: lambda m: {"target": _pid_out(m.target)},
    JoinRequest: lambda m: {"joiner": _pid_out(m.joiner)},
    Invite: lambda m: {"op": _op_out(m.op), "version": m.version},
    UpdateOk: lambda m: {"version": m.version},
    Commit: lambda m: {
        "op": _op_out(m.op),
        "version": m.version,
        "contingent": _op_out(m.contingent),
        "faulty": _pids_out(m.faulty),
        "recovered": _pids_out(m.recovered),
    },
    StateTransfer: lambda m: {
        "view": _pids_out(m.view),
        "version": m.version,
        "seq": [_op_out(op) for op in m.seq],
        "mgr": _pid_out(m.mgr),
        "contingent": _op_out(m.contingent),
        "faulty": _pids_out(m.faulty),
    },
    Interrogate: lambda m: {"hi_faulty": _pids_out(m.hi_faulty)},
    InterrogateOk: lambda m: {
        "version": m.version,
        "seq": [_op_out(op) for op in m.seq],
        "plans": [_plan_out(p) for p in m.plans],
    },
    Propose: lambda m: {
        "ops": [_op_out(op) for op in m.ops],
        "version": m.version,
        "invis": _op_out(m.invis),
        "faulty": _pids_out(m.faulty),
    },
    ProposeOk: lambda m: {"version": m.version},
    ReconfigCommit: lambda m: {
        "ops": [_op_out(op) for op in m.ops],
        "version": m.version,
        "invis": _op_out(m.invis),
        "faulty": _pids_out(m.faulty),
    },
    Ping: lambda m: {"nonce": m.nonce},
    Pong: lambda m: {"nonce": m.nonce},
}

_DECODERS: dict[str, Callable[[dict], Any]] = {
    "FaultyNotice": lambda d: FaultyNotice(target=_pid_in(d["target"])),
    "JoinRequest": lambda d: JoinRequest(joiner=_pid_in(d["joiner"])),
    "Invite": lambda d: Invite(op=_require_op(d["op"]), version=int(d["version"])),
    "UpdateOk": lambda d: UpdateOk(version=int(d["version"])),
    "Commit": lambda d: Commit(
        op=_require_op(d["op"]),
        version=int(d["version"]),
        contingent=_op_in(d["contingent"]),
        faulty=_pids_in(d["faulty"]),
        recovered=_pids_in(d["recovered"]),
    ),
    "StateTransfer": lambda d: StateTransfer(
        view=_pids_in(d["view"]),
        version=int(d["version"]),
        seq=_ops_in(d["seq"]),
        mgr=_pid_in(d["mgr"]),
        contingent=_op_in(d["contingent"]),
        faulty=_pids_in(d["faulty"]),
    ),
    "Interrogate": lambda d: Interrogate(hi_faulty=_pids_in(d["hi_faulty"])),
    "InterrogateOk": lambda d: InterrogateOk(
        version=int(d["version"]),
        seq=_ops_in(d["seq"]),
        plans=_plans_in(d["plans"]),
    ),
    "Propose": lambda d: Propose(
        ops=_ops_in(d["ops"]),
        version=int(d["version"]),
        invis=_op_in(d["invis"]),
        faulty=_pids_in(d["faulty"]),
    ),
    "ProposeOk": lambda d: ProposeOk(version=int(d["version"])),
    "ReconfigCommit": lambda d: ReconfigCommit(
        ops=_ops_in(d["ops"]),
        version=int(d["version"]),
        invis=_op_in(d["invis"]),
        faulty=_pids_in(d["faulty"]),
    ),
    "Ping": lambda d: Ping(nonce=int(d["nonce"])),
    "Pong": lambda d: Pong(nonce=int(d["nonce"])),
}


def _require_op(raw: Any) -> Op:
    op = _op_in(raw)
    if op is None:
        raise CodecError("required op is null")
    return op


# --------------------------------------------------------------------------
# public API
# --------------------------------------------------------------------------


def encode(
    payload: object,
    sender: ProcessId,
    receiver: ProcessId,
    category: str = "protocol",
    msg_id: Optional[int] = None,
) -> dict:
    """Encode one message as a JSON-compatible frame dict.

    ``msg_id`` (when given) travels with the frame so both endpoints record
    the same message identity — the property checkers use it to match RECV
    events to SENDs when reconstructing causality.
    """
    encoder = _ENCODERS.get(type(payload))
    if encoder is None:
        raise CodecError(f"no encoding for payload type {type(payload).__name__}")
    frame = {
        "v": WIRE_VERSION,
        "t": type(payload).__name__,
        "from": _pid_out(sender),
        "to": _pid_out(receiver),
        "cat": category,
        "body": encoder(payload),
    }
    if msg_id is not None:
        frame["id"] = msg_id
    return frame


def decode(frame: dict) -> tuple[ProcessId, ProcessId, object, str, Optional[int]]:
    """Decode a frame back to ``(sender, receiver, payload, category, msg_id)``."""
    if not isinstance(frame, dict):
        raise CodecError(f"frame is not an object: {frame!r}")
    if frame.get("v") != WIRE_VERSION:
        raise CodecError(f"unsupported wire version: {frame.get('v')!r}")
    decoder = _DECODERS.get(frame.get("t"))  # type: ignore[arg-type]
    if decoder is None:
        raise CodecError(f"unknown message type: {frame.get('t')!r}")
    try:
        payload = decoder(frame["body"])
        sender = _pid_in(frame["from"])
        receiver = _pid_in(frame["to"])
        category = str(frame.get("cat", "protocol"))
    except KeyError as exc:
        raise CodecError(f"frame missing field {exc}") from exc
    raw_id = frame.get("id")
    msg_id = int(raw_id) if raw_id is not None else None
    return sender, receiver, payload, category, msg_id


def encode_bytes(
    payload: object,
    sender: ProcessId,
    receiver: ProcessId,
    category: str = "protocol",
    msg_id: Optional[int] = None,
) -> bytes:
    """Encode to newline-terminated JSON bytes (the TCP framing)."""
    frame = encode(payload, sender, receiver, category, msg_id)
    return json.dumps(frame, separators=(",", ":")).encode() + b"\n"


def decode_bytes(data: bytes) -> tuple[ProcessId, ProcessId, object, str, Optional[int]]:
    """Decode one newline-framed JSON message."""
    try:
        frame = json.loads(data)
    except (json.JSONDecodeError, UnicodeDecodeError, ValueError) as exc:
        raise CodecError(f"invalid JSON frame: {exc}") from exc
    return decode(frame)
