"""Wire codec: serialise protocol messages to/from JSON or compact binary.

The simulator passes Python objects by reference; a real deployment needs
bytes.  This codec gives every protocol message (and the detector's
ping/pong) two stable, versioned encodings, used by the TCP transport in
:mod:`repro.aio.tcp` and usable by any other integration:

* **JSON** (wire version 1): human-auditable, newline-framed
  (:func:`encode`/:func:`decode`, :func:`encode_bytes`/:func:`decode_bytes`);
* **compact binary** (wire version 2): ``struct``-packed, length-prefix
  framed, ~4-6x smaller and substantially cheaper to encode
  (:func:`encode_compact`/:func:`decode_compact`).

Design notes:

* encoding is explicit per message type — no pickling, no reflection on
  arbitrary classes — so the wire format is auditable and injection-safe;
* ``ProcessId`` round-trips as ``[name, incarnation]`` (JSON) or a
  length-prefixed UTF-8 name plus a u32 incarnation (compact);
* every frame carries a type tag and the codec version, so future
  revisions can interoperate;
* view versions are non-negative by construction; both decoders reject
  negative versions rather than admitting impossible protocol states.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Callable, Optional

from repro.errors import ReproError
from repro.ids import ProcessId
from repro.detectors.heartbeat import Ping, Pong
from repro.core.messages import (
    Commit,
    FaultyNotice,
    Interrogate,
    InterrogateOk,
    Invite,
    JoinRequest,
    Op,
    Plan,
    Propose,
    ProposeOk,
    ReconfigCommit,
    StateTransfer,
    UpdateOk,
)

__all__ = [
    "CodecError",
    "encode",
    "decode",
    "encode_bytes",
    "decode_bytes",
    "encode_compact",
    "decode_compact",
]

#: Bump when the JSON wire format changes incompatibly.
WIRE_VERSION = 1

#: Wire version of the compact binary format (shares the version space).
COMPACT_WIRE_VERSION = 2


class CodecError(ReproError):
    """Raised for malformed frames or unknown message types."""


# --------------------------------------------------------------------------
# primitives
# --------------------------------------------------------------------------


def _version_in(raw: Any) -> int:
    """Validate a view version: an int, never negative (views only grow)."""
    try:
        version = int(raw)
    except (TypeError, ValueError) as exc:
        raise CodecError(f"malformed version: {raw!r}") from exc
    if version < 0:
        raise CodecError(f"negative version: {version}")
    return version


def _pid_out(proc: ProcessId) -> list:
    return [proc.name, proc.incarnation]


def _pid_in(raw: Any) -> ProcessId:
    try:
        name, incarnation = raw
        return ProcessId(str(name), int(incarnation))
    except (TypeError, ValueError) as exc:
        raise CodecError(f"malformed process id: {raw!r}") from exc


def _pids_out(procs) -> list:
    return [_pid_out(p) for p in procs]


def _pids_in(raw: Any) -> tuple[ProcessId, ...]:
    if not isinstance(raw, list):
        raise CodecError(f"expected a list of process ids, got {raw!r}")
    return tuple(_pid_in(item) for item in raw)


def _op_out(op: Optional[Op]) -> Optional[list]:
    if op is None:
        return None
    return [op.kind, _pid_out(op.target)]


def _op_in(raw: Any) -> Optional[Op]:
    if raw is None:
        return None
    try:
        kind, target = raw
        return Op(str(kind), _pid_in(target))
    except (TypeError, ValueError) as exc:
        raise CodecError(f"malformed op: {raw!r}") from exc


def _ops_in(raw: Any) -> tuple[Op, ...]:
    if not isinstance(raw, list):
        raise CodecError(f"expected a list of ops, got {raw!r}")
    ops = []
    for item in raw:
        op = _op_in(item)
        if op is None:
            raise CodecError("null op inside an op sequence")
        ops.append(op)
    return tuple(ops)


def _plan_out(plan: Plan) -> list:
    return [_op_out(plan.op), _pid_out(plan.coord), plan.version]


def _plan_in(raw: Any) -> Plan:
    try:
        op, coord, version = raw
        return Plan(_op_in(op), _pid_in(coord), None if version is None else _version_in(version))
    except (TypeError, ValueError) as exc:
        raise CodecError(f"malformed plan: {raw!r}") from exc


def _plans_in(raw: Any) -> tuple[Plan, ...]:
    if not isinstance(raw, list):
        raise CodecError(f"expected a list of plans, got {raw!r}")
    return tuple(_plan_in(item) for item in raw)


# --------------------------------------------------------------------------
# per-type encoders/decoders
# --------------------------------------------------------------------------

_ENCODERS: dict[type, Callable[[Any], dict]] = {
    FaultyNotice: lambda m: {"target": _pid_out(m.target)},
    JoinRequest: lambda m: {"joiner": _pid_out(m.joiner)},
    Invite: lambda m: {"op": _op_out(m.op), "version": m.version},
    UpdateOk: lambda m: {"version": m.version},
    Commit: lambda m: {
        "op": _op_out(m.op),
        "version": m.version,
        "contingent": _op_out(m.contingent),
        "faulty": _pids_out(m.faulty),
        "recovered": _pids_out(m.recovered),
    },
    StateTransfer: lambda m: {
        "view": _pids_out(m.view),
        "version": m.version,
        "seq": [_op_out(op) for op in m.seq],
        "mgr": _pid_out(m.mgr),
        "contingent": _op_out(m.contingent),
        "faulty": _pids_out(m.faulty),
    },
    Interrogate: lambda m: {"hi_faulty": _pids_out(m.hi_faulty)},
    InterrogateOk: lambda m: {
        "version": m.version,
        "seq": [_op_out(op) for op in m.seq],
        "plans": [_plan_out(p) for p in m.plans],
    },
    Propose: lambda m: {
        "ops": [_op_out(op) for op in m.ops],
        "version": m.version,
        "invis": _op_out(m.invis),
        "faulty": _pids_out(m.faulty),
    },
    ProposeOk: lambda m: {"version": m.version},
    ReconfigCommit: lambda m: {
        "ops": [_op_out(op) for op in m.ops],
        "version": m.version,
        "invis": _op_out(m.invis),
        "faulty": _pids_out(m.faulty),
    },
    Ping: lambda m: {"nonce": m.nonce},
    Pong: lambda m: {"nonce": m.nonce},
}

_DECODERS: dict[str, Callable[[dict], Any]] = {
    "FaultyNotice": lambda d: FaultyNotice(target=_pid_in(d["target"])),
    "JoinRequest": lambda d: JoinRequest(joiner=_pid_in(d["joiner"])),
    "Invite": lambda d: Invite(op=_require_op(d["op"]), version=_version_in(d["version"])),
    "UpdateOk": lambda d: UpdateOk(version=_version_in(d["version"])),
    "Commit": lambda d: Commit(
        op=_require_op(d["op"]),
        version=_version_in(d["version"]),
        contingent=_op_in(d["contingent"]),
        faulty=_pids_in(d["faulty"]),
        recovered=_pids_in(d["recovered"]),
    ),
    "StateTransfer": lambda d: StateTransfer(
        view=_pids_in(d["view"]),
        version=_version_in(d["version"]),
        seq=_ops_in(d["seq"]),
        mgr=_pid_in(d["mgr"]),
        contingent=_op_in(d["contingent"]),
        faulty=_pids_in(d["faulty"]),
    ),
    "Interrogate": lambda d: Interrogate(hi_faulty=_pids_in(d["hi_faulty"])),
    "InterrogateOk": lambda d: InterrogateOk(
        version=_version_in(d["version"]),
        seq=_ops_in(d["seq"]),
        plans=_plans_in(d["plans"]),
    ),
    "Propose": lambda d: Propose(
        ops=_ops_in(d["ops"]),
        version=_version_in(d["version"]),
        invis=_op_in(d["invis"]),
        faulty=_pids_in(d["faulty"]),
    ),
    "ProposeOk": lambda d: ProposeOk(version=_version_in(d["version"])),
    "ReconfigCommit": lambda d: ReconfigCommit(
        ops=_ops_in(d["ops"]),
        version=_version_in(d["version"]),
        invis=_op_in(d["invis"]),
        faulty=_pids_in(d["faulty"]),
    ),
    "Ping": lambda d: Ping(nonce=int(d["nonce"])),
    "Pong": lambda d: Pong(nonce=int(d["nonce"])),
}


def _require_op(raw: Any) -> Op:
    op = _op_in(raw)
    if op is None:
        raise CodecError("required op is null")
    return op


# --------------------------------------------------------------------------
# public API
# --------------------------------------------------------------------------


def encode(
    payload: object,
    sender: ProcessId,
    receiver: ProcessId,
    category: str = "protocol",
    msg_id: Optional[int] = None,
) -> dict:
    """Encode one message as a JSON-compatible frame dict.

    ``msg_id`` (when given) travels with the frame so both endpoints record
    the same message identity — the property checkers use it to match RECV
    events to SENDs when reconstructing causality.
    """
    encoder = _ENCODERS.get(type(payload))
    if encoder is None:
        raise CodecError(f"no encoding for payload type {type(payload).__name__}")
    frame = {
        "v": WIRE_VERSION,
        "t": type(payload).__name__,
        "from": _pid_out(sender),
        "to": _pid_out(receiver),
        "cat": category,
        "body": encoder(payload),
    }
    if msg_id is not None:
        frame["id"] = msg_id
    return frame


def decode(frame: dict) -> tuple[ProcessId, ProcessId, object, str, Optional[int]]:
    """Decode a frame back to ``(sender, receiver, payload, category, msg_id)``."""
    if not isinstance(frame, dict):
        raise CodecError(f"frame is not an object: {frame!r}")
    if frame.get("v") != WIRE_VERSION:
        raise CodecError(f"unsupported wire version: {frame.get('v')!r}")
    decoder = _DECODERS.get(frame.get("t"))  # type: ignore[arg-type]
    if decoder is None:
        raise CodecError(f"unknown message type: {frame.get('t')!r}")
    try:
        payload = decoder(frame["body"])
        sender = _pid_in(frame["from"])
        receiver = _pid_in(frame["to"])
        category = str(frame.get("cat", "protocol"))
    except KeyError as exc:
        raise CodecError(f"frame missing field {exc}") from exc
    raw_id = frame.get("id")
    msg_id = int(raw_id) if raw_id is not None else None
    return sender, receiver, payload, category, msg_id


def encode_bytes(
    payload: object,
    sender: ProcessId,
    receiver: ProcessId,
    category: str = "protocol",
    msg_id: Optional[int] = None,
) -> bytes:
    """Encode to newline-terminated JSON bytes (the TCP framing)."""
    frame = encode(payload, sender, receiver, category, msg_id)
    return json.dumps(frame, separators=(",", ":")).encode() + b"\n"


def decode_bytes(data: bytes) -> tuple[ProcessId, ProcessId, object, str, Optional[int]]:
    """Decode one newline-framed JSON message."""
    try:
        frame = json.loads(data)
    except (json.JSONDecodeError, UnicodeDecodeError, ValueError) as exc:
        raise CodecError(f"invalid JSON frame: {exc}") from exc
    return decode(frame)


# --------------------------------------------------------------------------
# compact binary codec (wire version 2)
# --------------------------------------------------------------------------
#
# Frame layout (all integers big-endian):
#
#   magic:u8 (0xC3) | wire_version:u8 (2) | type_id:u8 | flags:u8
#   sender:pid | receiver:pid | category:u8 [+ str if code 255]
#   [msg_id:i64 if flags bit 0] | body (per message type)
#
# with primitives:
#
#   str  = u16 byte length + UTF-8 bytes
#   pid  = str name + u32 incarnation
#   op   = u8 kind code (0=add, 1=remove) + pid
#   opt  = u8 presence flag (0/1) + value
#   list = u16 count + items
#   version = u32 (negative versions are impossible protocol states and
#             are rejected on both paths)

_COMPACT_MAGIC = 0xC3

_U16 = struct.Struct("!H")
_U32 = struct.Struct("!I")
_I64 = struct.Struct("!q")

_CAT_CODES = {"protocol": 0, "detector": 1}
_CAT_NAMES = {0: "protocol", 1: "detector"}
_CAT_OTHER = 255

_OP_KIND_CODES = {"add": 0, "remove": 1}
_OP_KIND_NAMES = {0: "add", 1: "remove"}


def _w_u16(buf: bytearray, value: int) -> None:
    buf += _U16.pack(value)


def _w_str(buf: bytearray, text: str) -> None:
    data = text.encode("utf-8")
    if len(data) > 0xFFFF:
        raise CodecError(f"string too long for compact frame ({len(data)} bytes)")
    buf += _U16.pack(len(data))
    buf += data


def _w_pid(buf: bytearray, proc: ProcessId) -> None:
    _w_str(buf, proc.name)
    if not 0 <= proc.incarnation <= 0xFFFFFFFF:
        raise CodecError(f"incarnation out of range: {proc.incarnation}")
    buf += _U32.pack(proc.incarnation)


def _w_version(buf: bytearray, version: int) -> None:
    if not 0 <= version <= 0xFFFFFFFF:
        raise CodecError(f"version out of range: {version}")
    buf += _U32.pack(version)


def _w_opt_version(buf: bytearray, version: Optional[int]) -> None:
    if version is None:
        buf.append(0)
    else:
        buf.append(1)
        _w_version(buf, version)


def _w_i64(buf: bytearray, value: int) -> None:
    try:
        buf += _I64.pack(value)
    except struct.error as exc:
        raise CodecError(f"integer out of range: {value}") from exc


def _w_op(buf: bytearray, op: Op) -> None:
    code = _OP_KIND_CODES.get(op.kind)
    if code is None:
        raise CodecError(f"unknown op kind: {op.kind!r}")
    buf.append(code)
    _w_pid(buf, op.target)


def _w_opt_op(buf: bytearray, op: Optional[Op]) -> None:
    if op is None:
        buf.append(0)
    else:
        buf.append(1)
        _w_op(buf, op)


def _w_count(buf: bytearray, items) -> None:
    if len(items) > 0xFFFF:
        raise CodecError(f"sequence too long for compact frame ({len(items)})")
    buf += _U16.pack(len(items))


def _w_pids(buf: bytearray, procs) -> None:
    _w_count(buf, procs)
    for proc in procs:
        _w_pid(buf, proc)


def _w_ops(buf: bytearray, ops) -> None:
    _w_count(buf, ops)
    for op in ops:
        _w_op(buf, op)


def _w_plan(buf: bytearray, plan: Plan) -> None:
    _w_opt_op(buf, plan.op)
    _w_pid(buf, plan.coord)
    _w_opt_version(buf, plan.version)


def _w_plans(buf: bytearray, plans) -> None:
    _w_count(buf, plans)
    for plan in plans:
        _w_plan(buf, plan)


class _Reader:
    """Bounds-checked cursor over one compact frame."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, size: int) -> bytes:
        end = self.pos + size
        if end > len(self.data):
            raise CodecError(
                f"truncated frame: wanted {size} bytes at offset {self.pos}, "
                f"frame is {len(self.data)} bytes"
            )
        chunk = self.data[self.pos : end]
        self.pos = end
        return chunk

    def u8(self) -> int:
        return self.take(1)[0]

    def u16(self) -> int:
        return _U16.unpack(self.take(2))[0]

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def i64(self) -> int:
        return _I64.unpack(self.take(8))[0]

    def str_(self) -> str:
        length = self.u16()
        try:
            return self.take(length).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CodecError(f"invalid UTF-8 in compact frame: {exc}") from exc

    def pid(self) -> ProcessId:
        return ProcessId(self.str_(), self.u32())

    def flag(self) -> bool:
        value = self.u8()
        if value > 1:
            raise CodecError(f"invalid presence flag: {value}")
        return bool(value)

    def op(self) -> Op:
        code = self.u8()
        kind = _OP_KIND_NAMES.get(code)
        if kind is None:
            raise CodecError(f"unknown op kind code: {code}")
        return Op(kind, self.pid())

    def opt_op(self) -> Optional[Op]:
        return self.op() if self.flag() else None

    def pids(self) -> tuple[ProcessId, ...]:
        return tuple(self.pid() for _ in range(self.u16()))

    def ops(self) -> tuple[Op, ...]:
        return tuple(self.op() for _ in range(self.u16()))

    def plan(self) -> Plan:
        op = self.opt_op()
        coord = self.pid()
        version = self.u32() if self.flag() else None
        return Plan(op, coord, version)

    def plans(self) -> tuple[Plan, ...]:
        return tuple(self.plan() for _ in range(self.u16()))


def _enc_commit(buf: bytearray, m: Commit) -> None:
    _w_op(buf, m.op)
    _w_version(buf, m.version)
    _w_opt_op(buf, m.contingent)
    _w_pids(buf, m.faulty)
    _w_pids(buf, m.recovered)


def _enc_state_transfer(buf: bytearray, m: StateTransfer) -> None:
    _w_pids(buf, m.view)
    _w_version(buf, m.version)
    _w_ops(buf, m.seq)
    _w_pid(buf, m.mgr)
    _w_opt_op(buf, m.contingent)
    _w_pids(buf, m.faulty)


def _enc_interrogate_ok(buf: bytearray, m: InterrogateOk) -> None:
    _w_version(buf, m.version)
    _w_ops(buf, m.seq)
    _w_plans(buf, m.plans)


def _enc_propose_like(buf: bytearray, m) -> None:
    _w_ops(buf, m.ops)
    _w_version(buf, m.version)
    _w_opt_op(buf, m.invis)
    _w_pids(buf, m.faulty)


_COMPACT_ENCODERS: dict[type, tuple[int, Callable[[bytearray, Any], None]]] = {
    FaultyNotice: (1, lambda buf, m: _w_pid(buf, m.target)),
    JoinRequest: (2, lambda buf, m: _w_pid(buf, m.joiner)),
    Invite: (3, lambda buf, m: (_w_op(buf, m.op), _w_version(buf, m.version))),
    UpdateOk: (4, lambda buf, m: _w_version(buf, m.version)),
    Commit: (5, _enc_commit),
    StateTransfer: (6, _enc_state_transfer),
    Interrogate: (7, lambda buf, m: _w_pids(buf, m.hi_faulty)),
    InterrogateOk: (8, _enc_interrogate_ok),
    Propose: (9, _enc_propose_like),
    ProposeOk: (10, lambda buf, m: _w_version(buf, m.version)),
    ReconfigCommit: (11, _enc_propose_like),
    Ping: (12, lambda buf, m: _w_i64(buf, m.nonce)),
    Pong: (13, lambda buf, m: _w_i64(buf, m.nonce)),
}

_COMPACT_DECODERS: dict[int, Callable[[_Reader], Any]] = {
    1: lambda r: FaultyNotice(target=r.pid()),
    2: lambda r: JoinRequest(joiner=r.pid()),
    3: lambda r: Invite(op=r.op(), version=r.u32()),
    4: lambda r: UpdateOk(version=r.u32()),
    5: lambda r: Commit(
        op=r.op(),
        version=r.u32(),
        contingent=r.opt_op(),
        faulty=r.pids(),
        recovered=r.pids(),
    ),
    6: lambda r: StateTransfer(
        view=r.pids(),
        version=r.u32(),
        seq=r.ops(),
        mgr=r.pid(),
        contingent=r.opt_op(),
        faulty=r.pids(),
    ),
    7: lambda r: Interrogate(hi_faulty=r.pids()),
    8: lambda r: InterrogateOk(version=r.u32(), seq=r.ops(), plans=r.plans()),
    9: lambda r: Propose(
        ops=r.ops(), version=r.u32(), invis=r.opt_op(), faulty=r.pids()
    ),
    10: lambda r: ProposeOk(version=r.u32()),
    11: lambda r: ReconfigCommit(
        ops=r.ops(), version=r.u32(), invis=r.opt_op(), faulty=r.pids()
    ),
    12: lambda r: Ping(nonce=r.i64()),
    13: lambda r: Pong(nonce=r.i64()),
}


def encode_compact(
    payload: object,
    sender: ProcessId,
    receiver: ProcessId,
    category: str = "protocol",
    msg_id: Optional[int] = None,
) -> bytes:
    """Encode one message as a compact binary frame (wire version 2).

    The frame carries no length prefix of its own; stream transports add
    one (:mod:`repro.aio.tcp` uses a u32 prefix).
    """
    entry = _COMPACT_ENCODERS.get(type(payload))
    if entry is None:
        raise CodecError(f"no encoding for payload type {type(payload).__name__}")
    type_id, body = entry
    buf = bytearray()
    buf.append(_COMPACT_MAGIC)
    buf.append(COMPACT_WIRE_VERSION)
    buf.append(type_id)
    buf.append(1 if msg_id is not None else 0)
    _w_pid(buf, sender)
    _w_pid(buf, receiver)
    code = _CAT_CODES.get(category)
    if code is None:
        buf.append(_CAT_OTHER)
        _w_str(buf, category)
    else:
        buf.append(code)
    if msg_id is not None:
        _w_i64(buf, msg_id)
    body(buf, payload)
    return bytes(buf)


def decode_compact(
    data: bytes,
) -> tuple[ProcessId, ProcessId, object, str, Optional[int]]:
    """Decode one compact frame back to
    ``(sender, receiver, payload, category, msg_id)``."""
    reader = _Reader(bytes(data))
    magic = reader.u8()
    if magic != _COMPACT_MAGIC:
        raise CodecError(f"bad magic byte: {magic:#04x}")
    version = reader.u8()
    if version != COMPACT_WIRE_VERSION:
        raise CodecError(f"unsupported wire version: {version!r}")
    type_id = reader.u8()
    decoder = _COMPACT_DECODERS.get(type_id)
    if decoder is None:
        raise CodecError(f"unknown message type id: {type_id}")
    flags = reader.u8()
    if flags > 1:
        raise CodecError(f"unknown flag bits: {flags:#04x}")
    sender = reader.pid()
    receiver = reader.pid()
    cat_code = reader.u8()
    if cat_code == _CAT_OTHER:
        category = reader.str_()
    else:
        named = _CAT_NAMES.get(cat_code)
        if named is None:
            raise CodecError(f"unknown category code: {cat_code}")
        category = named
    msg_id = reader.i64() if flags & 1 else None
    payload = decoder(reader)
    if reader.pos != len(reader.data):
        raise CodecError(
            f"trailing bytes after frame: {len(reader.data) - reader.pos}"
        )
    return sender, receiver, payload, category, msg_id
