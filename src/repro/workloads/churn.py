"""Failure/join schedules for the benchmarks.

A :class:`ChurnSchedule` is a list of timed crash/join events that can be
applied to any :class:`~repro.core.service.MembershipCluster`, letting one
workload drive the paper's protocol and every baseline identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Literal

from repro.core.service import MembershipCluster

__all__ = ["ChurnEvent", "ChurnSchedule", "streak_schedule", "mixed_churn"]


@dataclass(frozen=True, slots=True)
class ChurnEvent:
    """One timed membership disturbance."""

    time: float
    kind: Literal["crash", "join"]
    subject: str  # process *name* (clusters resolve incarnations)


@dataclass
class ChurnSchedule:
    """A reproducible sequence of churn events."""

    events: list[ChurnEvent] = field(default_factory=list)

    def apply(self, cluster: MembershipCluster) -> None:
        """Arm every event on the cluster (before or after start)."""
        for event in self.events:
            if event.kind == "crash":
                cluster.crash(event.subject, at=event.time)
            else:
                cluster.join(event.subject, at=event.time)

    @property
    def crashes(self) -> int:
        return sum(1 for e in self.events if e.kind == "crash")

    @property
    def joins(self) -> int:
        return sum(1 for e in self.events if e.kind == "join")


def streak_schedule(
    n: int,
    victims: int,
    start: float = 5.0,
    spacing: float = 0.5,
    keep_coordinator: bool = True,
) -> ChurnSchedule:
    """Back-to-back failures — the compressed-algorithm workload (§7.2).

    Crashes ``victims`` members at ``spacing`` intervals.  With
    ``keep_coordinator=True`` the coordinator survives (best-case streak:
    "n - 1 successive failure updates, none of which are Mgr"); victims are
    taken most junior first so rank bookkeeping is exercised.
    """
    if victims >= n:
        raise ValueError("cannot crash the whole group")
    names = [f"p{i}" for i in range(n)]
    if keep_coordinator:
        chosen = list(reversed(names[1:]))[:victims]
    else:
        # The coordinator goes first (the interesting case: every later
        # exclusion happens under its successor).
        chosen = [names[0]] + list(reversed(names[1:]))[: victims - 1]
    events = [
        ChurnEvent(time=start + i * spacing, kind="crash", subject=name)
        for i, name in enumerate(chosen)
    ]
    return ChurnSchedule(events)


def mixed_churn(
    n: int,
    operations: int,
    seed: int = 0,
    start: float = 5.0,
    mean_gap: float = 30.0,
    join_fraction: float = 0.5,
) -> ChurnSchedule:
    """The "fully online" workload of Section 7: interleaved joins/crashes.

    Keeps the group population safe: never crashes below a quorum of the
    *current* simulated population, and joins fresh names (``j0``, ``j1``,
    ...) or re-incarnations of crashed ones.  The coordinator of the moment
    is fair game — reconfigurations are part of online operation.
    """
    rng = random.Random(seed)
    alive = [f"p{i}" for i in range(n)]
    next_join = 0
    events: list[ChurnEvent] = []
    t = start
    for _ in range(operations):
        t += rng.expovariate(1.0 / mean_gap)
        want_join = rng.random() < join_fraction
        # Keep a solid majority alive so progress is always possible.
        if not want_join and len(alive) <= max(3, n // 2 + 1):
            want_join = True
        if want_join:
            name = f"j{next_join}"
            next_join += 1
            events.append(ChurnEvent(time=t, kind="join", subject=name))
            alive.append(name)
        else:
            victim = rng.choice(alive)
            alive.remove(victim)
            events.append(ChurnEvent(time=t, kind="crash", subject=victim))
    return ChurnSchedule(events)
