"""Canonical failure scenarios shared by experiments and benchmarks.

These are the workhorse runs behind the §7.2 best-case tables, the E9
baseline comparison, and the complexity benchmarks.  They used to be
duplicated between ``analysis/experiments.py`` and ``benchmarks/conftest.py``;
this module is now the single definition both import.

Every function here is a **top-level, picklable callable** taking only
picklable arguments, so the :mod:`repro.runner` worker pool can ship them to
subprocesses.  The ``*_run`` variants return the full cluster (for callers
that assert on traces); the ``*_messages`` variants return just the
protocol-message count (cheap to return across a process boundary, and
JSON-serialisable for the scenario cache).
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.messages import breakdown
from repro.core.member import GMPMember
from repro.core.service import MembershipCluster
from repro.sim.network import FixedDelay

__all__ = [
    "single_failure_run",
    "double_failure_run",
    "coordinator_failure_run",
    "churn_run",
    "single_failure_messages",
    "double_failure_messages",
]


def single_failure_run(
    n: int,
    seed: int = 0,
    member_class: Optional[type[GMPMember]] = None,
    victim: str | None = None,
) -> MembershipCluster:
    """One crash of a junior member in a group of size n, fixed delays.

    Crashing ``p0`` (the coordinator) instead exercises one full
    reconfiguration — pass ``victim="p0"`` for the 5n-9 column.
    """
    kwargs = {} if member_class is None else {"member_class": member_class}
    cluster = MembershipCluster.of_size(
        n, seed=seed, delay_model=FixedDelay(1.0), **kwargs
    )
    cluster.start()
    cluster.crash(victim or f"p{n - 1}", at=5.0)
    cluster.settle()
    return cluster


def double_failure_run(n: int, seed: int = 0) -> MembershipCluster:
    """Two junior members crash back to back: the compressed second round."""
    cluster = MembershipCluster.of_size(n, seed=seed, delay_model=FixedDelay(1.0))
    cluster.start()
    cluster.crash(f"p{n - 1}", at=5.0)
    cluster.crash(f"p{n - 2}", at=5.1)
    cluster.settle()
    return cluster


def coordinator_failure_run(n: int, seed: int = 0) -> MembershipCluster:
    """Crash the coordinator: one full reconfiguration."""
    return single_failure_run(n, seed=seed, victim="p0")


def churn_run(
    n: int,
    seed: int = 0,
    trace_level: "TraceLevel | str | int" = "full",
    obs=None,
) -> MembershipCluster:
    """Join-churn-exclude at size ``n``: the ``bench --scale`` workload.

    One joiner at t=5 (StateTransfer + add round), the most junior member
    crashing at t=40 (a plain update round), and the coordinator crashing
    at t=60 (a full three-phase reconfiguration) — the three structurally
    distinct view changes in a single run.  Pass ``trace_level="counts"``
    for throughput measurements; the default FULL trace stays byte-for-byte
    what it was before the level knob existed.  ``obs`` (a
    :class:`repro.obs.Obs`) captures metrics and protocol spans.
    """
    cluster = MembershipCluster.of_size(
        n,
        seed=seed,
        delay_model=FixedDelay(1.0),
        trace_level=trace_level,
        obs=obs,
    )
    cluster.start()
    cluster.join("j0", at=5.0)
    cluster.crash(f"p{n - 1}", at=40.0)
    cluster.crash("p0", at=60.0)
    cluster.settle(max_events=5_000_000)
    return cluster


def single_failure_messages(
    n: int,
    seed: int = 0,
    member_class: Optional[type[GMPMember]] = None,
    victim: str | None = None,
) -> int:
    """Protocol-message count of :func:`single_failure_run`."""
    cluster = single_failure_run(n, seed=seed, member_class=member_class, victim=victim)
    return breakdown(cluster.trace).algorithm


def double_failure_messages(n: int, seed: int = 0) -> int:
    """Protocol-message count of :func:`double_failure_run`."""
    return breakdown(double_failure_run(n, seed=seed).trace).algorithm
