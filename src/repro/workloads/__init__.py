"""Workload generators and canned paper scenarios.

:mod:`repro.workloads.churn` generates failure/join schedules (single
failures, streaks, storms, mixed online churn) used by the benchmarks;
:mod:`repro.workloads.failures` holds the canonical single/double/coordinator
failure runs shared by the experiment tables, the benchmarks, and the
:mod:`repro.runner` worker pool;
:mod:`repro.workloads.scenarios` reconstructs the paper's named scenarios —
Table 1's initiation matrix, Figure 3's interrupted commit, Figure 4's
concurrent reconfigurers, and Figure 11's two invisible partial commits —
as ready-to-run cluster setups.
"""

from repro.workloads.churn import ChurnEvent, ChurnSchedule, streak_schedule, mixed_churn
from repro.workloads.failures import (
    coordinator_failure_run,
    double_failure_messages,
    double_failure_run,
    single_failure_messages,
    single_failure_run,
)
from repro.workloads.scenarios import (
    Table1Row,
    run_table1_row,
    run_figure3,
    run_figure4,
    run_figure11,
    TABLE1_EXPECTED,
)

__all__ = [
    "ChurnEvent",
    "ChurnSchedule",
    "streak_schedule",
    "mixed_churn",
    "single_failure_run",
    "double_failure_run",
    "coordinator_failure_run",
    "single_failure_messages",
    "double_failure_messages",
    "Table1Row",
    "run_table1_row",
    "run_figure3",
    "run_figure4",
    "run_figure11",
    "TABLE1_EXPECTED",
]
