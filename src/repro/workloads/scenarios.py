"""The paper's named scenarios, reconstructed as runnable schedules.

Each function builds a cluster, arms the exact interleaving the paper's
figure or table describes (scripted suspicions, per-channel delays, crashes
mid-broadcast), runs it to quiescence, and returns the cluster for
assertions.  These are the sharpest tests in the repository: they force the
protocol down the paths the correctness proofs exist for.

* :func:`run_table1_row` — the initiation matrix of Table 1 (§4.2).
* :func:`run_figure3` — Mgr dies mid-commit; no system view exists until a
  reconfigurer restores one (§4).
* :func:`run_figure4` — two concurrent reconfigurers; the majority rule
  lets at most one install a view (§4.3).
* :func:`run_figure11` — two invisible partial commits for the same version;
  a third reconfigurer must determine which one could have committed
  (§7.3 / Claim 7.2).  Run with the real member class the GetStable choice
  is exercised and safe; run with the two-phase strawman it guesses wrong
  and diverges.
* :func:`run_claim71` — the R/S split of Claim 7.1 (§7.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.member import GMPMember
from repro.core.service import MembershipCluster
from repro.ids import pid
from repro.model.events import EventKind
from repro.sim.failures import crash_after_matching_sends, payload_type_is
from repro.sim.network import FixedDelay, PerPairDelay

__all__ = [
    "Table1Row",
    "TABLE1_EXPECTED",
    "run_table1_row",
    "run_figure3",
    "run_figure4",
    "run_figure11",
    "run_claim71",
    "initiators_of",
]


def initiators_of(cluster: MembershipCluster) -> set[str]:
    """Names of processes that started a reconfiguration in the run."""
    return {
        event.proc.name
        for event in cluster.trace.events_of_kind(EventKind.INTERNAL)
        if event.detail.startswith("initiating reconfiguration")
    }


# ---------------------------------------------------------------------------
# Table 1 — multiple reconfiguration initiations
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Table1Row:
    """One row of Table 1: p's actual state × q's belief about p."""

    p_actually_up: bool
    q_thinks_p_up: bool
    #: the paper's entries: does q initiate ("no" / "eventually" / "yes")?
    q_initiates: str
    #: does p initiate?
    p_initiates: bool


TABLE1_EXPECTED: list[Table1Row] = [
    Table1Row(p_actually_up=True, q_thinks_p_up=True, q_initiates="no", p_initiates=True),
    Table1Row(p_actually_up=False, q_thinks_p_up=True, q_initiates="eventually", p_initiates=False),
    Table1Row(p_actually_up=True, q_thinks_p_up=False, q_initiates="yes", p_initiates=True),
    Table1Row(p_actually_up=False, q_thinks_p_up=False, q_initiates="yes", p_initiates=False),
]


def run_table1_row(row: Table1Row, seed: int = 0, obs=None) -> MembershipCluster:
    """Run one Table 1 scenario.

    Group ``[m, p, q, r, s]`` with ``rank(m) > rank(p) > rank(q)``; m
    crashes, and both p and q believe m faulty.  The row parameters control
    whether p has actually failed and whether q believes it has.
    """
    cluster = MembershipCluster(
        [pid(n) for n in ("m", "p", "q", "r", "s")],
        seed=seed,
        detector="scripted",
        delay_model=FixedDelay(1.0),
        obs=obs,
    )
    cluster.start()
    cluster.crash("m", at=5.0)
    if not row.p_actually_up:
        cluster.crash("p", at=6.0)
    # Everyone learns of m's crash at t=10 (scripted "time-out").
    for observer in ("p", "q", "r", "s"):
        if row.p_actually_up or observer != "p":
            cluster.suspect(observer, "m", at=10.0)
    if not row.q_thinks_p_up:
        # q's (possibly spurious) detection of p at the same time.
        cluster.suspect("q", "p", at=10.0)
    elif not row.p_actually_up:
        # Row 2: q waits for p to reconfigure, eventually times out on it.
        cluster.suspect("q", "p", at=30.0)
    # Junior members eventually time out on whichever initiator stalls;
    # give them the same beliefs q has so the run can complete.
    if not row.p_actually_up or not row.q_thinks_p_up:
        for observer in ("r", "s"):
            cluster.suspect(observer, "p", at=35.0)
    cluster.settle()
    return cluster


# ---------------------------------------------------------------------------
# Figure 3 — Mgr fails in the middle of an update commit broadcast
# ---------------------------------------------------------------------------


def run_figure3(
    n: int = 5,
    commit_sends_before_crash: int = 1,
    seed: int = 0,
    member_class: type[GMPMember] | None = None,
    obs=None,
) -> MembershipCluster:
    """Mgr commits a removal to only ``commit_sends_before_crash`` members.

    Along the resulting cut no system view exists (some processes installed
    version 1, others never will from Mgr); the reconfiguration algorithm
    must detect the possibly-invisible commit and restore a unique view.
    """
    cluster = MembershipCluster.of_size(
        n, seed=seed, delay_model=FixedDelay(1.0), member_class=member_class, obs=obs
    )
    victim = cluster.resolve(f"p{n - 1}")
    crash_after_matching_sends(
        cluster.network,
        cluster.resolve("p0"),
        payload_type_is("Commit"),
        after=commit_sends_before_crash,
        detail="figure-3 mid-commit crash",
    )
    cluster.start()
    cluster.crash(victim, at=5.0)
    cluster.settle()
    return cluster


# ---------------------------------------------------------------------------
# Figure 4 — concurrent reconfigurers and the majority requirement
# ---------------------------------------------------------------------------


def run_figure4(seed: int = 0, obs=None) -> MembershipCluster:
    """Two concurrent reconfigurers, q and r, with crossing suspicions.

    Group ``[m, q, r, a, b, c]``: m crashes; q initiates believing m faulty;
    r initiates believing m *and q* faulty.  Whichever assembles a majority
    first installs the next view; GMP-2's uniqueness must survive.
    """
    cluster = MembershipCluster(
        [pid(n) for n in ("m", "q", "r", "a", "b", "c")],
        seed=seed,
        detector="scripted",
        delay_model=FixedDelay(1.0),
        obs=obs,
    )
    cluster.start()
    cluster.crash("m", at=5.0)
    cluster.suspect("q", "m", at=10.0)
    # r concurrently believes both m and q faulty (q's detection of m is
    # real; r's detection of q is spurious — Figure 4's crossing pattern).
    cluster.suspect("r", "m", at=10.0)
    cluster.suspect("r", "q", at=10.0)
    # The outer processes time out on m as well.
    for observer in ("a", "b", "c"):
        cluster.suspect(observer, "m", at=10.0)
    cluster.settle()
    return cluster


# ---------------------------------------------------------------------------
# Figure 11 — two invisible partial commits for the same version
# ---------------------------------------------------------------------------


def run_figure11(
    seed: int = 0,
    member_class: type[GMPMember] | None = None,
    member_kwargs: dict | None = None,
    strawman: bool = False,
    obs=None,
) -> MembershipCluster:
    """The Claim 7.2 / Proposition 5.5-5.6 schedule: two plans for version 1.

    View (seniority order): ``[m, p, a, b, e, f, g, h, w]`` (n=9, mu=5).

    1. ``a`` crashes.  m begins excluding it, but its Invite rides slow
       channels to everyone except w, and m crashes at t=6 — so w alone
       holds m's plan ``(remove a : m : 1)``.
    2. p reconfigures at t=8 believing m faulty.  The p→w channel is slow,
       so p (spuriously) times out on w and completes Phase I without
       seeing m's plan; it therefore proposes m's removal for version 1
       (line D.4).  Its proposal broadcast is ordered ``b, f, g, h`` first
       (the paper's Bcast fixes no order) and p crashes after those four
       sends — so f, g, h hold p's plan, while e and w never hear of it
       (and, crucially, never adopt p's spurious suspicion of w).
    3. e reconfigures at t=15 (believing m, p, a faulty, plus a spurious
       suspicion of b) and its Phase I responses contain **two** proposals
       for version 1: m's (from w) and p's (from f, g, h).  Proposition 5.6
       says only the junior proposer's — p's — can have reached a commit,
       and ``GetStable`` must choose it.

    With ``strawman=True`` the schedule is adapted to the two-phase
    baseline: p commits directly after its interrogation and dies after the
    commit reaches the single witness b.  Because the strawman has no
    proposal phase, p's plan never spread to f, g, h; e sees only m's plan,
    trusts it, installs ``remove(a)`` as version 1, and diverges from the
    witness — the unavoidable wrong guess of Claim 7.2.  Pass
    ``member_class=TwoPhaseReconfigMember`` together with ``strawman=True``.
    """
    delays = PerPairDelay(default=FixedDelay(1.0))
    names = ("m", "p", "a", "b", "e", "f", "g", "h", "w")
    members = [pid(n) for n in names]
    for slow in ("p", "b", "e", "f", "g", "h"):
        delays.set(pid("m"), pid(slow), 10_000.0)
    delays.set(pid("p"), pid("w"), 10_000.0)  # w never hears p at all
    cluster = MembershipCluster(
        members,
        seed=seed,
        detector="scripted",
        delay_model=delays,
        member_class=member_class,
        member_kwargs=member_kwargs,
        obs=obs,
    )
    # Choose p's broadcast order so its crash truncates the subset we need.
    cluster.member("p").broadcast_first = (pid("b"), pid("f"), pid("g"), pid("h"))
    if strawman:
        # Two-phase baseline: p commits right after Phase I; the commit
        # reaches only the witness b before p dies.
        crash_after_matching_sends(
            cluster.network,
            cluster.resolve("p"),
            payload_type_is("ReconfigCommit"),
            after=1,
            detail="figure-11: p dies after committing to the witness b",
        )
    else:
        # Three-phase protocol: p dies mid proposal broadcast, after the
        # sends to b, f, g, h.
        crash_after_matching_sends(
            cluster.network,
            cluster.resolve("p"),
            payload_type_is("Propose"),
            after=4,
            detail="figure-11: p dies mid proposal broadcast",
        )
    cluster.start()
    cluster.crash("a", at=2.0)
    # m times out on a and starts the exclusion that will be cut short.
    cluster.suspect("m", "a", at=4.0)
    for observer in ("p", "b", "e", "f", "g", "h", "w"):
        cluster.suspect(observer, "a", at=4.0)
    cluster.crash("m", at=6.0)
    # p initiates once it times out on m (a real crash), then times out on
    # w whose answer crawls along the slow channel (a spurious detection).
    cluster.suspect("p", "m", at=8.0)
    cluster.suspect("p", "w", at=10.0)
    # e initiates after p's crash; its spurious detection of b keeps the
    # witness out of its Phase I (b is excluded later, satisfying GMP-5).
    cluster.suspect("e", "p", at=15.0)
    cluster.suspect("e", "b", at=15.0)
    cluster.settle()
    return cluster


# ---------------------------------------------------------------------------
# Claim 7.1 — one-phase algorithms diverge under coordinator failure
# ---------------------------------------------------------------------------


def run_claim71(
    seed: int = 0,
    member_class: type[GMPMember] | None = None,
    obs=None,
) -> MembershipCluster:
    """The R/S split: ``faulty_R(Mgr)`` and ``faulty_S(r)`` concurrently.

    R = {p1, p3, p5} suspects the coordinator p0; S = {p0, p2, p4} suspects
    p1.  Under a one-phase algorithm both p0 and p1 commit removals that
    only their own side receives (S1 isolates the other side), installing
    divergent version-1 views.  The paper's protocol cannot commit either
    way without a majority and stays safe.
    """
    cluster = MembershipCluster.of_size(
        6,
        seed=seed,
        detector="scripted",
        delay_model=FixedDelay(1.0),
        member_class=member_class,
        obs=obs,
    )
    cluster.start()
    for observer in ("p1", "p3", "p5"):
        cluster.suspect(observer, "p0", at=5.0)
    for observer in ("p0", "p2", "p4"):
        cluster.suspect(observer, "p1", at=5.0)
    cluster.settle()
    return cluster
