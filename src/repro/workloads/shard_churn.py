"""Leaf-churn workload for the sharded membership layer.

One :class:`CellChurnPlan` describes the canonical per-cell churn the
``--scale-sharded`` bench applies everywhere: crash the cell's most junior
leaf (the detector must convict it and the delegate report it up for
expulsion), then admit a replacement.  The *same* plan drives both arms of
the bench — the full control simulation (GMP core + cells, via
:meth:`~repro.shardgroup.cluster.ShardGroupCluster` helpers) and the
satellite leaf-only cells (via a :class:`~repro.shardgroup.cell.CoreStub`
script) — so their convergence numbers are directly comparable.

The invariant under test is the paper's hierarchy argument (Section 8):
leaf churn is absorbed entirely by the shard layer.  Admissions,
expulsions, and failures of leaves must never force a reconfiguration of
the core group, whose three-phase protocol cost is reserved for core
failures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.ids import ProcessId, pid

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.shardgroup.cluster import ShardGroupCluster

__all__ = ["CRASH_AT", "ADMIT_AT", "CellChurnPlan", "standard_churn"]

#: sim-time the cell's most junior leaf crashes.
CRASH_AT = 6.0

#: sim-time the replacement leaf is admitted.
ADMIT_AT = 10.0


@dataclass(frozen=True, slots=True)
class CellChurnPlan:
    """One cell's scripted churn: a crash-and-expel plus an admission."""

    cell: str
    crash_leaf: ProcessId
    crash_at: float
    admit_leaf: ProcessId
    admit_at: float

    def apply_to_cluster(self, cluster: "ShardGroupCluster") -> None:
        """Arm this plan on a control-arm :class:`ShardGroupCluster`."""
        cluster.crash_leaf(self.crash_leaf, at=self.crash_at)
        cluster.schedule_admit(self.cell, self.admit_leaf, at=self.admit_at)


def standard_churn(
    cell: str,
    roster: Sequence[ProcessId],
    crash_at: float = CRASH_AT,
    admit_at: float = ADMIT_AT,
) -> CellChurnPlan:
    """The canonical plan: crash the most junior leaf, admit ``<cell>x0``."""
    if not roster:
        raise ValueError("churn needs a non-empty roster")
    return CellChurnPlan(cell, roster[-1], crash_at, pid(f"{cell}x0"), admit_at)
