"""Detector QoS harness: heartbeat vs SWIM vs Lifeguard, head to head.

The paper treats the detection mechanism as an input (F1) and proves the
membership protocol safe under *any* detector.  This module measures what
the choice of detector costs operationally — the three axes of the
``detectors`` section of ``BENCH_results.json`` (``repro bench
--detectors``, docs/DETECTORS.md):

* **detection latency** — time (and probe rounds) from a real crash to the
  first surviving observer's verdict;
* **false-positive rate** — never-crashed processes convicted anyway,
  counted both as distinct victims and as (observer, victim) pairs;
* **message load** — detector messages per process per probe round, the
  axis where heartbeat's O(n) fan-out and SWIM's O(1) probing diverge.

Hosts here are *detector-only*: minimal :class:`~repro.sim.process.
SimProcess` subclasses satisfying the :class:`~repro.detectors.base.
Suspectable` contract with a fixed member list and no membership protocol
on top.  That isolates detector QoS from GMP reconfiguration cost, keeps
n = 1000 cells affordable, and still exercises the exact detector code the
cluster runs (``core/service.py`` wires the same classes).

Two chaos plans bound the design space:

* ``crash-only`` — healthy uniform delays; two junior members crash.
  Baseline latency/load, zero expected false positives.
* ``slow-flaky`` — same crashes, but ~5% of the group sits behind
  :class:`SlowLinkDelay`: links touching a slow process draw heavy-tailed
  extra delay half the time.  Slow-but-live members look dead (the paper's
  "perceived failure"), and a slow process *itself* misjudges its healthy
  peers — the false-positive source Lifeguard's local-health multiplier
  suppresses.

Everything is deterministic per ``seed``: per-host detector RNGs are
sha256-derived (never :func:`hash` — it is salted per interpreter) and the
network's delay RNG is seeded by the same cell seed.
"""

from __future__ import annotations

import hashlib
import random
import time
from typing import Any, Iterable, Optional, Sequence

from repro.detectors import HeartbeatDetector, LifeguardDetector, SwimDetector
from repro.detectors.base import FailureDetector, NetworkDetector
from repro.ids import ProcessId, pid
from repro.sim.network import DelayModel, Network, UniformDelay
from repro.sim.process import SimProcess
from repro.sim.scheduler import Scheduler
from repro.sim.trace import RunTrace, TraceLevel

__all__ = [
    "ROUND_PERIOD",
    "QOS_DURATION",
    "QOS_PLANS",
    "SlowLinkDelay",
    "DetectorHost",
    "QosRun",
    "detector_qos_run",
    "detector_qos_cell",
]

#: canonical probe-round length shared by every detector in the matrix —
#: also the round length ``bench --scale`` uses to normalise churn-cell
#: message counts into msgs/process/round.
ROUND_PERIOD = 2.0

#: simulated seconds per cell (25 probe rounds).
QOS_DURATION = 50.0

#: the chaos plans every (detector, n) pair runs under.
QOS_PLANS = ("crash-only", "slow-flaky")

#: sim-times at which the two junior victims crash.
_CRASH_TIMES = (10.0, 12.0)

#: slow-flaky plan shape: fraction of the group behind slow links, the
#: extra one-way delay drawn on a flaky leg, and the per-leg flake odds.
_SLOW_FRACTION = 0.05
_SLOW_EXTRA = 6.0
_FLAKE_PROB = 0.5


class SlowLinkDelay:
    """Wrap a base :class:`DelayModel`; links touching ``slow`` go bad.

    Each leg that touches a slow process independently draws, with
    probability ``flake_prob``, an extra delay uniform in
    ``[extra, 2*extra]`` on top of the base model — a heavy tail that
    dwarfs any fixed probe timeout, which is the point: a slow-but-live
    process is indistinguishable from a crashed one (Section 1).
    """

    def __init__(
        self,
        base: DelayModel,
        slow: Iterable[ProcessId],
        extra: float = _SLOW_EXTRA,
        flake_prob: float = _FLAKE_PROB,
    ) -> None:
        self.base = base
        self.slow = frozenset(slow)
        self.extra = extra
        self.flake_prob = flake_prob

    def delay(
        self, sender: ProcessId, receiver: ProcessId, rng: random.Random
    ) -> float:
        value = self.base.delay(sender, receiver, rng)
        if sender in self.slow or receiver in self.slow:
            if rng.random() < self.flake_prob:
                value += self.extra * (1.0 + rng.random())
        return value


class DetectorHost(SimProcess):
    """Minimal Suspectable process hosting one detector, no GMP on top.

    The member list is fixed for the whole run (verdicts only mark targets
    faulty, matching the GMP's remove-don't-rejoin semantics); suspicion
    verdicts accumulate in :attr:`suspected`.
    """

    def __init__(
        self,
        pid_: ProcessId,
        network: Network,
        detector: FailureDetector,
        members: Sequence[ProcessId],
    ) -> None:
        super().__init__(pid_, network)
        self.detector = detector
        self._members = tuple(members)
        self._member_set = frozenset(members)
        self.suspected: set[ProcessId] = set()
        detector.attach(self)

    def on_start(self) -> None:
        self.detector.start()

    def current_members(self) -> tuple[ProcessId, ...]:
        return self._members

    def is_current_member(self, target: ProcessId) -> bool:
        return target in self._member_set

    def believes_faulty(self, target: ProcessId) -> bool:
        return target in self.suspected

    def on_suspect(self, target: ProcessId) -> None:
        self.suspected.add(target)

    def on_message(self, sender: ProcessId, payload: object) -> None:
        self.detector.on_message(sender, payload)


def _host_seed(seed: int, member: ProcessId) -> int:
    """Stable per-host RNG seed (sha256, not the salted builtin hash)."""
    digest = hashlib.sha256(f"qos:{seed}:{member}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def _slow_members(
    members: Sequence[ProcessId],
    victims: Iterable[ProcessId],
    fraction: float = _SLOW_FRACTION,
) -> frozenset[ProcessId]:
    """Pick ~``fraction`` of the group, index-spaced, skipping victims.

    Deterministic without any RNG so the slow set is identical across
    detector kinds at the same (n, seed) — the comparison stays paired.
    """
    excluded = set(victims)
    count = max(1, round(len(members) * fraction))
    step = max(1, len(members) // count)
    slow: list[ProcessId] = []
    for index in range(1, len(members), step):
        member = members[index]
        if member in excluded:
            continue
        slow.append(member)
        if len(slow) == count:
            break
    return frozenset(slow)


def _make_detector(
    kind: str, network: Network, seed: int, member: ProcessId
) -> FailureDetector:
    if kind == "heartbeat":
        return HeartbeatDetector(network, period=ROUND_PERIOD, timeout=8.0)
    if kind in ("swim", "lifeguard"):
        cls = SwimDetector if kind == "swim" else LifeguardDetector
        return cls(
            network,
            period=ROUND_PERIOD,
            rng=random.Random(_host_seed(seed, member)),
        )
    raise ValueError(f"unknown detector kind {kind!r}")


class QosRun:
    """One finished QoS run: the fabric plus its crash/slow ground truth."""

    def __init__(
        self,
        scheduler: Scheduler,
        network: Network,
        hosts: dict[ProcessId, DetectorHost],
        victims: tuple[ProcessId, ...],
        crash_times: dict[ProcessId, float],
        slow: frozenset[ProcessId],
        duration: float,
    ) -> None:
        self.scheduler = scheduler
        self.network = network
        self.hosts = hosts
        self.victims = victims
        self.crash_times = crash_times
        self.slow = slow
        self.duration = duration

    # ------------------------------------------------------------- QoS axes

    def detector_messages(self) -> int:
        return self.network.trace.message_counts_by_category().get("detector", 0)

    def msgs_per_process_per_round(self) -> float:
        rounds = self.duration / ROUND_PERIOD
        denom = len(self.hosts) * rounds
        return self.detector_messages() / denom if denom else 0.0

    def _first_post_crash_verdict(
        self, victim: ProcessId
    ) -> tuple[Optional[float], bool]:
        """Earliest strictly-post-crash suspicion of ``victim`` across the
        surviving observers, plus whether any observer had already convicted
        it at (or before) the crash instant."""
        crashed_at = self.crash_times[victim]
        first: Optional[float] = None
        convicted_pre_crash = False
        for host in self.hosts.values():
            if host.pid == victim:
                continue
            detector = host.detector
            if not isinstance(detector, NetworkDetector):
                continue
            when = detector.suspicion_times().get(victim)
            if when is None:
                continue
            if when <= crashed_at:
                # Every delay and timeout in the fabric is strictly
                # positive, so a verdict *caused* by the crash lands
                # strictly after it: this one is a false positive — and,
                # verdicts being permanent per observer (remove-don't-
                # rejoin), this observer can never re-detect post-crash.
                convicted_pre_crash = True
                continue
            if first is None or when < first:
                first = when
        return first, convicted_pre_crash

    def detection_latencies(self) -> dict[str, Optional[float]]:
        """Per victim: sim-time from crash to the first survivor's verdict.

        Only strictly-post-crash verdicts count — a conviction at or before
        the crash instant is a false positive, not a detection, and folding
        it in would report bogus 0.0 latencies whenever a false suspicion
        tick coincides with the crash.  A victim whose only convictions
        predate its crash is dropped from the mapping entirely (see
        :meth:`pre_crash_convicted`): no observer that judged it can still
        produce a measurement, so it must not sit in the latency
        denominator.  ``None`` means no surviving observer convicted the
        victim before the run ended (the liveness clause was not yet
        satisfied).
        """
        latencies: dict[str, Optional[float]] = {}
        for victim in self.victims:
            first, convicted_pre_crash = self._first_post_crash_verdict(victim)
            if first is not None:
                latencies[str(victim)] = first - self.crash_times[victim]
            elif not convicted_pre_crash:
                latencies[str(victim)] = None
        return latencies

    def pre_crash_convicted(self) -> list[str]:
        """Victims excluded from the latency denominator: falsely convicted
        at or before their crash, with no post-crash verdict from anyone."""
        excluded = []
        for victim in self.victims:
            first, convicted_pre_crash = self._first_post_crash_verdict(victim)
            if first is None and convicted_pre_crash:
                excluded.append(str(victim))
        return excluded

    def false_positives(self) -> dict[str, Any]:
        """Never-crashed processes convicted anyway: distinct + pairs."""
        crashed = self.network.trace.crashed()
        targets: set[ProcessId] = set()
        pairs = 0
        for host in self.hosts.values():
            wrongful = host.suspected - crashed
            targets |= wrongful
            pairs += len(wrongful)
        return {
            "distinct_targets": len(targets),
            "observer_target_pairs": pairs,
            "targets": sorted(str(t) for t in targets),
        }


def detector_qos_run(
    kind: str,
    n: int,
    plan: str = "crash-only",
    seed: int = 1,
    duration: float = QOS_DURATION,
    trace_level: TraceLevel | str | int = "counts",
    obs: Optional[Any] = None,
    max_events: int = 20_000_000,
) -> QosRun:
    """Run one detector-only group of size ``n`` under a chaos plan.

    ``plan`` is one of :data:`QOS_PLANS`; both crash the two most junior
    members at t=10 and t=12, ``slow-flaky`` additionally puts ~5% of the
    survivors behind :class:`SlowLinkDelay`.
    """
    if plan not in QOS_PLANS:
        raise ValueError(f"unknown QoS plan {plan!r} (expected one of {QOS_PLANS})")
    if n < 4:
        raise ValueError("QoS cells need n >= 4 (two victims must leave quorum)")
    members = [pid(f"q{i}") for i in range(n)]
    victims = (members[-1], members[-2])
    crash_times = dict(zip(victims, _CRASH_TIMES))
    slow = (
        _slow_members(members, victims)
        if plan == "slow-flaky"
        else frozenset()
    )
    base: DelayModel = UniformDelay(0.5, 2.0)
    delay_model: DelayModel = SlowLinkDelay(base, slow) if slow else base
    scheduler = Scheduler()
    trace = RunTrace(level=trace_level)
    network = Network(scheduler, trace, delay_model=delay_model, seed=seed)
    network.obs = obs
    hosts: dict[ProcessId, DetectorHost] = {}
    for member in members:
        detector = _make_detector(kind, network, seed, member)
        hosts[member] = DetectorHost(member, network, detector, members)
    for host in hosts.values():
        host.start()
    for victim, at in crash_times.items():
        scheduler.at(at, hosts[victim].crash)
    # Heartbeat's O(n^2) per-round traffic blows through the scheduler's
    # default event budget from n=250 up — the very cost the matrix exists
    # to show — so the cap is a parameter with lots of headroom.
    scheduler.run(until=duration, max_events=max_events)
    return QosRun(scheduler, network, hosts, victims, crash_times, slow, duration)


def detector_qos_cell(
    kind: str,
    n: int,
    plan: str = "crash-only",
    seed: int = 1,
    duration: float = QOS_DURATION,
) -> dict[str, Any]:
    """One JSON-able matrix cell: run + measure (top-level, picklable)."""
    start = time.perf_counter()  # lint: allow[DET101]
    run = detector_qos_run(kind, n, plan=plan, seed=seed, duration=duration)
    wall = time.perf_counter() - start  # lint: allow[DET101]
    latencies = run.detection_latencies()
    detected = [v for v in latencies.values() if v is not None]
    mean_latency = sum(detected) / len(detected) if detected else None
    msgs = run.detector_messages()
    return {
        "kind": kind,
        "n": n,
        "plan": plan,
        "seed": seed,
        "duration": duration,
        "wall_s": wall,
        "events": run.scheduler.events_run,
        "detector_msgs": msgs,
        "msgs_per_process_per_round": run.msgs_per_process_per_round(),
        "detection": {
            "latency_by_victim": latencies,
            "detected": len(detected),
            "victims": len(latencies),
            "excluded_pre_crash": run.pre_crash_convicted(),
            "mean_latency": mean_latency,
            "mean_latency_rounds": (
                mean_latency / ROUND_PERIOD if mean_latency is not None else None
            ),
        },
        "false_positives": run.false_positives(),
        "slow_members": sorted(str(m) for m in run.slow),
    }
