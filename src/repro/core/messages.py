"""Wire protocol of the GMP algorithms (Figures 2, 5, 8, 9, 10).

Every update-class message carries the *resulting* view version it concerns,
which implements both round matching and the "no messages from future views"
buffering rule of Section 3.  Reconfiguration-class messages are explicitly
exempt from buffering (footnote 10: "neither interrogation nor responses nor
commit messages will be buffered") because reconfiguration must be able to
run *between* processes at different versions.

Operations are first-class (:class:`Op`) since the final algorithm of
Section 7 parameterises every message by 'add' or 'remove'.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ids import ProcessId

__all__ = [
    "Op",
    "add",
    "remove",
    "Plan",
    "FaultyNotice",
    "JoinRequest",
    "Invite",
    "UpdateOk",
    "Commit",
    "StateTransfer",
    "Interrogate",
    "InterrogateOk",
    "Propose",
    "ProposeOk",
    "ReconfigCommit",
    "is_reconfiguration_message",
]


@dataclass(frozen=True, slots=True)
class Op:
    """One view-changing operation: add or remove exactly one process.

    Each invocation of the algorithm changes the view by exactly one
    process (Section 7's neighbouring-majorities argument depends on it).
    """

    kind: str  # 'add' | 'remove'
    target: ProcessId

    def __post_init__(self) -> None:
        if self.kind not in ("add", "remove"):
            raise ValueError(f"unknown op kind {self.kind!r}")

    @property
    def is_remove(self) -> bool:
        return self.kind == "remove"

    @property
    def is_add(self) -> bool:
        return self.kind == "add"

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.kind}({self.target})"


def add(target: ProcessId) -> Op:
    """Convenience constructor for an add operation."""
    return Op("add", target)


def remove(target: ProcessId) -> Op:
    """Convenience constructor for a remove operation."""
    return Op("remove", target)


@dataclass(frozen=True, slots=True)
class Plan:
    """An entry of ``next(p)``: the paper's triple ``(op : coord : version)``.

    A *placeholder* plan — the paper's ``(? : r : ?)`` recorded when p has
    answered r's interrogation but not yet seen its proposal — has
    ``op is None and version is None``.
    """

    op: Optional[Op]
    coord: ProcessId
    version: Optional[int]

    @property
    def is_placeholder(self) -> bool:
        return self.op is None or self.version is None

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        op = "?" if self.op is None else str(self.op)
        ver = "?" if self.version is None else str(self.version)
        return f"({op} : {self.coord} : {ver})"


# --------------------------------------------------------------------------
# Requests into the algorithm
# --------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class FaultyNotice:
    """Outer process -> Mgr: "I believe ``target`` faulty; start removal"."""

    target: ProcessId


@dataclass(frozen=True, slots=True)
class JoinRequest:
    """A (new incarnation of a) process asks to join the group."""

    joiner: ProcessId


# --------------------------------------------------------------------------
# Two-phase update (Figures 2, 8, 9)
# --------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Invite:
    """Phase I invitation: ``Invite(op(target))`` producing ``version``."""

    op: Op
    version: int


@dataclass(frozen=True, slots=True)
class UpdateOk:
    """Outer process's OK for the round producing ``version``.

    Sent in response to an Invite, or to a Commit whose contingent plan
    doubles as the next invitation (the compressed algorithm).
    """

    version: int


@dataclass(frozen=True, slots=True)
class Commit:
    """Phase II commit with piggybacked contingencies.

    ``Commit(op(target)) : Contingent(next_op(next_id) : Faulty : Recovered)``
    — the contingent plan is the invitation for the next round (compression,
    Section 3.1), and the Faulty/Recovered lists are the gossip channel F2.
    """

    op: Op
    version: int
    contingent: Optional[Op]
    faulty: tuple[ProcessId, ...] = ()
    recovered: tuple[ProcessId, ...] = ()


@dataclass(frozen=True, slots=True)
class StateTransfer:
    """Coordinator -> freshly added member: full group state.

    The paper assumes the initial membership is commonly known at startup;
    a joiner needs the equivalent bootstrap, so its copy of the add-commit
    carries the whole state (view in seniority order, version, committed
    operation sequence, the contingent plan it should OK, and the current
    coordinator).
    """

    view: tuple[ProcessId, ...]
    version: int
    seq: tuple[Op, ...]
    mgr: ProcessId
    contingent: Optional[Op]
    faulty: tuple[ProcessId, ...] = ()


# --------------------------------------------------------------------------
# Three-phase reconfiguration (Figures 5, 10)
# --------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Interrogate:
    """Reconfiguration Phase I: interrogation by initiator r.

    Carries ``HiFaulty(r)`` — every higher-ranked process r believes faulty.
    Recipients adopt those beliefs (rank is commonly known, so "other
    processes can infer the contents of HiFaulty(p)"; carrying it makes the
    inference explicit), which is what makes r the highest-ranked non-faulty
    process in every respondent's eyes.
    """

    hi_faulty: tuple[ProcessId, ...]


@dataclass(frozen=True, slots=True)
class InterrogateOk:
    """Phase I response: ``OK(seq(p), next(p))`` plus p's version."""

    version: int
    seq: tuple[Op, ...]
    plans: tuple[Plan, ...]


@dataclass(frozen=True, slots=True)
class Propose:
    """Phase II proposal: ``(RL_r : r : version) : (invis, Faulty(r))``.

    ``ops`` is the paper's RL_r.  It is usually a single operation, but may
    be a short *sequence* (footnote 11: "The proposal may be a sequence of
    events") when Phase I responses reveal stragglers more than one version
    behind: the sequence carries every operation from the oldest
    respondent's version up to ``version``, and each receiver applies only
    the suffix it is missing.
    """

    ops: tuple[Op, ...]
    version: int
    invis: Optional[Op]
    faulty: tuple[ProcessId, ...] = ()

    @property
    def final_op(self) -> Op:
        """The operation that creates ``version`` itself."""
        return self.ops[-1]


@dataclass(frozen=True, slots=True)
class ProposeOk:
    """Phase II response."""

    version: int


@dataclass(frozen=True, slots=True)
class ReconfigCommit:
    """Phase III commit: install ``version``, adopt r as Mgr, start invis."""

    ops: tuple[Op, ...]
    version: int
    invis: Optional[Op]
    faulty: tuple[ProcessId, ...] = ()


_RECONFIG_TYPES = (Interrogate, InterrogateOk, Propose, ProposeOk, ReconfigCommit)


def is_reconfiguration_message(payload: object) -> bool:
    """True for messages exempt from future-view buffering (footnote 10)."""
    return isinstance(payload, _RECONFIG_TYPES)
