"""In-flight round bookkeeping for the coordinator and reconfigurers.

An :class:`UpdateRound` tracks one invocation of the two-phase update
algorithm (whether opened by an explicit Invite or compressed onto the
previous Commit); a :class:`ReconfigRound` tracks one three-phase
reconfiguration attempt.  Both implement the paper's
``await (OK(p) or faulty_p(p))`` pattern: a round *resolves* when every
awaited process has either answered or been declared faulty, and only then
is the majority test applied.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.ids import ProcessId
from repro.core.determine import PhaseOneResponse
from repro.core.messages import Op

__all__ = ["UpdateRound", "ReconfigPhase", "ReconfigRound"]


@dataclass
class UpdateRound:
    """One two-phase (or compressed) update round run by the coordinator.

    Attributes:
        op: the operation being committed.
        version: the view version this round will produce.
        pending: processes whose OK (or suspicion) is still awaited.
        oks: processes that have answered OK.
        compressed: True when the invitation rode on the previous commit.
    """

    op: Op
    version: int
    pending: set[ProcessId]
    oks: set[ProcessId] = field(default_factory=set)
    compressed: bool = False
    #: cached ``sorted(pending)`` — the deterministic iteration order used
    #: by the phase loops; invalidated by the mutating methods below.
    _ordered: Optional[tuple[ProcessId, ...]] = field(
        default=None, repr=False, compare=False
    )

    def ordered_pending(self) -> tuple[ProcessId, ...]:
        """``pending`` in sorted order, computed once per mutation."""
        cached = self._ordered
        if cached is None:
            cached = self._ordered = tuple(sorted(self.pending))
        return cached

    def record_ok(self, sender: ProcessId) -> None:
        if sender in self.pending:
            self.pending.discard(sender)
            self.oks.add(sender)
            self._ordered = None

    def record_faulty(self, target: ProcessId) -> None:
        if target in self.pending:
            self.pending.discard(target)
            self._ordered = None

    @property
    def resolved(self) -> bool:
        """Every awaited process has answered or been suspected."""
        return not self.pending

    def ok_count(self, including_self: bool = True) -> int:
        """Participants counted toward the majority test (self included)."""
        return len(self.oks) + (1 if including_self else 0)


class ReconfigPhase(enum.Enum):
    """Which of the three phases a reconfiguration attempt is in."""

    INTERROGATE = "interrogate"
    PROPOSE = "propose"
    DONE = "done"


@dataclass
class ReconfigRound:
    """One three-phase reconfiguration attempt by an initiator.

    Phase I gathers :class:`PhaseOneResponse` records (the initiator's own
    state counts as a response); Phase II gathers plain OKs for the
    determined proposal; Phase III is the commit broadcast, after which the
    initiator assumes the Mgr role.
    """

    phase: ReconfigPhase
    #: size of the initiator's view when the attempt began — the majority
    #: threshold is fixed against this (``mu_r``).
    view_size: int
    pending: set[ProcessId]
    responses: dict[ProcessId, PhaseOneResponse] = field(default_factory=dict)
    propose_oks: set[ProcessId] = field(default_factory=set)
    #: populated at the end of Phase I
    proposal_ops: tuple[Op, ...] = ()
    proposal_version: int = 0
    invis: Optional[Op] = None
    #: cached ``sorted(pending)``; see :meth:`ordered_pending`.
    _ordered: Optional[tuple[ProcessId, ...]] = field(
        default=None, repr=False, compare=False
    )

    def ordered_pending(self) -> tuple[ProcessId, ...]:
        """``pending`` in sorted order, computed once per mutation."""
        cached = self._ordered
        if cached is None:
            cached = self._ordered = tuple(sorted(self.pending))
        return cached

    def set_pending(self, pending: set[ProcessId]) -> None:
        """Replace the awaited set (phase transition) and drop the cache."""
        self.pending = pending
        self._ordered = None

    def record_response(self, response: PhaseOneResponse) -> None:
        if response.proc in self.pending:
            self.pending.discard(response.proc)
            self.responses[response.proc] = response
            self._ordered = None

    def record_propose_ok(self, sender: ProcessId) -> None:
        if sender in self.pending:
            self.pending.discard(sender)
            self.propose_oks.add(sender)
            self._ordered = None

    def record_faulty(self, target: ProcessId) -> None:
        if target in self.pending:
            self.pending.discard(target)
            self._ordered = None

    @property
    def resolved(self) -> bool:
        return not self.pending

    def majority(self) -> int:
        """``mu_r``: majority of the view the attempt began in."""
        return self.view_size // 2 + 1

    def phase_one_count(self) -> int:
        """|Phase1Resp(r)|: respondents plus the initiator itself."""
        return len(self.responses) + 1

    def phase_two_count(self) -> int:
        """|Phase2Resp(r)|: proposal OKs plus the initiator itself."""
        return len(self.propose_oks) + 1
