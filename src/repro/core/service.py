"""Public API: build, drive and interrogate a simulated membership group.

:class:`MembershipCluster` wires together the substrate (scheduler, network,
trace), a detector per member, and one :class:`GMPMember` per process.  It
is the entry point used by the examples, the tests, and the benchmark
harness:

>>> from repro.core.service import MembershipCluster
>>> cluster = MembershipCluster.of_size(5, seed=42)
>>> cluster.start()
>>> cluster.crash("p2", at=10.0)
>>> cluster.settle()
>>> [str(m) for m in cluster.agreed_view()]
['p0', 'p1', 'p3', 'p4']

:class:`GroupMembershipService` is a thin facade over a cluster exposing the
operations an application embedding the membership service would call.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any, Iterable, Literal, Optional

from repro.detectors.base import FailureDetector
from repro.detectors.heartbeat import HeartbeatDetector
from repro.detectors.oracle import OracleDetector
from repro.detectors.scripted import ScriptedDetector
from repro.detectors.swim import LifeguardDetector, SwimDetector
from repro.errors import SimulationError
from repro.ids import ProcessId, ordered_view, pid
from repro.sim.network import DelayModel, Network, UniformDelay
from repro.sim.scheduler import Scheduler
from repro.sim.trace import RunTrace, TraceLevel
from repro.core.member import GMPMember
from repro.core.state import ViewImage

__all__ = ["MembershipCluster", "GroupMembershipService", "DetectorKind"]

DetectorKind = Literal["oracle", "heartbeat", "swim", "lifeguard", "scripted"]


def _detector_seed(cluster_seed: int, member: ProcessId) -> int:
    """A stable, placement-invariant RNG seed for one member's detector.

    Derived via sha256 (never ``hash()``, which varies per interpreter
    hash seed), so same (cluster seed, pid) -> same probe order, always.
    """
    digest = hashlib.sha256(f"detector:{cluster_seed}:{member}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class MembershipCluster:
    """A simulated group of GMP members plus its substrate."""

    def __init__(
        self,
        members: Iterable[ProcessId],
        seed: int = 0,
        delay_model: Optional[DelayModel] = None,
        detector: DetectorKind = "oracle",
        detector_delay: float = 5.0,
        heartbeat_period: float = 2.0,
        heartbeat_timeout: float = 8.0,
        majority_updates: bool = True,
        member_class: type[GMPMember] | None = None,
        member_kwargs: Optional[dict[str, Any]] = None,
        detector_kwargs: Optional[dict[str, Any]] = None,
        trace_level: TraceLevel | str | int = TraceLevel.FULL,
        obs: Optional[Any] = None,
    ) -> None:
        self.initial_view = ordered_view(members)
        if not self.initial_view:
            raise ValueError("a cluster needs at least one member")
        self.scheduler = Scheduler()
        #: ``trace_level`` below FULL trades trace queryability for
        #: throughput (see :class:`repro.sim.trace.TraceLevel`); the model
        #: checkers and ``agreed_view``-style queries need FULL only when
        #: they read event history — version/view agreement reads live
        #: member state and works at any level.
        self.trace = RunTrace(level=trace_level)
        self.network = Network(
            self.scheduler,
            self.trace,
            delay_model=delay_model if delay_model is not None else UniformDelay(),
            seed=seed,
        )
        #: optional :class:`repro.obs.Obs` capture shared by every layer of
        #: this cluster (network sends, member spans, detector latencies).
        self.obs = obs
        self.network.obs = obs
        self.seed = seed
        self.detector_kind: DetectorKind = detector
        self.detector_delay = detector_delay
        self.heartbeat_period = heartbeat_period
        self.heartbeat_timeout = heartbeat_timeout
        #: extra constructor kwargs for the per-member detectors (e.g. the
        #: SWIM family's period/timeouts/indirect_probes knobs).
        self.detector_kwargs = dict(detector_kwargs or {})
        self.majority_updates = majority_updates
        self.member_class: type[GMPMember] = (
            member_class if member_class is not None else GMPMember
        )
        self.member_kwargs = dict(member_kwargs or {})
        self.members: dict[ProcessId, GMPMember] = {}
        self.detectors: dict[ProcessId, FailureDetector] = {}
        # One shared view snapshot for the whole group: member construction
        # is O(1) each instead of every process copying the n-member view,
        # and committed view changes advance the shared image in O(1)
        # amortized (see ViewImage.child).
        shared_view = ViewImage(self.initial_view)
        for member in self.initial_view:
            self._build_member(member, initial_view=shared_view)
        self._started = False

    # ------------------------------------------------------------- builders

    @classmethod
    def of_size(cls, n: int, prefix: str = "p", **kwargs: object) -> "MembershipCluster":
        """A cluster of ``n`` members named ``p0..p{n-1}`` (p0 is Mgr)."""
        if n < 1:
            raise ValueError("cluster size must be at least 1")
        return cls([pid(f"{prefix}{i}") for i in range(n)], **kwargs)  # type: ignore[arg-type]

    def _make_detector(self, member: ProcessId) -> FailureDetector:
        if self.detector_kind == "oracle":
            return OracleDetector(
                self.network, delay=self.detector_delay, **self.detector_kwargs
            )
        if self.detector_kind == "heartbeat":
            kwargs: dict[str, Any] = {
                "period": self.heartbeat_period,
                "timeout": self.heartbeat_timeout,
                **self.detector_kwargs,
            }
            return HeartbeatDetector(self.network, **kwargs)
        if self.detector_kind in ("swim", "lifeguard"):
            # Each member gets its own deterministic RNG: probe order and
            # helper choice replay exactly per (cluster seed, pid).
            cls = SwimDetector if self.detector_kind == "swim" else LifeguardDetector
            return cls(
                self.network,
                rng=random.Random(_detector_seed(self.seed, member)),
                **self.detector_kwargs,
            )
        if self.detector_kind == "scripted":
            return ScriptedDetector(self.scheduler)
        raise ValueError(f"unknown detector kind {self.detector_kind!r}")

    def _build_member(
        self,
        member: ProcessId,
        initial_view: Optional[list[ProcessId] | ViewImage] = None,
        contacts: Optional[list[ProcessId]] = None,
    ) -> GMPMember:
        detector = self._make_detector(member)
        process = self.member_class(
            member,
            self.network,
            detector,
            initial_view=initial_view,
            contacts=contacts,
            majority_updates=self.majority_updates,
            **self.member_kwargs,
        )
        self.members[member] = process
        self.detectors[member] = detector
        return process

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Start every member (records START events, arms detectors)."""
        if self._started:
            raise SimulationError("cluster already started")
        self._started = True
        for member in self.members.values():
            member.start()

    def resolve(self, who: ProcessId | str) -> ProcessId:
        """Accept either a ProcessId or a bare name for convenience."""
        if isinstance(who, ProcessId):
            return who
        matches = [p for p in self.members if p.name == who]
        if not matches:
            raise KeyError(f"no member named {who!r}")
        return max(matches, key=lambda p: p.incarnation)

    def member(self, who: ProcessId | str) -> GMPMember:
        return self.members[self.resolve(who)]

    # ------------------------------------------------------------- controls

    def crash(self, who: ProcessId | str, at: Optional[float] = None) -> None:
        """Crash a member now or at an absolute simulation time."""
        victim = self.resolve(who)
        if at is None:
            self.members[victim].crash()
        else:
            self.scheduler.at(at, lambda: self.members[victim].crash())

    def suspect(
        self, observer: ProcessId | str, target: ProcessId | str, at: float = 0.0
    ) -> None:
        """Schedule a (possibly spurious) suspicion — scripted detectors only."""
        obs = self.resolve(observer)
        tgt = self.resolve(target)
        detector = self.detectors[obs]
        if not isinstance(detector, ScriptedDetector):
            raise SimulationError(
                "suspect() requires detector='scripted' "
                f"(cluster uses {self.detector_kind!r})"
            )
        detector.suspect_at(at, tgt)

    def join(
        self,
        name: str,
        contact: Optional[ProcessId | str] = None,
        at: Optional[float] = None,
    ) -> ProcessId:
        """Create a new process (or incarnation) and have it ask to join."""
        incarnation = max(
            (p.incarnation + 1 for p in self.members if p.name == name), default=0
        )
        joiner = pid(name, incarnation)
        contacts = list(self.initial_view)
        if contact is not None:
            preferred = self.resolve(contact)
            contacts = [preferred] + [c for c in contacts if c != preferred]
        process = self._build_member(joiner, contacts=contacts)
        if not self._started:
            return joiner
        if at is None:
            process.start()
        else:
            self.scheduler.at(at, process.start)
        return joiner

    def partition(self, side_a: Iterable[ProcessId | str], side_b: Iterable[ProcessId | str]) -> None:
        self.network.partition(
            {self.resolve(p) for p in side_a}, {self.resolve(p) for p in side_b}
        )

    def heal(self) -> None:
        self.network.heal()

    # -------------------------------------------------------------- running

    def run(self, until: float, max_events: int = 1_000_000) -> None:
        """Advance simulation time to ``until``."""
        self.scheduler.run(until=until, max_events=max_events)

    def settle(self, max_events: int = 1_000_000) -> None:
        """Run until the event queue drains (oracle/scripted detectors only;
        heartbeat clusters never quiesce — use :meth:`run_until_agreement`)."""
        self.scheduler.run(max_events=max_events)

    def run_until_agreement(
        self, until: float = 10_000.0, max_events: int = 2_000_000
    ) -> bool:
        """Run until all surviving members agree on version and view."""
        return self.scheduler.run_until(
            self._surviving_members_agree, until=until, max_events=max_events
        )

    def _surviving_members_agree(self) -> bool:
        alive = [m for m in self.members.values() if m.is_member]
        if not alive:
            return False
        versions = {m.version for m in alive}
        views = {tuple(m.view) for m in alive}
        if len(versions) != 1 or len(views) != 1:
            return False
        view = next(iter(views))
        # Agreement also means the view contains exactly the live members
        # and nobody is mid-round.
        if set(view) != {m.pid for m in alive}:
            return False
        return all(
            getattr(m, "update_round", None) is None
            and getattr(m, "reconfig", None) is None
            for m in alive
        )

    # -------------------------------------------------------------- queries

    def live_members(self) -> list[GMPMember]:
        return [m for m in self.members.values() if m.is_member]

    def views(self) -> dict[ProcessId, tuple[int, tuple[ProcessId, ...]]]:
        """Current (version, view) per surviving member."""
        return {
            p: (m.version, tuple(m.view))
            for p, m in self.members.items()
            if m.is_member and m.version is not None
        }

    def agreed_view(self) -> tuple[ProcessId, ...]:
        """The common view of all surviving members.

        Raises:
            SimulationError: if survivors disagree (settle first, or the run
                is mid-transition).
        """
        views = {view for _, view in self.views().values()}
        if len(views) != 1:
            raise SimulationError(f"survivors disagree: {self.views()}")
        return next(iter(views))

    def agreed_version(self) -> int:
        versions = {version for version, _ in self.views().values()}
        if len(versions) != 1:
            raise SimulationError(f"survivors disagree: {self.views()}")
        return next(iter(versions))


class GroupMembershipService:
    """Application-facing facade over one member of a cluster.

    This is the API shape a consumer of the membership service programs
    against: query the current view and version, learn the coordinator,
    report suspicions, and ask for the full view history.
    """

    def __init__(self, cluster: MembershipCluster, me: ProcessId | str) -> None:
        self._cluster = cluster
        self._me = cluster.resolve(me)

    @property
    def process_id(self) -> ProcessId:
        return self._me

    def _member(self) -> GMPMember:
        return self._cluster.members[self._me]

    def is_member(self) -> bool:
        """Am I currently a member of the group (not excluded/crashed)?"""
        return self._member().is_member

    def current_view(self) -> tuple[ProcessId, ...]:
        """``Memb(me)`` — my current local view."""
        return self._member().view

    def current_version(self) -> Optional[int]:
        """``ver(me)`` — my current view version."""
        return self._member().version

    def coordinator(self) -> Optional[ProcessId]:
        """The process I currently believe coordinates updates (Mgr)."""
        member = self._member()
        return None if member.state is None else member.state.mgr

    def report_suspicion(self, target: ProcessId | str) -> None:
        """Feed a ``faulty_me(target)`` input (application-level F1)."""
        self._member().on_suspect(self._cluster.resolve(target))

    def view_history(self) -> list[tuple[int, tuple[ProcessId, ...]]]:
        """Every (version, view) I installed, in order."""
        from repro.model.events import EventKind

        history = []
        for event in self._cluster.trace.events_of(self._me, EventKind.INSTALL):
            assert event.version is not None and event.view is not None
            history.append((event.version, event.view))
        return history
