"""The full GMP process: coordinator role, outer role, reconfiguration, join.

:class:`GMPMember` is the event-driven realisation of Figures 8/9/10 (the
final, online algorithm of Section 7, which subsumes the basic exclusion
algorithm of Figure 2).  One class implements every role because any process
may move between them: an outer process becomes the coordinator by winning a
reconfiguration; the coordinator becomes nobody by being suspected.

The paper's blocking ``await (OK(p) or faulty(p))`` constructs become round
records (:mod:`repro.core.rounds`) resolved by message arrival or suspicion;
everything else is a direct transcription, with the deliberate
interpretations listed in DESIGN.md §4.

Modes:

* ``majority_updates=True`` (default) — the final algorithm: every commit
  requires OKs from a majority of the current view (Figure 8 line FA.1);
  tolerates a minority of failures per view transition.
* ``majority_updates=False`` — the basic algorithm of Section 3.1 (Mgr never
  fails): commits when every member has answered or been suspected, no
  majority test; tolerates ``|Memb|-1`` failures.
"""

from __future__ import annotations

from typing import Optional

from repro.detectors.base import FailureDetector
from repro.errors import ProtocolInvariantError, ViewDivergenceError
from repro.ids import ProcessId
from repro.model.events import EventKind
from repro.sim.network import Network
from repro.sim.process import SimProcess
from repro.core.buffering import FutureViewBuffer
from repro.core.determine import DetermineResult, PhaseOneResponse, determine
from repro.core.messages import (
    Commit,
    FaultyNotice,
    Interrogate,
    InterrogateOk,
    Invite,
    JoinRequest,
    Op,
    Plan,
    Propose,
    ProposeOk,
    ReconfigCommit,
    StateTransfer,
    UpdateOk,
)
from repro.core.rounds import ReconfigPhase, ReconfigRound, UpdateRound
from repro.core.state import LocalState, ViewImage

__all__ = ["GMPMember", "AppLayer"]


class GMPMember(SimProcess):
    """One group member (or joiner) running the full online GMP algorithm."""

    def __init__(
        self,
        pid: ProcessId,
        network: Network,
        detector: FailureDetector,
        initial_view: Optional[list[ProcessId] | tuple[ProcessId, ...] | ViewImage] = None,
        contacts: Optional[list[ProcessId]] = None,
        majority_updates: bool = True,
        join_retry: float = 25.0,
        max_join_attempts: int = 100,
        reconfig_phases: int = 3,
        stable_preference: str = "junior",
        reuse_phases: bool = False,
    ) -> None:
        super().__init__(pid, network)
        if initial_view is None and not contacts:
            raise ValueError("a joiner needs contacts; a member needs a view")
        if reconfig_phases not in (2, 3):
            raise ValueError("reconfig_phases must be 2 or 3")
        #: The Section 8 future-work optimisation: when a reconfigurer's
        #: Phase I responses prove that a *previous* (failed) initiator's
        #: proposal already reached a majority — every respondent reports
        #: the identical concrete plan for the target version — the new
        #: initiator inherits that proposal phase and commits directly,
        #: saving two broadcast waves per failed predecessor.  Safe by
        #: Corollary 5.2: a majority-acknowledged proposal is the unique
        #: stably-defined proposal for its version.
        self.reuse_phases = reuse_phases
        self.max_join_attempts = max_join_attempts
        #: 3 = the paper's protocol; 2 = the Claim 7.2 strawman (no proposal
        #: phase — the initiator commits its guess directly).
        self.reconfig_phases = reconfig_phases
        #: GetStable tie-break; "senior" is the deliberately wrong guess the
        #: Claim 7.2 strawman makes.
        self.stable_preference = stable_preference
        self.detector = detector
        self.majority_updates = majority_updates
        self.join_retry = join_retry
        self._contacts = [c for c in (contacts or []) if c != pid]
        self._join_attempts = 0
        self.state: Optional[LocalState] = None
        if initial_view is not None:
            if pid not in initial_view:
                raise ValueError(f"{pid} missing from its own initial view")
            # Pass the view straight through: when the cluster hands every
            # member the same ViewImage, state construction is O(1) and the
            # whole group shares one snapshot per installed version.
            self.state = LocalState(me=pid, view=initial_view)
        #: S1 isolation decisions made before joining (normally empty).
        self._pre_join_faulty: set[ProcessId] = set()
        self.buffer = FutureViewBuffer()
        self.update_round: Optional[UpdateRound] = None
        self.reconfig: Optional[ReconfigRound] = None
        #: Targets to send to first within any broadcast.  The paper's Bcast
        #: has no specified order, so a crash may truncate an *arbitrary*
        #: subset; adversarial scenarios (Figure 11) set this to choose it.
        self.broadcast_first: tuple[ProcessId, ...] = ()
        #: (mgr, target) pairs already reported via FaultyNotice — GMP-5
        #: requires every faulty belief, including gossiped ones, to reach
        #: the coordinator so the system reacts to it.
        self._noticed: set[tuple[ProcessId, ProcessId]] = set()
        #: Optional application layer (see repro.extensions): receives
        #: payloads the protocol does not understand and view-install
        #: callbacks.  This is how services are built *on top of* the
        #: membership abstraction (the ISIS pattern the paper motivates).
        self.app: Optional["AppLayer"] = None
        #: Three-phase reconfigurations this member has initiated — the
        #: sharding layer's "leaf churn never reconfigures the core"
        #: regression gate reads this, so it must work at any trace level.
        self.reconfigurations = 0
        detector.attach(self)

    # ------------------------------------------------------------------
    # Suspectable interface (consumed by the failure detector)
    # ------------------------------------------------------------------

    def current_members(self) -> tuple[ProcessId, ...]:
        if self.state is None:
            return ()
        return self.state.snapshot_view()

    def is_current_member(self, target: ProcessId) -> bool:
        return self.state is not None and self.state.is_member(target)

    def believes_faulty(self, target: ProcessId) -> bool:
        if self.state is None:
            return target in self._pre_join_faulty
        return target in self.state.ever_faulty

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def on_start(self) -> None:
        self.detector.start()
        if self.state is None:
            self._request_join()

    def _request_join(self) -> None:
        """Ask to join, rotating through the contact list on each retry
        (a single contact may itself be crashed)."""
        if self.crashed or self.state is not None:
            return
        if self._join_attempts >= self.max_join_attempts:
            self.quit_protocol("gave up joining: no contact admitted us")
            return
        contact = self._contacts[self._join_attempts % len(self._contacts)]
        self._join_attempts += 1
        self.send(contact, JoinRequest(self.pid))
        self.set_timer(self.join_retry, self._request_join)

    def quit_protocol(self, detail: str = "") -> None:
        self.detector.stop()
        super().quit_protocol(detail)

    def crash(self, detail: str = "") -> None:
        self.detector.stop()
        super().crash(detail)

    @property
    def is_member(self) -> bool:
        return (
            self.state is not None
            and not self.crashed
            and self.state.is_member(self.pid)
        )

    @property
    def version(self) -> Optional[int]:
        return None if self.state is None else self.state.version

    @property
    def view(self) -> tuple[ProcessId, ...]:
        return () if self.state is None else self.state.snapshot_view()

    # ------------------------------------------------------------------
    # Observability spans (no-ops unless the network carries an Obs)
    # ------------------------------------------------------------------

    def _span_begin(self, name: str, key: object = None, **labels: object) -> None:
        """Open a protocol span on the run's Obs capture, if one is attached.

        Spans use logical (scheduler) time, so they are deterministic and
        replay-safe; with no Obs attached this is one attribute check.
        """
        obs = self.network.obs
        if obs is not None:
            obs.spans.begin(
                name,
                key if key is not None else self.pid,
                at=self.network.scheduler.now,
                proc=self.pid,
                **labels,
            )

    def _span_end(self, name: str, key: object = None, **labels: object) -> None:
        obs = self.network.obs
        if obs is not None:
            obs.spans.end(
                name,
                key if key is not None else self.pid,
                at=self.network.scheduler.now,
                **labels,
            )

    # ------------------------------------------------------------------
    # S1 isolation
    # ------------------------------------------------------------------

    def should_accept(self, sender: ProcessId, payload: object) -> bool:
        return not self.believes_faulty(sender)

    # ------------------------------------------------------------------
    # Broadcast ordering (the paper's Bcast leaves send order unspecified)
    # ------------------------------------------------------------------

    def _ordered(self, targets: list[ProcessId] | tuple[ProcessId, ...]) -> list[ProcessId]:
        """Apply the :attr:`broadcast_first` preference to a target list."""
        if not self.broadcast_first:
            return list(targets)
        preferred = [t for t in self.broadcast_first if t in targets]
        rest = [t for t in targets if t not in self.broadcast_first]
        return preferred + rest

    # ------------------------------------------------------------------
    # Failure detection input (faulty_p(q), F1) and gossip (F2)
    # ------------------------------------------------------------------

    def on_suspect(self, target: ProcessId) -> None:
        """The detector's ``faulty_p(target)`` input."""
        if self.crashed:
            return
        if self.state is None:
            self._pre_join_faulty.add(target)
            return
        self._note_faulty(target)
        self._react()

    def _note_faulty(self, target: ProcessId) -> bool:
        """Record belief + isolation; resolve any awaits on ``target``."""
        assert self.state is not None
        if target == self.pid:
            return False
        fresh = self.state.note_faulty(target)
        if fresh:
            self._record(EventKind.FAULTY, peer=target)
            self.buffer.drop_from(target)
            self.detector.unwatch(target)
        # Awaits resolve on *belief*, fresh or not (idempotent).
        if self.update_round is not None:
            self.update_round.record_faulty(target)
        if self.reconfig is not None:
            self.reconfig.record_faulty(target)
        return fresh

    def _note_operating(self, target: ProcessId) -> bool:
        assert self.state is not None
        fresh = self.state.note_operating(target)
        if fresh:
            self._record(EventKind.OPERATING, peer=target)
        return fresh

    def _react(self) -> None:
        """Role-sensitive reaction to new beliefs or a new view."""
        if self.crashed or self.state is None or not self.is_member:
            return
        if self.state.mgr == self.pid:
            self._check_update_round()
            self._mgr_maybe_start_round()
        elif self.reconfig is None and self.state.should_initiate_reconfiguration():
            self._start_reconfiguration()
        else:
            self._notify_coordinator_of_faults()
            self._check_update_round()
            self._check_reconfig()

    def _notify_coordinator_of_faults(self) -> None:
        """Report every faulty belief about a view member to the coordinator.

        GMP-5 obliges the system to react to *every* ``faulty_p(q)`` event —
        observed (F1) or gossiped (F2) — so an outer process keeps its
        coordinator informed of any member it believes faulty, once per
        (coordinator, member) pair.
        """
        state = self.state
        assert state is not None
        mgr = state.mgr
        if mgr == self.pid or self.believes_faulty(mgr):
            return
        for target in state.faulty_members():
            key = (mgr, target)
            if key in self._noticed:
                continue
            self._noticed.add(key)
            self.send(mgr, FaultyNotice(target))

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------

    def on_message(self, sender: ProcessId, payload: object) -> None:
        if self.crashed:
            return
        if self.detector.on_message(sender, payload):
            return
        self.detector.observed_traffic(sender)

        if isinstance(payload, JoinRequest):
            self._on_join_request(sender, payload)
            return
        if isinstance(payload, StateTransfer):
            self._on_state_transfer(sender, payload)
            return
        if self.state is None:
            return  # not yet a member; only join traffic is meaningful

        if isinstance(payload, FaultyNotice):
            self._on_faulty_notice(sender, payload)
        elif isinstance(payload, Invite):
            self._on_invite(sender, payload)
        elif isinstance(payload, UpdateOk):
            self._on_update_ok(sender, payload)
        elif isinstance(payload, Commit):
            self._on_commit(sender, payload)
        elif isinstance(payload, Interrogate):
            self._on_interrogate(sender, payload)
        elif isinstance(payload, InterrogateOk):
            self._on_interrogate_ok(sender, payload)
        elif isinstance(payload, Propose):
            self._on_propose(sender, payload)
        elif isinstance(payload, ProposeOk):
            self._on_propose_ok(sender, payload)
        elif isinstance(payload, ReconfigCommit):
            self._on_reconfig_commit(sender, payload)
        elif self.app is not None:
            self.app.on_message(sender, payload)

    # ------------------------------------------------------------------
    # Join handling
    # ------------------------------------------------------------------

    def _on_join_request(self, sender: ProcessId, msg: JoinRequest) -> None:
        if self.state is None:
            return  # cannot help; the joiner will retry elsewhere
        if self.state.mgr != self.pid:
            if not self.believes_faulty(self.state.mgr):
                self.send(self.state.mgr, msg)  # forward to the coordinator
            return
        if self.believes_faulty(msg.joiner):
            return
        if self.state.is_member(msg.joiner):
            # Already admitted — its StateTransfer must have been lost to a
            # coordinator crash.  Re-send the current state; include the
            # in-flight round's operation as the contingent plan so the
            # joiner can answer that round's await.
            round_ = self.update_round
            contingent = (
                round_.op
                if round_ is not None and round_.version == self.state.version + 1
                else None
            )
            self.send(
                msg.joiner,
                StateTransfer(
                    view=self.state.snapshot_view(),
                    version=self.state.version,
                    seq=self.state.snapshot_seq(),
                    mgr=self.pid,
                    contingent=contingent,
                    faulty=self.state.faulty_members(),
                ),
            )
            return
        if self._note_operating(msg.joiner):
            self._react()

    def _on_state_transfer(self, sender: ProcessId, msg: StateTransfer) -> None:
        if self.state is not None:
            return  # duplicate; already joined
        self.state = LocalState(
            me=self.pid,
            view=msg.view,
            version=msg.version,
            seq=list(msg.seq),
            mgr=msg.mgr,
        )
        for target in sorted(self._pre_join_faulty):
            self.state.note_faulty(target)
        for target in msg.faulty:
            self._note_faulty(target)
        self._record(
            EventKind.ADD, peer=self.pid, detail="joined via state transfer"
        )
        self._record_install()
        if msg.contingent is not None:
            self._adopt_contingent(msg.contingent, msg.mgr, msg.version + 1)

    def _adopt_contingent(self, contingent: Op, coord: ProcessId, version: int) -> None:
        """Handle a commit's piggybacked plan: note, plan, and OK it."""
        assert self.state is not None
        if contingent.is_remove:
            if contingent.target == self.pid:
                self.quit_protocol("named in contingent removal")
                return
            self._note_faulty(contingent.target)
        else:
            self._note_operating(contingent.target)
        self.state.set_plan(Plan(contingent, coord, version))
        self._span_begin("view.install", key=(self.pid, version), version=version)
        if self.app is not None:
            self.app.before_view_agreement(version)
        self.send(coord, UpdateOk(version))

    # ------------------------------------------------------------------
    # Coordinator role: two-phase / compressed update (Figures 2 and 8)
    # ------------------------------------------------------------------

    def _on_faulty_notice(self, sender: ProcessId, msg: FaultyNotice) -> None:
        assert self.state is not None
        if self.state.mgr != self.pid:
            if not self.believes_faulty(self.state.mgr):
                self.send(self.state.mgr, msg)  # route to the current coordinator
            return
        self._note_faulty(msg.target)
        self._react()

    def _mgr_maybe_start_round(self) -> None:
        """Open a fresh invite round if idle and work is queued."""
        state = self.state
        if (
            state is None
            or self.crashed
            or state.mgr != self.pid
            or not self.is_member
            or self.update_round is not None
            or self.reconfig is not None
        ):
            return
        op = state.next_operation()
        if op is None:
            return
        version = state.version + 1
        if op.is_remove:
            self._note_faulty(op.target)
        else:
            self._note_operating(op.target)
        self._span_begin("update.round", version=version, compressed=False)
        self._span_begin("view.install", key=(self.pid, version), version=version)
        self.broadcast(self._ordered(state.view), Invite(op, version))
        pending = self._awaitees(op)
        self.update_round = UpdateRound(op=op, version=version, pending=pending)
        for target in self.update_round.ordered_pending():
            self.detector.watch(target, "update-ok")
        self._check_update_round()

    def _awaitees(self, op: Op) -> set[ProcessId]:
        """Who must answer (or be suspected) before this round commits."""
        assert self.state is not None
        return {
            member
            for member in self.state.view
            if member != self.pid
            and member not in self.state.ever_faulty
            and not (op.is_remove and member == op.target)
        }

    def _on_update_ok(self, sender: ProcessId, msg: UpdateOk) -> None:
        round_ = self.update_round
        if round_ is None or round_.version != msg.version:
            return
        round_.record_ok(sender)
        self.detector.unwatch(sender)
        self._check_update_round()

    def _check_update_round(self) -> None:
        """Commit resolved rounds; chain compressed rounds without recursion."""
        while True:
            round_ = self.update_round
            if round_ is None or not round_.resolved or self.crashed:
                return
            self.update_round = None
            if self.majority_updates and self.state is not None:
                if round_.ok_count() < self.state.majority():
                    self.quit_protocol(
                        f"update majority lost: {round_.ok_count()} < "
                        f"{self.state.majority()} for version {round_.version}"
                    )
                    return
            self._span_end("update.round", version=round_.version)
            self._commit_update(round_)
            if self.crashed:
                return
            if self.update_round is None:
                # No contingent round was opened: look for queued work.
                self._mgr_maybe_start_round_once()
                if self.update_round is None or not self.update_round.resolved:
                    return
            elif not self.update_round.resolved:
                return

    def _mgr_maybe_start_round_once(self) -> None:
        """Like :meth:`_mgr_maybe_start_round` but without re-entering the
        completion loop (the caller is the loop)."""
        state = self.state
        if state is None or self.crashed or state.mgr != self.pid:
            return
        if self.update_round is not None or self.reconfig is not None:
            return
        op = state.next_operation()
        if op is None:
            return
        version = state.version + 1
        if op.is_remove:
            self._note_faulty(op.target)
        else:
            self._note_operating(op.target)
        self._span_begin("update.round", version=version, compressed=False)
        self._span_begin("view.install", key=(self.pid, version), version=version)
        self.broadcast(self._ordered(state.view), Invite(op, version))
        self.update_round = UpdateRound(op=op, version=version, pending=self._awaitees(op))
        for target in self.update_round.ordered_pending():
            self.detector.watch(target, "update-ok")

    def _commit_update(self, round_: UpdateRound) -> None:
        """Phase II: apply, broadcast Commit with contingencies, chain."""
        state = self.state
        assert state is not None
        if self.app is not None:
            self.app.before_view_agreement(round_.version)
        self._apply_committed_op(round_.op, round_.version)
        if self.crashed:
            return
        contingent = state.next_operation(skip=round_.op.target)
        faulty_list = state.faulty_members()
        recovered_list = tuple(state.recovered)
        commit = Commit(
            op=round_.op,
            version=round_.version,
            contingent=contingent,
            faulty=faulty_list,
            recovered=recovered_list,
        )
        if round_.op.is_add:
            # State transfer precedes the commit broadcast so no crash
            # window can leave a member in everyone's view but without
            # state (such a zombie could never answer awaits).
            self.send(
                round_.op.target,
                StateTransfer(
                    view=state.snapshot_view(),
                    version=state.version,
                    seq=state.snapshot_seq(),
                    mgr=self.pid,
                    contingent=contingent,
                    faulty=faulty_list,
                ),
            )
            if self.crashed:
                return
        targets = [
            m
            for m in state.view
            if not (round_.op.is_add and m == round_.op.target)
        ]
        self.broadcast(self._ordered(targets), commit)
        if self.crashed:
            return
        if contingent is not None:
            if contingent.is_remove:
                self._note_faulty(contingent.target)
            else:
                self._note_operating(contingent.target)
            pending = self._awaitees(contingent)
            if contingent.is_add:
                # The fresh joiner (just state-transferred) also answers.
                pass
            self._span_begin(
                "update.round", version=state.version + 1, compressed=True
            )
            self._span_begin(
                "view.install",
                key=(self.pid, state.version + 1),
                version=state.version + 1,
            )
            self.update_round = UpdateRound(
                op=contingent,
                version=state.version + 1,
                pending=pending,
                compressed=True,
            )
            for target in self.update_round.ordered_pending():
                self.detector.watch(target, "compressed-ok")

    def _apply_committed_op(self, op: Op, version: int) -> None:
        """Apply one agreed operation locally, recording the model events."""
        state = self.state
        assert state is not None
        if op.is_remove:
            if op.target == self.pid:
                self.quit_protocol("committed own removal")
                return
            self._note_faulty(op.target)
            state.apply(op, version)
            self._record(EventKind.REMOVE, peer=op.target)
        else:
            self._note_operating(op.target)
            state.apply(op, version)
            self._record(EventKind.ADD, peer=op.target)
        self._record_install()

    # ------------------------------------------------------------------
    # Outer role: answering invites and commits (Figures 2 and 9)
    # ------------------------------------------------------------------

    def _on_invite(self, sender: ProcessId, msg: Invite) -> None:
        state = self.state
        assert state is not None
        if sender != state.mgr:
            return  # only the current coordinator may invite (FIFO makes
            #         a new coordinator's commit precede its invites)
        if msg.version <= state.version:
            return  # stale
        if msg.version > state.version + 1:
            self.buffer.hold(sender, msg)
            return
        if msg.op.is_remove:
            if msg.op.target == self.pid:
                self.quit_protocol("named in exclusion invite")
                return
            self._note_faulty(msg.op.target)
        else:
            self._note_operating(msg.op.target)
        state.set_plan(Plan(msg.op, sender, msg.version))
        self._span_begin(
            "view.install", key=(self.pid, msg.version), version=msg.version
        )
        if self.app is not None:
            self.app.before_view_agreement(msg.version)
        self.send(sender, UpdateOk(msg.version))
        self.detector.watch(sender, "awaiting-commit")
        self._react()

    def _on_commit(self, sender: ProcessId, msg: Commit) -> None:
        state = self.state
        assert state is not None
        if sender != state.mgr:
            return
        if msg.version <= state.version:
            return
        if msg.version > state.version + 1:
            self.buffer.hold(sender, msg)
            return
        if self.pid in msg.faulty:
            self.quit_protocol("listed faulty in commit")
            return
        if msg.op.is_remove and msg.op.target == self.pid:
            self.quit_protocol("committed own removal")
            return
        for target in msg.faulty:
            self._note_faulty(target)  # gossip, F2
        for target in msg.recovered:
            self._note_operating(target)
        if self.crashed:
            return
        self._apply_committed_op(msg.op, msg.version)
        if self.crashed:
            return
        if msg.contingent is not None:
            self._adopt_contingent(msg.contingent, sender, msg.version + 1)
        else:
            state.set_plan(None)
        self._after_install()

    # ------------------------------------------------------------------
    # Reconfiguration (Figures 5 and 10)
    # ------------------------------------------------------------------

    def _start_reconfiguration(self) -> None:
        state = self.state
        assert state is not None
        self.reconfigurations += 1
        hi = state.hi_faulty()
        self._record(
            EventKind.INTERNAL,
            detail=f"initiating reconfiguration, HiFaulty={list(map(str, hi))}",
        )
        self._span_begin("reconfig.total", hi_faulty=len(hi))
        self._span_begin("reconfig.phase1")
        self.broadcast(self._ordered(state.view), Interrogate(hi_faulty=hi))
        pending = {
            member
            for member in state.view
            if member != self.pid and member not in state.ever_faulty
        }
        round_ = ReconfigRound(
            phase=ReconfigPhase.INTERROGATE,
            view_size=len(state.view),
            pending=pending,
        )
        # The initiator's own state is a Phase I response (PhaseResp includes r).
        own = PhaseOneResponse(
            proc=self.pid,
            version=state.version,
            seq=state.snapshot_seq(),
            plans=state.snapshot_plans(),
        )
        round_.responses[self.pid] = own
        self.reconfig = round_
        for target in round_.ordered_pending():
            self.detector.watch(target, "interrogate-ok")
        self._check_reconfig()

    def _on_interrogate(self, sender: ProcessId, msg: Interrogate) -> None:
        state = self.state
        assert state is not None
        if not state.is_member(sender):
            return  # stale interrogation from an already-removed process
        my_index = state.position(self.pid)
        sender_index = state.position(sender)
        if my_index < sender_index:
            # I outrank the initiator, so I am in its HiFaulty: quit (Fig 10).
            self.quit_protocol(f"outranked by reconfigurer {sender}")
            return
        answer = InterrogateOk(
            version=state.version,
            seq=state.snapshot_seq(),
            plans=state.snapshot_plans(),
        )
        self.send(sender, answer)
        for target in msg.hi_faulty:
            self._note_faulty(target)
        state.append_placeholder(sender)
        self.detector.watch(sender, "awaiting-proposal")
        self._react()

    def _on_interrogate_ok(self, sender: ProcessId, msg: InterrogateOk) -> None:
        round_ = self.reconfig
        if round_ is None or round_.phase is not ReconfigPhase.INTERROGATE:
            return
        round_.record_response(
            PhaseOneResponse(
                proc=sender, version=msg.version, seq=msg.seq, plans=msg.plans
            )
        )
        self.detector.unwatch(sender)
        self._check_reconfig()

    def _on_propose(self, sender: ProcessId, msg: Propose) -> None:
        state = self.state
        assert state is not None
        if self.pid in msg.faulty:
            self.quit_protocol("listed faulty in reconfiguration proposal")
            return
        if any(op.is_remove and op.target == self.pid for op in msg.ops):
            self.quit_protocol("named in reconfiguration removal")
            return
        if msg.invis is not None and msg.invis.is_remove and msg.invis.target == self.pid:
            self.quit_protocol("named in reconfiguration contingency")
            return
        if not any(plan.coord == sender for plan in state.plans):
            # A proposal from someone whose interrogation we never answered
            # cannot happen over FIFO channels; drop defensively.
            return
        for target in msg.faulty:
            self._note_faulty(target)
        if self.crashed:
            return
        if self.app is not None:
            self.app.before_view_agreement(msg.version)
        self.send(sender, ProposeOk(msg.version))
        state.set_plan(Plan(msg.final_op, sender, msg.version))
        self._span_begin(
            "view.install", key=(self.pid, msg.version), version=msg.version
        )
        self._react()

    def _on_propose_ok(self, sender: ProcessId, msg: ProposeOk) -> None:
        round_ = self.reconfig
        if (
            round_ is None
            or round_.phase is not ReconfigPhase.PROPOSE
            or round_.proposal_version != msg.version
        ):
            return
        round_.record_propose_ok(sender)
        self.detector.unwatch(sender)
        self._check_reconfig()

    def _check_reconfig(self) -> None:
        state = self.state
        round_ = self.reconfig
        if state is None or round_ is None or not round_.resolved or self.crashed:
            return
        if round_.phase is ReconfigPhase.INTERROGATE:
            if round_.phase_one_count() < round_.majority():
                self.quit_protocol(
                    f"reconfiguration interrogation majority lost: "
                    f"{round_.phase_one_count()} < {round_.majority()}"
                )
                return
            result = determine(
                initiator=self.pid,
                responses=list(round_.responses.values()),
                view=state.view,
                current_mgr=state.mgr,
                get_next=state.next_operation,
                prefer=self.stable_preference,
            )
            round_.proposal_ops = result.ops
            round_.proposal_version = result.version
            round_.invis = result.invis
            self._span_end(
                "reconfig.phase1", version=result.version, ops=len(result.ops)
            )
            self._record(
                EventKind.INTERNAL,
                detail=(
                    f"determined v{result.version} "
                    f"ops={[str(o) for o in result.ops]} "
                    f"invis={result.invis} "
                    f"candidates={result.candidate_count}"
                ),
            )
            if self.reconfig_phases == 2:
                # Claim 7.2 strawman: skip the proposal phase and commit the
                # Phase I guess directly.  Unsafe by Claim 7.2.
                round_.phase = ReconfigPhase.DONE
                self.reconfig = None
                self._commit_reconfiguration(round_)
                return
            if self.reuse_phases and self._predecessor_phase_complete(round_, result):
                # §8 optimisation: a failed predecessor's proposal already
                # holds a majority of acknowledgements — inherit its
                # proposal phase and commit directly.
                self._record(
                    EventKind.INTERNAL,
                    detail=(
                        f"reusing predecessor's proposal phase for "
                        f"v{result.version} (no new Propose broadcast)"
                    ),
                )
                round_.phase = ReconfigPhase.DONE
                self.reconfig = None
                self._commit_reconfiguration(round_)
                return
            round_.phase = ReconfigPhase.PROPOSE
            round_.set_pending(
                {
                    member
                    for member in state.view
                    if member != self.pid and member not in state.ever_faulty
                }
            )
            self._span_begin("reconfig.phase2", version=result.version)
            self.broadcast(
                self._ordered(state.view),
                Propose(
                    ops=result.ops,
                    version=result.version,
                    invis=result.invis,
                    faulty=state.faulty_members(),
                ),
            )
            for target in round_.ordered_pending():
                self.detector.watch(target, "propose-ok")
            self._check_reconfig()
            return
        if round_.phase is ReconfigPhase.PROPOSE:
            if round_.phase_two_count() < round_.majority():
                self.quit_protocol(
                    f"reconfiguration proposal majority lost: "
                    f"{round_.phase_two_count()} < {round_.majority()}"
                )
                return
            round_.phase = ReconfigPhase.DONE
            self.reconfig = None
            self._commit_reconfiguration(round_)

    def _predecessor_phase_complete(
        self, round_: ReconfigRound, result: DetermineResult
    ) -> bool:
        """Did a failed predecessor's proposal already reach a majority?

        True when the determined proposal is a single operation for the
        next version and *every* Phase I respondent (the initiator
        included) reports the identical concrete plan for it — each such
        plan is an acknowledgement the predecessor collected, so its
        proposal phase demonstrably covered a majority and re-running one
        adds nothing.
        """
        if len(result.ops) != 1:
            return False
        acknowledgers = 0
        for response in round_.responses.values():
            for plan in response.plans:
                if (
                    not plan.is_placeholder
                    and plan.version == result.version
                    and plan.op == result.ops[0]
                ):
                    acknowledgers += 1
                    break
        return acknowledgers >= round_.majority()

    def _commit_reconfiguration(self, round_: ReconfigRound) -> None:
        """Phase III: install, broadcast the commit, assume the Mgr role."""
        state = self.state
        assert state is not None
        self._span_end("reconfig.phase2", version=round_.proposal_version)
        if self.app is not None:
            self.app.before_view_agreement(round_.proposal_version)
        self._apply_reconfig_ops(round_.proposal_ops, round_.proposal_version)
        if self.crashed:
            return
        previous_mgr = state.mgr
        state.set_mgr(self.pid)
        state.set_plan(None)
        self._record(EventKind.INTERNAL, detail="assumed Mgr role")
        self._span_end("reconfig.total", version=round_.proposal_version)
        commit = ReconfigCommit(
            ops=round_.proposal_ops,
            version=round_.proposal_version,
            invis=round_.invis,
            faulty=state.faulty_members(),
        )
        self.broadcast(self._ordered(state.view), commit)
        if self.crashed:
            return
        # Notify after the commit broadcast so anything the layer sends in
        # response follows the commit on every FIFO channel.
        self._notify_coordinator_changed(previous_mgr)
        if self.crashed:
            return
        for op in round_.proposal_ops:
            # A replayed 'add' may concern a joiner whose StateTransfer died
            # with the old coordinator; re-send state so it can participate.
            if op.is_add and state.is_member(op.target) and not self.crashed:
                self.send(
                    op.target,
                    StateTransfer(
                        view=state.snapshot_view(),
                        version=state.version,
                        seq=state.snapshot_seq(),
                        mgr=self.pid,
                        contingent=round_.invis,
                        faulty=state.faulty_members(),
                    ),
                )
        if self.crashed:
            return
        if round_.invis is not None:
            invis = round_.invis
            if invis.is_remove:
                self._note_faulty(invis.target)
            else:
                self._note_operating(invis.target)
            pending = self._awaitees(invis)
            self._span_begin(
                "update.round", version=state.version + 1, compressed=True
            )
            self._span_begin(
                "view.install",
                key=(self.pid, state.version + 1),
                version=state.version + 1,
            )
            self.update_round = UpdateRound(
                op=invis,
                version=state.version + 1,
                pending=pending,
                compressed=True,
            )
            for target in self.update_round.ordered_pending():
                self.detector.watch(target, "compressed-ok")
            self._check_update_round()
        else:
            self._mgr_maybe_start_round()
        self._after_install()

    def _apply_reconfig_ops(self, ops: tuple[Op, ...], version: int) -> None:
        """Apply the suffix of ``ops`` this process is missing."""
        state = self.state
        assert state is not None
        missing = version - state.version
        if missing <= 0:
            return
        if missing > len(ops):
            raise ProtocolInvariantError(
                f"{self.pid}: reconfiguration to {version} skips versions "
                f"(local {state.version}, {len(ops)} ops supplied)"
            )
        for op in ops[len(ops) - missing :]:
            if self.crashed:
                return
            self._apply_committed_op(op, state.version + 1)

    def _on_reconfig_commit(self, sender: ProcessId, msg: ReconfigCommit) -> None:
        state = self.state
        assert state is not None
        if self.pid in msg.faulty:
            self.quit_protocol("listed faulty in reconfiguration commit")
            return
        if any(op.is_remove and op.target == self.pid for op in msg.ops):
            self.quit_protocol("removed by reconfiguration commit")
            return
        if msg.invis is not None and msg.invis.is_remove and msg.invis.target == self.pid:
            self.quit_protocol("named in reconfiguration contingency")
            return
        for target in msg.faulty:
            self._note_faulty(target)
        if self.crashed:
            return
        if msg.version < state.version:
            return  # stale commit from a superseded reconfiguration
        if msg.version == state.version:
            # Invisible commit already reached us; Corollary 5.2 says the
            # operation must be identical — verify, then adopt the new Mgr.
            if state.seq and state.seq[-1] != msg.ops[-1]:
                if self.reconfig_phases == 3:
                    raise ViewDivergenceError(
                        f"{self.pid}: version {msg.version} committed as "
                        f"{state.seq[-1]} locally but {msg.ops[-1]} by {sender}"
                    )
                # The strawman cannot detect this; it sails on with divergent
                # state, which the GMP-3 checker then catches (Claim 7.2).
                self._record(
                    EventKind.INTERNAL,
                    peer=sender,
                    detail=(
                        f"undetected divergence at version {msg.version}: "
                        f"local {state.seq[-1]} vs {msg.ops[-1]}"
                    ),
                )
        else:
            missing = msg.version - state.version
            if missing > len(msg.ops):
                self.buffer.hold(sender, msg)
                return
            self._apply_reconfig_ops(msg.ops, msg.version)
            if self.crashed:
                return
        previous_mgr = state.mgr
        state.set_mgr(sender)
        if msg.invis is not None:
            self._adopt_contingent(msg.invis, sender, msg.version + 1)
        else:
            state.set_plan(None)
        if not self.crashed:
            # Covers the invisible-commit path (msg.version == state.version)
            # where no view is installed yet coordinatorship still moved:
            # without this, layers never learn the Mgr changed.
            self._notify_coordinator_changed(previous_mgr)
        self._after_install()

    # ------------------------------------------------------------------
    # Post-install housekeeping
    # ------------------------------------------------------------------

    def _after_install(self) -> None:
        """Replay newly applicable buffered messages; re-evaluate roles."""
        if self.crashed or self.state is None:
            return
        for sender, payload in self.buffer.release(self.state.version):
            if self.crashed:
                return
            if self.believes_faulty(sender):
                continue
            self.on_message(sender, payload)
        self._react()

    # ------------------------------------------------------------------
    # Trace helpers
    # ------------------------------------------------------------------

    def _record(self, kind: EventKind, peer: Optional[ProcessId] = None, detail: str = "") -> None:
        self.network.trace.record(
            self.pid,
            kind,
            time=self.network.scheduler.now,
            peer=peer,
            detail=detail,
        )

    def _record_install(self) -> None:
        assert self.state is not None
        self.network.trace.record(
            self.pid,
            EventKind.INSTALL,
            time=self.network.scheduler.now,
            version=self.state.version,
            view=self.state.snapshot_view(),
        )
        self._span_end("view.install", key=(self.pid, self.state.version))
        if self.app is not None:
            self.app.on_view_installed(
                self.state.version, self.state.snapshot_view(), self.state.mgr
            )

    def _notify_coordinator_changed(self, previous_mgr: ProcessId) -> None:
        """Tell the app layer the Mgr moved (install callbacks fire during
        ``_apply_reconfig_ops``, *before* ``set_mgr`` — so without this the
        layer only ever sees the outgoing coordinator)."""
        state = self.state
        if state is None or state.mgr == previous_mgr:
            return
        if self.app is not None:
            self.app.on_coordinator_changed(state.version, state.mgr)


class AppLayer:
    """Interface for services layered on the membership abstraction.

    Attach via ``member.app = layer``.  The member forwards every payload
    the core protocol does not recognise to :meth:`on_message` and reports
    every local view installation to :meth:`on_view_installed`.  Layers send
    through the member's ``send``/``broadcast`` as usual.
    """

    def on_message(self, sender: ProcessId, payload: object) -> None:
        """Handle an application payload (default: ignore)."""

    def on_view_installed(
        self, version: int, view: tuple[ProcessId, ...], mgr: ProcessId
    ) -> None:
        """React to a newly installed view (default: ignore)."""

    def on_coordinator_changed(self, version: int, mgr: ProcessId) -> None:
        """React to coordinatorship moving to ``mgr`` at ``version``.

        Fired at the commit point of a three-phase reconfiguration — both
        when this member assumes the role and when it adopts another
        coordinator's commit, including the invisible-commit path where the
        view was already installed and no :meth:`on_view_installed` fires.
        Default: ignore."""

    def before_view_agreement(self, version: int) -> None:
        """Flush hook: called synchronously before this member agrees to a
        view change (before it sends any OK for ``version``, and before a
        coordinator commits it).  View-synchronous layers forward unstable
        messages here — anything sent in this call is on the wire before
        the agreement, which is what closes each view's delivery set.
        Default: nothing."""
