"""The paper's Group Membership Protocol (GMP).

This package implements the full protocol of Sections 3-7:

* :mod:`repro.core.messages` — the wire protocol;
* :mod:`repro.core.state` — the per-process bookkeeping the paper names
  (``Memb``, ``ver``, ``seq``, ``next``, ``Faulty``, ``HiFaulty``, rank);
* :mod:`repro.core.determine` — the reconfiguration proposal logic
  (``Determine``, ``GetStable``, ``ProposalsForVer`` of Figure 6), as pure
  functions over Phase I responses so they can be unit- and property-tested
  in isolation;
* :mod:`repro.core.rounds` — in-flight round state for the two-phase update
  and the three-phase reconfiguration;
* :mod:`repro.core.buffering` — "no messages from future views";
* :mod:`repro.core.member` — :class:`GMPMember`, the event-driven process
  combining the Mgr role, the outer-process role, reconfiguration initiation,
  and the join procedure;
* :mod:`repro.core.service` — the high-level public API.
"""

from repro.core.messages import Op, Plan, add, remove
from repro.core.member import GMPMember
from repro.core.service import GroupMembershipService, MembershipCluster

__all__ = [
    "Op",
    "Plan",
    "add",
    "remove",
    "GMPMember",
    "GroupMembershipService",
    "MembershipCluster",
]
