"""Reconfiguration proposal logic: Determine / GetStable / ProposalsForVer.

This is Figure 6 of the paper, implemented as pure functions over the
Phase I responses so the trickiest part of the protocol — detecting which
proposal could have been *invisibly committed* — is unit- and
property-testable without any network.

Interpretations of the figure's OCR-era inconsistencies are documented in
DESIGN.md §4: in the ``L = S = ∅`` case we consult ``ProposalsForVer(v)``
(proposals *for* the version being created), and ``GetStable`` picks the
proposal of the **lowest-ranked** proposer — per Proposition 5.6, a
higher-ranked proposer's committed majority would have been visible to the
lower-ranked proposer, so only the lowest-ranked proposer's operation can
have been committed invisibly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Sequence

from repro.errors import ProtocolInvariantError, ViewDivergenceError
from repro.ids import ProcessId
from repro.core.messages import Op, Plan

__all__ = ["PhaseOneResponse", "DetermineResult", "proposals_for_ver", "get_stable", "determine"]


@dataclass(frozen=True, slots=True)
class PhaseOneResponse:
    """One respondent's ``OK(seq(p), next(p))`` (the initiator included)."""

    proc: ProcessId
    version: int
    seq: tuple[Op, ...]
    plans: tuple[Plan, ...]


@dataclass(frozen=True, slots=True)
class DetermineResult:
    """What the initiator will propose.

    ``ops`` brings every respondent to ``version`` (normally one operation);
    ``invis`` is the possibly-invisibly-committed *next* operation the
    initiator must perform first once it assumes the Mgr role (or the
    initiator's own next pending operation when no contingency exists).
    ``candidate_count`` records how many distinct proposals the initiator
    faced for the version it is completing/creating (2 means GetStable had
    to disambiguate — the Proposition 5.6 situation).
    """

    ops: tuple[Op, ...]
    version: int
    invis: Optional[Op]
    candidate_count: int = 0


def proposals_for_ver(
    responses: Sequence[PhaseOneResponse], version: int
) -> dict[Op, list[ProcessId]]:
    """``ProposalsForVer(version, r)``: distinct proposed ops -> proposers.

    Placeholder plans ``(? : coord : ?)`` contribute nothing — they record
    that an interrogation was answered, not what was proposed.
    """
    found: dict[Op, list[ProcessId]] = {}
    for response in responses:
        for plan in response.plans:
            if plan.is_placeholder or plan.version != version:
                continue
            assert plan.op is not None
            proposers = found.setdefault(plan.op, [])
            if plan.coord not in proposers:
                proposers.append(plan.coord)
    return found


def get_stable(
    proposals: Mapping[Op, list[ProcessId]],
    view: Sequence[ProcessId],
    prefer: str = "junior",
) -> Op:
    """``GetStable``: the one proposal that could have committed invisibly.

    Among the (at most two, Proposition 5.5) competing proposals, returns
    the operation whose *lowest-ranked* proposer made it.  Rank is seniority
    in the initiator's view; a proposer no longer in the view (a removed
    coordinator) is treated as maximally senior and therefore loses.

    ``prefer="senior"`` inverts the choice.  That is *wrong* — it exists so
    the Claim 7.2 strawman baseline can demonstrate that guessing the other
    way violates GMP-3 (Proposition 5.6 is exactly the proof that "junior"
    is the only safe choice).
    """
    if not proposals:
        raise ProtocolInvariantError("GetStable called with no proposals")
    if len(proposals) > 2:
        raise ProtocolInvariantError(
            f"more than two proposals for one version: {dict(proposals)} "
            "(Proposition 5.5 violated — implementation bug)"
        )
    if prefer not in ("junior", "senior"):
        raise ValueError(f"unknown GetStable preference {prefer!r}")

    def juniority(op: Op) -> int:
        # Larger = more junior.  max over this op's proposers: the op is as
        # stable as its most junior proposer makes it.
        best = -1
        for proposer in proposals[op]:
            try:
                index = list(view).index(proposer)
            except ValueError:
                index = -1  # removed/unknown coordinator: maximally senior
            best = max(best, index)
        return best

    if prefer == "junior":
        return max(proposals, key=lambda op: (juniority(op), str(op)))
    return min(proposals, key=lambda op: (juniority(op), str(op)))


def determine(
    initiator: ProcessId,
    responses: Sequence[PhaseOneResponse],
    view: Sequence[ProcessId],
    current_mgr: ProcessId,
    get_next: Callable[[Optional[ProcessId]], Optional[Op]],
    prefer: str = "junior",
) -> DetermineResult:
    """``Determine(RL_r, invis, v)`` of Figure 6.

    Args:
        initiator: r itself (must appear among ``responses``).
        responses: Phase I responses, including r's own state.
        view: r's current local view (for GetStable ranking).
        current_mgr: the coordinator r is reconfiguring away from; proposed
            for removal when no competing proposal for the new version
            exists (line D.4).
        get_next: r's ``GetNext``: its own next pending operation, given a
            process to skip (the subject of the operation being proposed).

    Raises:
        ViewDivergenceError: if respondents' seqs are not prefix-ordered —
            Theorem 5.1 guarantees they are, so this indicates a bug.
        ProtocolInvariantError: if versions spread beyond the window
            Proposition 5.1 allows.
    """
    if not responses:
        raise ProtocolInvariantError("determine called with no responses")
    by_proc = {r.proc: r for r in responses}
    if initiator not in by_proc:
        raise ProtocolInvariantError("initiator missing from its own Phase I responses")
    r_version = by_proc[initiator].version

    versions = sorted({resp.version for resp in responses})
    if versions[0] < r_version - 1 or versions[-1] > r_version + 1:
        raise ProtocolInvariantError(
            f"Phase I versions {versions} outside [{r_version - 1}, "
            f"{r_version + 1}] (Proposition 5.1 violated)"
        )

    _check_prefix_consistency(responses)

    v_max = versions[-1]
    v_min = versions[0]

    if v_max > v_min:
        # Incomplete installation: someone is ahead of someone.  Complete
        # version v_max by replaying the donor's op suffix from v_min.
        donor = max(responses, key=lambda resp: resp.version)
        target_version = v_max
        ops = tuple(donor.seq[v_min:])
        if len(ops) != v_max - v_min:
            raise ProtocolInvariantError(
                f"donor seq length {len(donor.seq)} inconsistent with "
                f"version {donor.version} (version == |seq| invariant broken)"
            )
        contingents = proposals_for_ver(responses, target_version + 1)
        if not contingents:
            invis = get_next(ops[-1].target if ops else None)
        elif len(contingents) == 1:
            invis = next(iter(contingents))
        else:
            invis = get_stable(contingents, view, prefer)
        return DetermineResult(
            ops=ops,
            version=target_version,
            invis=invis,
            candidate_count=len(contingents),
        )

    # All respondents at r's version: propose version v = ver(r) + 1.
    target_version = r_version + 1
    candidates = proposals_for_ver(responses, target_version)
    if not candidates:
        final_op = Op("remove", current_mgr)
    elif len(candidates) == 1:
        final_op = next(iter(candidates))
    else:
        final_op = get_stable(candidates, view, prefer)
    invis = get_next(final_op.target)
    return DetermineResult(
        ops=(final_op,),
        version=target_version,
        invis=invis,
        candidate_count=len(candidates),
    )


def _check_prefix_consistency(responses: Sequence[PhaseOneResponse]) -> None:
    """Theorem 5.1: equal versions ⇒ equal seqs; lower version ⇒ prefix."""
    ordered = sorted(responses, key=lambda resp: resp.version)
    longest = ordered[-1].seq
    for resp in ordered:
        if tuple(longest[: len(resp.seq)]) != tuple(resp.seq):
            raise ViewDivergenceError(
                f"{resp.proc}'s committed sequence {list(map(str, resp.seq))} "
                f"is not a prefix of the longest respondent sequence "
                f"{list(map(str, longest))}"
            )
        if resp.version != len(resp.seq):
            raise ProtocolInvariantError(
                f"{resp.proc} reports version {resp.version} but has "
                f"committed {len(resp.seq)} operations"
            )
