"""Future-view message buffering (Section 3).

"…the latter involves adding view numbers to messages so that they can be
delayed when received from a process in a future view (i.e. until that view
is installed locally)."

Update-class messages carry the version they produce; a message for version
``v`` is *applicable* when the local version is exactly ``v - 1``, *stale*
when the local version is already ``>= v``, and *future* otherwise — future
messages are held here and replayed after each install.  Reconfiguration
messages never enter the buffer (footnote 10), with one deliberate
exception: a ReconfigCommit that would force a version skip is held, since
replaying it after a catch-up is strictly safer than dropping it (DESIGN.md
§4, note 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.ids import ProcessId
from repro.core.messages import Commit, Invite, ReconfigCommit

__all__ = ["FutureViewBuffer", "version_of"]


def version_of(payload: object) -> Optional[int]:
    """The view version an update-class payload produces, if any."""
    if isinstance(payload, (Invite, Commit, ReconfigCommit)):
        return payload.version
    return None


@dataclass(frozen=True, slots=True)
class _Held:
    sender: ProcessId
    payload: object
    version: int


class FutureViewBuffer:
    """Holds messages from future views until they become applicable."""

    def __init__(self) -> None:
        self._held: list[_Held] = []

    def __len__(self) -> int:
        return len(self._held)

    def hold(self, sender: ProcessId, payload: object) -> None:
        version = version_of(payload)
        if version is None:
            raise ValueError(f"cannot buffer unversioned payload {payload!r}")
        self._held.append(_Held(sender, payload, version))

    def release(self, local_version: int) -> Iterator[tuple[ProcessId, object]]:
        """Yield newly applicable messages, oldest target version first.

        Messages for versions now stale are dropped (their content was
        superseded by whatever advanced the local version past them).
        """
        self._held.sort(key=lambda h: h.version)
        while True:
            ready = [h for h in self._held if h.version == local_version + 1]
            if not ready:
                break
            head = ready[0]
            self._held.remove(head)
            yield head.sender, head.payload
        self._held = [h for h in self._held if h.version > local_version + 1]

    def drop_from(self, sender: ProcessId) -> None:
        """Discard held messages from a now-faulty sender (S1 applies here
        too: a buffered message must not outlive the decision to isolate
        its sender)."""
        self._held = [h for h in self._held if h.sender != sender]
