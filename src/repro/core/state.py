"""Per-process protocol state: the variables the paper names.

:class:`LocalState` is pure bookkeeping — no I/O, no scheduling — so every
transition can be unit-tested directly and the hypothesis-based property
tests can drive it through arbitrary op sequences.

The state corresponds to the paper's variables as follows:

=================  ========================================================
paper              here
=================  ========================================================
``Memb(p)``        :attr:`LocalState.view` (ordered, seniority first)
``ver(p)``         :attr:`LocalState.version`
``seq(p)``         :attr:`LocalState.seq`
``next(p)``        :attr:`LocalState.plans`
``Faulty(p)``      :attr:`LocalState.faulty` (believed faulty, still in view)
``Recovered(p)``   :attr:`LocalState.recovered` (join queue; Mgr role only)
``HiFaulty(p)``    :meth:`LocalState.hi_faulty` (derived from rank + faulty)
``Mgr``            :attr:`LocalState.mgr`
``rank(p)``        :meth:`LocalState.rank` (positional seniority)
=================  ========================================================

Performance model
-----------------

Views change one operation at a time (Lemma 5.1), and — because agreement
succeeds in the common case — most members of a group traverse the *same*
sequence of concrete views.  :class:`ViewImage` exploits that: it is an
immutable snapshot of one concrete view (member tuple + position index),
and applying a committed op goes through :meth:`ViewImage.child`, which
memoizes the successor image per ``(op.kind, op.target)``.  The first
member to install version ``v+1`` pays the O(n) tuple rebuild once; every
other member applying the same delta gets the shared successor in O(1).
Per-member state keeps only the tiny mutable part (faulty/recovered sets,
plans, seq) — so per-event cost no longer scales with group size.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence, Union

from repro.errors import NotInViewError
from repro.ids import ProcessId, majority_size
from repro.core.messages import Op, Plan

__all__ = ["LocalState", "ViewImage"]


class ViewImage:
    """Immutable snapshot of one concrete view (seniority order).

    Shared between members: the cluster builds one image for the initial
    view and every member's :class:`LocalState` holds a reference; committed
    operations advance the reference via :meth:`child`, whose per-image memo
    makes delta application O(1) amortized across the group.

    The memo is keyed by ``(op.kind, op.target)`` — exactly the delta the
    protocol commits for one version step — so two members applying the
    same committed op from the same predecessor view always converge on
    the *same* successor object (pointer-equal, not merely value-equal).
    """

    __slots__ = ("members", "index", "_children")

    def __init__(self, members: Iterable[ProcessId]) -> None:
        as_tuple = tuple(members)
        index: dict[ProcessId, int] = {}
        for position, member in enumerate(as_tuple):
            if member in index:
                raise ValueError(f"view contains duplicate member {member}")
            index[member] = position
        self.members: tuple[ProcessId, ...] = as_tuple
        #: position of each member — O(1) membership *and* rank queries.
        self.index: dict[ProcessId, int] = index
        #: successor memo; never pickled (see :meth:`__reduce__`) because a
        #: restored snapshot can rebuild children on demand.
        self._children: dict[tuple[str, ProcessId], "ViewImage"] = {}

    # ------------------------------------------------------------ queries

    def __contains__(self, member: object) -> bool:
        return member in self.index

    def __len__(self) -> int:
        return len(self.members)

    def __iter__(self) -> Iterator[ProcessId]:
        return iter(self.members)

    def __getitem__(self, position: int) -> ProcessId:
        return self.members[position]

    def position(self, member: ProcessId) -> int:
        """Index of ``member`` in the view; raises ``ValueError`` if absent."""
        try:
            return self.index[member]
        except KeyError:
            raise ValueError(
                f"{member} is not a member of view {list(self.members)}"
            ) from None

    # ------------------------------------------------------------- deltas

    def child(self, op: Op) -> "ViewImage":
        """The successor view after one committed operation.

        Memoized: all members applying the same op from this image share
        one successor object (and, transitively, its own memo).
        """
        key = (op.kind, op.target)
        cached = self._children.get(key)
        if cached is not None:
            return cached
        if op.is_remove:
            gone = self.index[op.target]
            successor = ViewImage(self.members[:gone] + self.members[gone + 1 :])
        else:
            successor = ViewImage(self.members + (op.target,))
        self._children[key] = successor
        return successor

    # ------------------------------------------------------------- pickle

    def __reduce__(self) -> tuple:
        # Rebuild from the member tuple alone: the successor memo is a pure
        # cache and must not leak unbounded object graphs into snapshots
        # (the explorer pickles cluster state per branch).  Pickle's object
        # memo still preserves *sharing*: members referencing one image
        # before a dump share one image after the load.
        return (ViewImage, (self.members,))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ViewImage({list(self.members)!r})"


def _as_image(view: Union["ViewImage", Sequence[ProcessId]]) -> ViewImage:
    return view if isinstance(view, ViewImage) else ViewImage(view)


class LocalState:
    """The protocol state of one group member.

    Not a dataclass: ``view`` is a property over the shared
    :class:`ViewImage` so that membership, rank and successor computation
    are O(1) on the per-event hot path.  The constructor keeps the old
    field order/keywords, and accepts a list, tuple or ``ViewImage`` for
    ``view`` — pass the same image to many members to share it.
    """

    __slots__ = (
        "me",
        "version",
        "seq",
        "plans",
        "faulty",
        "ever_faulty",
        "recovered",
        "mgr",
        "_image",
        "_faulty_tuple",
    )

    #: When enabled (tests only), every mutation re-derives the cached
    #: tuples from full scans — the seed implementation's semantics — and
    #: asserts they match the incremental bookkeeping.
    shadow_validate = False

    def __init__(
        self,
        me: ProcessId,
        view: Union[ViewImage, Sequence[ProcessId]],
        version: int = 0,
        seq: Optional[list[Op]] = None,
        plans: Optional[list[Plan]] = None,
        faulty: Optional[set[ProcessId]] = None,
        ever_faulty: Optional[set[ProcessId]] = None,
        recovered: Optional[list[ProcessId]] = None,
        mgr: Optional[ProcessId] = None,
    ) -> None:
        image = _as_image(view)
        if mgr is None:
            if not image.members:
                raise ValueError("a member must start with a non-empty view")
            mgr = image.members[0]
        self.me = me
        self.version = version
        self.seq: list[Op] = seq if seq is not None else []
        self.plans: list[Plan] = plans if plans is not None else []
        #: believed faulty and still present in ``view`` (the paper's Faulty(p)).
        self.faulty: set[ProcessId] = faulty if faulty is not None else set()
        #: every process ever believed faulty — drives S1 isolation forever.
        self.ever_faulty: set[ProcessId] = (
            ever_faulty if ever_faulty is not None else set()
        )
        #: join queue (order matters: FIFO admission).
        self.recovered: list[ProcessId] = recovered if recovered is not None else []
        self.mgr: ProcessId = mgr
        self._image = image
        self._faulty_tuple: Optional[tuple[ProcessId, ...]] = None

    # ----------------------------------------------------------- identity

    @property
    def view(self) -> tuple[ProcessId, ...]:
        """``Memb(me)`` as an immutable seniority-ordered tuple."""
        return self._image.members

    @property
    def image(self) -> ViewImage:
        """The shared view snapshot (read-only; advanced by :meth:`apply`)."""
        return self._image

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LocalState(me={self.me!r}, view={list(self.view)!r}, "
            f"version={self.version}, mgr={self.mgr!r}, "
            f"faulty={self.faulty!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LocalState):
            return NotImplemented
        return (
            self.me == other.me
            and self.view == other.view
            and self.version == other.version
            and self.seq == other.seq
            and self.plans == other.plans
            and self.faulty == other.faulty
            and self.ever_faulty == other.ever_faulty
            and self.recovered == other.recovered
            and self.mgr == other.mgr
        )

    __hash__ = None  # type: ignore[assignment]  # mutable, like the old dataclass

    # ----------------------------------------------------------- membership

    def is_member(self, proc: ProcessId) -> bool:
        return proc in self._image.index

    def position(self, proc: ProcessId) -> int:
        """Index of ``proc`` within the view (0 = most senior)."""
        return self._image.position(proc)

    def rank(self, proc: ProcessId) -> int:
        """Seniority rank within the current view (Mgr highest)."""
        image = self._image
        return len(image.members) - image.position(proc)

    def my_rank(self) -> int:
        return self.rank(self.me)

    def seniors(self) -> tuple[ProcessId, ...]:
        """Members strictly senior to me, most senior first."""
        image = self._image
        return image.members[: image.position(self.me)]

    def majority(self) -> int:
        """``mu`` for the current view size."""
        return majority_size(len(self._image.members))

    # --------------------------------------------------------------- faults

    def note_faulty(self, target: ProcessId) -> bool:
        """Record belief that ``target`` is faulty.  Returns True if new."""
        if target == self.me or target in self.ever_faulty:
            return False
        self.ever_faulty.add(target)
        if target in self._image.index:
            self.faulty.add(target)
            self._faulty_tuple = None
        if target in self.recovered:
            self.recovered.remove(target)
        if LocalState.shadow_validate:
            self._shadow_check()
        return True

    def note_operating(self, target: ProcessId) -> bool:
        """Record that ``target`` is a (new) operational joiner."""
        if target == self.me or target in self.ever_faulty:
            return False
        if target in self._image.index or target in self.recovered:
            return False
        self.recovered.append(target)
        if LocalState.shadow_validate:
            self._shadow_check()
        return True

    def hi_faulty(self) -> tuple[ProcessId, ...]:
        """``HiFaulty(me)``: higher-ranked members believed faulty."""
        if not self.faulty:
            return ()
        mine = self._image.position(self.me)
        index = self._image.index
        return tuple(p for p in self.faulty_members() if index[p] < mine)

    def should_initiate_reconfiguration(self) -> bool:
        """The initiation rule of Section 4.2.

        True when I believe *every* member ranked above me faulty — which is
        only a reconfiguration trigger when there is someone above me (the
        coordinator never reconfigures against itself) and I am not already
        the coordinator.
        """
        index = self._image.index
        if self.me == self.mgr or self.me not in index:
            return False
        mine = index[self.me]
        # With fewer faulty beliefs than seniors, some senior is trusted;
        # this keeps the common case O(1) per delivered message.
        if mine == 0 or len(self.faulty) < mine:
            return False
        faulty = self.faulty
        for p in self._image.members[:mine]:
            if p not in faulty:
                return False
        return True

    def faulty_members(self) -> tuple[ProcessId, ...]:
        """Members of the current view believed faulty, in view order.

        Queried once per delivered message by outer members, so the tuple
        is cached; :meth:`note_faulty` and :meth:`apply` (the only writers
        of ``faulty``/``view``) invalidate it.  The rebuild sorts the
        (small) faulty set by view position — O(f log f), not O(n).
        """
        cached = self._faulty_tuple
        if cached is None:
            if self.faulty:
                index = self._image.index
                cached = tuple(sorted(self.faulty, key=index.__getitem__))
            else:
                cached = ()
            self._faulty_tuple = cached
        return cached

    # ------------------------------------------------------------------ ops

    def can_apply(self, op: Op) -> bool:
        if op.is_remove:
            return op.target in self._image.index
        return op.target not in self._image.index

    def apply(self, op: Op, new_version: int) -> None:
        """Apply one committed operation, advancing to ``new_version``."""
        if new_version != self.version + 1:
            raise NotInViewError(
                f"{self.me}: cannot install version {new_version} from "
                f"{self.version} (views change one at a time)"
            )
        image = self._image
        if op.is_remove:
            if op.target not in image.index:
                raise NotInViewError(
                    f"{self.me}: committed removal of non-member {op.target}"
                )
            self.faulty.discard(op.target)
        else:
            if op.target in image.index:
                raise NotInViewError(
                    f"{self.me}: committed addition of existing member {op.target}"
                )
        self._image = image.child(op)
        self._faulty_tuple = None
        self.version = new_version
        self.seq.append(op)
        if LocalState.shadow_validate:
            self._shadow_check()

    def next_operation(self, skip: Optional[ProcessId] = None) -> Optional[Op]:
        """The paper's ``GetNext``: the next pending view change, if any.

        Joins are served before removals (Figure 8 checks Recovered first).
        ``skip`` excludes one process (used when that process is already the
        subject of the operation being committed right now).
        """
        index = self._image.index
        for joiner in self.recovered:
            if joiner != skip and joiner not in index:
                return Op("add", joiner)
        for member in self.faulty_members():
            if member != skip:
                return Op("remove", member)
        return None

    # ------------------------------------------------------------------ mgr

    def set_mgr(self, mgr: ProcessId) -> None:
        """Install a new coordinator (``Mgr``).

        The coordinator changes only at the commit point of a three-phase
        reconfiguration (Section 4.2) — either when this process assumes the
        role itself or when it installs a ``ReconfigCommit`` from the new
        coordinator — so, like the other protocol variables, the field is
        written through this method rather than assigned ad hoc.
        """
        self.mgr = mgr

    # ---------------------------------------------------------------- plans

    def set_plan(self, plan: Optional[Plan]) -> None:
        """Replace ``next(me)`` wholesale (None clears it)."""
        self.plans = [plan] if plan is not None else []

    def append_placeholder(self, coord: ProcessId) -> None:
        """Record the paper's ``(? : coord : ?)`` after answering an
        interrogation."""
        self.plans.append(Plan(None, coord, None))

    def snapshot_plans(self) -> tuple[Plan, ...]:
        return tuple(self.plans)

    def snapshot_seq(self) -> tuple[Op, ...]:
        return tuple(self.seq)

    def snapshot_view(self) -> tuple[ProcessId, ...]:
        return self._image.members

    # ------------------------------------------------------------- shadow

    def _shadow_check(self) -> None:
        """Re-derive every cached structure with the seed implementation's
        full scans and assert the incremental bookkeeping agrees.

        Enabled only by the equivalence tests (:attr:`shadow_validate`);
        costs O(n) per mutation, exactly what the incremental paths avoid.
        """
        members = self._image.members
        assert len(set(members)) == len(members), "duplicate members in view"
        assert self._image.index == {
            p: i for i, p in enumerate(members)
        }, "position index out of step with member tuple"
        assert self.faulty <= set(members), "faulty escaped the view"
        assert self.faulty <= self.ever_faulty, "faulty not in ever_faulty"
        full_scan = tuple(p for p in members if p in self.faulty)
        if self._faulty_tuple is not None:
            assert self._faulty_tuple == full_scan, (
                "cached faulty ordering diverged from full view scan: "
                f"{self._faulty_tuple} != {full_scan}"
            )
        # ``recovered`` may overlap the view: apply(add) leaves the joiner
        # in place and next_operation() filters lazily, so only uniqueness
        # is an invariant here.
        assert len(set(self.recovered)) == len(self.recovered), (
            "duplicate joiners in recovered"
        )
