"""Per-process protocol state: the variables the paper names.

:class:`LocalState` is pure bookkeeping — no I/O, no scheduling — so every
transition can be unit-tested directly and the hypothesis-based property
tests can drive it through arbitrary op sequences.

The state corresponds to the paper's variables as follows:

=================  ========================================================
paper              here
=================  ========================================================
``Memb(p)``        :attr:`LocalState.view` (ordered, seniority first)
``ver(p)``         :attr:`LocalState.version`
``seq(p)``         :attr:`LocalState.seq`
``next(p)``        :attr:`LocalState.plans`
``Faulty(p)``      :attr:`LocalState.faulty` (believed faulty, still in view)
``Recovered(p)``   :attr:`LocalState.recovered` (join queue; Mgr role only)
``HiFaulty(p)``    :meth:`LocalState.hi_faulty` (derived from rank + faulty)
``Mgr``            :attr:`LocalState.mgr`
``rank(p)``        :meth:`LocalState.rank` (positional seniority)
=================  ========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import NotInViewError
from repro.ids import ProcessId, majority_size, rank_of
from repro.core.messages import Op, Plan

__all__ = ["LocalState"]


@dataclass
class LocalState:
    """The protocol state of one group member."""

    me: ProcessId
    view: list[ProcessId]
    version: int = 0
    seq: list[Op] = field(default_factory=list)
    plans: list[Plan] = field(default_factory=list)
    #: believed faulty and still present in ``view`` (the paper's Faulty(p)).
    faulty: set[ProcessId] = field(default_factory=set)
    #: every process ever believed faulty — drives S1 isolation forever.
    ever_faulty: set[ProcessId] = field(default_factory=set)
    #: join queue (order matters: FIFO admission).
    recovered: list[ProcessId] = field(default_factory=list)
    mgr: ProcessId = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.mgr is None:
            if not self.view:
                raise ValueError("a member must start with a non-empty view")
            self.mgr = self.view[0]
        # Parallel set over ``view`` for O(1) membership tests — the single
        # hottest query at large group sizes.  ``view`` is mutated only by
        # :meth:`apply`, which keeps the set (and the snapshot cache) in
        # step.  Not a dataclass field: equality/repr stay view-based.
        self._view_set: set[ProcessId] = set(self.view)
        self._view_tuple: Optional[tuple[ProcessId, ...]] = None
        self._faulty_tuple: Optional[tuple[ProcessId, ...]] = None

    # ----------------------------------------------------------- membership

    def is_member(self, proc: ProcessId) -> bool:
        return proc in self._view_set

    def rank(self, proc: ProcessId) -> int:
        """Seniority rank within the current view (Mgr highest)."""
        return rank_of(proc, self.view)

    def my_rank(self) -> int:
        return self.rank(self.me)

    def seniors(self) -> tuple[ProcessId, ...]:
        """Members strictly senior to me, most senior first."""
        index = self.view.index(self.me)
        return tuple(self.view[:index])

    def majority(self) -> int:
        """``mu`` for the current view size."""
        return majority_size(len(self.view))

    # --------------------------------------------------------------- faults

    def note_faulty(self, target: ProcessId) -> bool:
        """Record belief that ``target`` is faulty.  Returns True if new."""
        if target == self.me or target in self.ever_faulty:
            return False
        self.ever_faulty.add(target)
        if target in self._view_set:
            self.faulty.add(target)
            self._faulty_tuple = None
        if target in self.recovered:
            self.recovered.remove(target)
        return True

    def note_operating(self, target: ProcessId) -> bool:
        """Record that ``target`` is a (new) operational joiner."""
        if target == self.me or target in self.ever_faulty:
            return False
        if target in self._view_set or target in self.recovered:
            return False
        self.recovered.append(target)
        return True

    def hi_faulty(self) -> tuple[ProcessId, ...]:
        """``HiFaulty(me)``: higher-ranked members believed faulty."""
        return tuple(p for p in self.seniors() if p in self.faulty)

    def should_initiate_reconfiguration(self) -> bool:
        """The initiation rule of Section 4.2.

        True when I believe *every* member ranked above me faulty — which is
        only a reconfiguration trigger when there is someone above me (the
        coordinator never reconfigures against itself) and I am not already
        the coordinator.
        """
        if self.me == self.mgr or self.me not in self._view_set:
            return False
        # Walk the view prefix directly instead of materializing seniors():
        # this runs once per delivered message, so no tuple per call.
        faulty = self.faulty
        have_seniors = False
        for p in self.view:
            if p == self.me:
                break
            have_seniors = True
            if p not in faulty:
                return False
        return have_seniors

    def faulty_members(self) -> tuple[ProcessId, ...]:
        """Members of the current view believed faulty, in view order.

        Queried once per delivered message by outer members, so the tuple
        is cached; :meth:`note_faulty` and :meth:`apply` (the only writers
        of ``faulty``/``view``) invalidate it.
        """
        cached = self._faulty_tuple
        if cached is None:
            faulty = self.faulty
            cached = (
                tuple(p for p in self.view if p in faulty) if faulty else ()
            )
            self._faulty_tuple = cached
        return cached

    # ------------------------------------------------------------------ ops

    def can_apply(self, op: Op) -> bool:
        if op.is_remove:
            return op.target in self._view_set
        return op.target not in self._view_set

    def apply(self, op: Op, new_version: int) -> None:
        """Apply one committed operation, advancing to ``new_version``."""
        if new_version != self.version + 1:
            raise NotInViewError(
                f"{self.me}: cannot install version {new_version} from "
                f"{self.version} (views change one at a time)"
            )
        if op.is_remove:
            if op.target not in self._view_set:
                raise NotInViewError(
                    f"{self.me}: committed removal of non-member {op.target}"
                )
            self.view.remove(op.target)
            self._view_set.discard(op.target)
            self.faulty.discard(op.target)
        else:
            if op.target in self._view_set:
                raise NotInViewError(
                    f"{self.me}: committed addition of existing member {op.target}"
                )
            self.view.append(op.target)
            self._view_set.add(op.target)
        self._view_tuple = None
        self._faulty_tuple = None
        self.version = new_version
        self.seq.append(op)

    def next_operation(self, skip: Optional[ProcessId] = None) -> Optional[Op]:
        """The paper's ``GetNext``: the next pending view change, if any.

        Joins are served before removals (Figure 8 checks Recovered first).
        ``skip`` excludes one process (used when that process is already the
        subject of the operation being committed right now).
        """
        for joiner in self.recovered:
            if joiner != skip and joiner not in self._view_set:
                return Op("add", joiner)
        for member in self.view:
            if member != skip and member in self.faulty:
                return Op("remove", member)
        return None

    # ------------------------------------------------------------------ mgr

    def set_mgr(self, mgr: ProcessId) -> None:
        """Install a new coordinator (``Mgr``).

        The coordinator changes only at the commit point of a three-phase
        reconfiguration (Section 4.2) — either when this process assumes the
        role itself or when it installs a ``ReconfigCommit`` from the new
        coordinator — so, like the other protocol variables, the field is
        written through this method rather than assigned ad hoc.
        """
        self.mgr = mgr

    # ---------------------------------------------------------------- plans

    def set_plan(self, plan: Optional[Plan]) -> None:
        """Replace ``next(me)`` wholesale (None clears it)."""
        self.plans = [plan] if plan is not None else []

    def append_placeholder(self, coord: ProcessId) -> None:
        """Record the paper's ``(? : coord : ?)`` after answering an
        interrogation."""
        self.plans.append(Plan(None, coord, None))

    def snapshot_plans(self) -> tuple[Plan, ...]:
        return tuple(self.plans)

    def snapshot_seq(self) -> tuple[Op, ...]:
        return tuple(self.seq)

    def snapshot_view(self) -> tuple[ProcessId, ...]:
        snapshot = self._view_tuple
        if snapshot is None:
            snapshot = self._view_tuple = tuple(self.view)
        return snapshot
