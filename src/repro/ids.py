"""Process identity and rank arithmetic.

The paper models process recovery by treating a recovered process as a *new
and different process instance* (Section 2.1).  We therefore identify a
process by a ``(name, incarnation)`` pair: the name is stable across restarts
of the same host/role while the incarnation distinguishes instances.  A
crashed ``("a", 0)`` that later rejoins does so as ``("a", 1)``, which keeps
property GMP-4 (no re-instatement) meaningful without forbidding re-admission
of the underlying host.

Rank (Section 4.2) is *seniority* within the current local view: the view is
an ordered sequence with the coordinator (``Mgr``) first, and
``rank(p) = len(view) - index(p)`` so that ``rank(Mgr) == len(view)`` and the
most junior member has rank 1.  Whenever a member is removed every
lower-ranked member's rank rises by one automatically, exactly as the paper
prescribes, because rank is derived from position rather than stored.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = [
    "ProcessId",
    "pid",
    "rank_of",
    "manager_of",
    "higher_ranked",
    "lower_ranked",
    "majority_size",
    "ordered_view",
]


class ProcessId:
    """Identity of one process instance.

    Ordering is lexicographic on ``(name, incarnation)``; it is used only for
    deterministic tie-breaking in tests and workload generators, never for
    protocol rank (which is positional seniority).

    Hand-written (not a dataclass): identity comparison and hashing are the
    single hottest operations in large-group simulations (view membership,
    round bookkeeping, channel clocks), so the hash is computed once at
    construction and cached in a slot, and the comparison methods avoid
    building a tuple per call.  Instances stay immutable: attribute
    assignment raises, like the frozen dataclass this replaces.
    """

    __slots__ = ("name", "incarnation", "_hash")

    def __init__(self, name: str, incarnation: int = 0) -> None:
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "incarnation", incarnation)
        object.__setattr__(self, "_hash", hash((name, incarnation)))

    def __setattr__(self, attr: str, value: object) -> None:
        raise AttributeError(f"ProcessId is immutable; cannot set {attr!r}")

    def __delattr__(self, attr: str) -> None:
        raise AttributeError(f"ProcessId is immutable; cannot delete {attr!r}")

    def __eq__(self, other: object) -> bool:
        if other.__class__ is ProcessId:
            return self.name == other.name and self.incarnation == other.incarnation
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        if other.__class__ is ProcessId:
            return self.name != other.name or self.incarnation != other.incarnation
        return NotImplemented

    def __lt__(self, other: "ProcessId") -> bool:
        if other.__class__ is not ProcessId:
            return NotImplemented
        return (self.name, self.incarnation) < (other.name, other.incarnation)

    def __le__(self, other: "ProcessId") -> bool:
        if other.__class__ is not ProcessId:
            return NotImplemented
        return (self.name, self.incarnation) <= (other.name, other.incarnation)

    def __gt__(self, other: "ProcessId") -> bool:
        if other.__class__ is not ProcessId:
            return NotImplemented
        return (self.name, self.incarnation) > (other.name, other.incarnation)

    def __ge__(self, other: "ProcessId") -> bool:
        if other.__class__ is not ProcessId:
            return NotImplemented
        return (self.name, self.incarnation) >= (other.name, other.incarnation)

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self) -> tuple:
        # Rebuild through __init__ so the cached hash is recomputed in the
        # unpickling interpreter (hash randomisation differs per process).
        return (ProcessId, (self.name, self.incarnation))

    def __str__(self) -> str:  # pragma: no cover - trivial
        if self.incarnation == 0:
            return self.name
        return f"{self.name}#{self.incarnation}"

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"ProcessId({self.name!r}, {self.incarnation})"

    def next_incarnation(self) -> "ProcessId":
        """The identity this process would rejoin under after a crash."""
        return ProcessId(self.name, self.incarnation + 1)


def pid(name: str, incarnation: int = 0) -> ProcessId:
    """Shorthand constructor used pervasively in tests and examples."""
    return ProcessId(name, incarnation)


def rank_of(member: ProcessId, view: Sequence[ProcessId]) -> int:
    """Seniority rank of ``member`` within ``view``.

    ``rank(Mgr) == len(view)`` and the most junior member has rank 1.

    Raises:
        ValueError: if ``member`` is not in ``view`` (the paper leaves the
            rank of an excluded process undefined; we fail loudly instead).
    """
    try:
        index = view.index(member)  # type: ignore[arg-type]
    except (ValueError, AttributeError):
        index = _index_of(member, view)
    return len(view) - index


def _index_of(member: ProcessId, view: Sequence[ProcessId]) -> int:
    for i, candidate in enumerate(view):
        if candidate == member:
            return i
    raise ValueError(f"{member} is not a member of view {list(view)}")


def manager_of(view: Sequence[ProcessId]) -> ProcessId:
    """The coordinator of ``view``: its highest-ranked (most senior) member."""
    if not view:
        raise ValueError("an empty view has no manager")
    return view[0]


def higher_ranked(member: ProcessId, view: Sequence[ProcessId]) -> tuple[ProcessId, ...]:
    """All members strictly senior to ``member``, most senior first."""
    index = _index_of(member, view)
    return tuple(view[:index])


def lower_ranked(member: ProcessId, view: Sequence[ProcessId]) -> tuple[ProcessId, ...]:
    """All members strictly junior to ``member``, most senior first."""
    index = _index_of(member, view)
    return tuple(view[index + 1 :])


def majority_size(view_size: int) -> int:
    """Cardinality of a majority subset: ``mu(S) = floor(|S|/2) + 1``.

    This is the paper's :math:`\\mu` (Section 4.3); Facts 7.1-7.3 and
    Proposition 7.1 about intersecting majorities of neighbouring views are
    exercised against this definition in the property tests.
    """
    if view_size <= 0:
        raise ValueError("majority of an empty set is undefined")
    return view_size // 2 + 1


def ordered_view(members: Iterable[ProcessId]) -> tuple[ProcessId, ...]:
    """Normalise an iterable of members into an immutable view tuple.

    The *order is preserved* — seniority is positional — so callers must pass
    members most-senior-first.  Duplicates are rejected.
    """
    view = tuple(members)
    if len(set(view)) != len(view):
        raise ValueError(f"view contains duplicate members: {view}")
    return view
