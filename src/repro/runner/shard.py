"""Sharded simulation: partition a churn workload across worker processes.

The flat per-event cost work (see ``core/state.py`` / docs/PERFORMANCE.md)
makes one simulator fast; this module makes *many* simulators cooperate.
A sharded run partitions the workload's **independent process subsets**
("groups" — e.g. 16 disjoint churn clusters that never message each other)
across the existing :mod:`repro.runner.pool`, with a deterministic
cross-shard message-exchange barrier:

* **Lamport-style epoch rounds** — simulated time is cut into fixed-length
  epochs.  Within an epoch each shard advances its groups independently
  (``scheduler.run(until=boundary)``; an event scheduled exactly *at* the
  boundary runs inside that epoch, so crash-on-boundary cases land in the
  same epoch for every shard count).  At the boundary each group emits an
  :class:`EpochEnvelope` of cross-group messages picked up during the
  epoch; the :class:`EpochBarrier` routes them for delivery at the *next*
  epoch — the classic conservative (lookahead = one epoch) parallel
  discrete-event scheme.
* **Seeded per-shard RNG** — each shard derives an RNG from the root seed
  and deliberately *shuffles* the order in which it advances its groups
  every epoch.  Group results must not depend on intra-epoch service
  order; shuffling makes any accidental coupling fail the determinism
  tests immediately instead of silently.
* **Deterministic merge** — each group's FULL trace is canonicalized to
  text lines (excluding process-global artifacts such as ``msg_id``,
  which depend on how many simulations share one interpreter), merged by
  ``(time, group, position)`` and hashed.  Same root seed ⇒ byte-identical
  merged trace for any shard count.

Churn groups here are genuinely independent, so every envelope is empty —
and the barrier *validates* that: a workload whose groups secretly share
processes raises :class:`ShardExchangeError` instead of silently diverging.
"""

from __future__ import annotations

import hashlib
import random
import time as _time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import ReproError
from repro.model.events import Event, EventKind
from repro.runner.pool import parallel_map
from repro.sim.network import FixedDelay
from repro.sim.trace import TraceLevel

__all__ = [
    "EpochBarrier",
    "EpochEnvelope",
    "GroupSpec",
    "ShardExchangeError",
    "ShardPlan",
    "ShardResult",
    "ShardedRun",
    "derive_group_seed",
    "shard_churn_run",
    "shard_speedup_report",
]

#: default epoch length in simulated time units.  The churn workload's
#: scripted events land at t=5/40/60, so 10.0 puts the junior crash (t=40)
#: and the coordinator crash (t=60) exactly on epoch boundaries — the case
#: the determinism tests pin down.
DEFAULT_EPOCH_LENGTH = 10.0

_MAX_EPOCHS = 10_000
_MAX_EVENTS_PER_EPOCH = 5_000_000


class ShardExchangeError(ReproError):
    """The epoch barrier saw traffic that violates the sharding contract."""


def derive_group_seed(root_seed: int, group: int) -> int:
    """Deterministic per-group seed, independent of shard placement.

    Hashing ``root:group`` (rather than e.g. ``root + group``) keeps group
    streams statistically unrelated and — critically — *identical no matter
    which shard or worker runs the group*, so re-sharding never changes
    results.
    """
    digest = hashlib.sha256(f"{root_seed}:{group}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class GroupSpec:
    """One independent process subset of the sharded workload."""

    index: int
    size: int
    seed: int


@dataclass(frozen=True)
class ShardPlan:
    """The full sharding decision for one run (picklable, worker-bound)."""

    shard_index: int
    groups: tuple[GroupSpec, ...]
    epoch_length: float
    trace_level: str
    root_seed: int


@dataclass(frozen=True)
class EpochEnvelope:
    """Everything one group hands across the barrier for one epoch.

    ``messages`` are ``(destination_group, payload)`` pairs picked up
    during the epoch and due for delivery at the start of the next one.
    Independent-subset workloads always produce empty envelopes; the
    barrier enforces it.
    """

    epoch: int
    source_group: int
    messages: tuple = ()


class EpochBarrier:
    """Collects per-epoch envelopes and routes them for the next epoch.

    The exchange discipline is Lamport-style: an envelope stamped with
    epoch ``e`` may only influence epochs ``>= e + 1``.  Envelopes from a
    stale or future epoch, or mentioning unknown groups, are contract
    violations and raise :class:`ShardExchangeError`.
    """

    def __init__(self, group_ids: Sequence[int]) -> None:
        self._group_ids = frozenset(group_ids)
        self._epoch = 0
        #: messages awaiting delivery at the next epoch start, per group.
        self._inbound: dict[int, list] = {g: [] for g in group_ids}
        self.exchanges = 0

    @property
    def epoch(self) -> int:
        return self._epoch

    def exchange(self, envelopes: Sequence[EpochEnvelope]) -> dict[int, list]:
        """Close the current epoch: validate and route every envelope.

        Returns the per-group inbound messages to inject at the start of
        the next epoch (always empty lists for independent subsets).
        """
        for envelope in envelopes:
            if envelope.epoch != self._epoch:
                raise ShardExchangeError(
                    f"envelope from group {envelope.source_group} is stamped "
                    f"epoch {envelope.epoch} at barrier epoch {self._epoch}"
                )
            if envelope.source_group not in self._group_ids:
                raise ShardExchangeError(
                    f"envelope from unknown group {envelope.source_group}"
                )
            for destination, payload in envelope.messages:
                if destination not in self._group_ids:
                    raise ShardExchangeError(
                        f"group {envelope.source_group} addressed unknown "
                        f"group {destination}"
                    )
                if destination == envelope.source_group:
                    raise ShardExchangeError(
                        f"group {destination} routed a message to itself "
                        "through the barrier"
                    )
                self._inbound[destination].append(payload)
        delivery = {g: self._inbound[g] for g in sorted(self._group_ids)}
        self._inbound = {g: [] for g in sorted(self._group_ids)}
        self._epoch += 1
        self.exchanges += 1
        return delivery


@dataclass
class ShardResult:
    """What one shard worker sends back to the driver."""

    shard_index: int
    #: canonical trace lines per group, keyed by group index.
    group_lines: dict[int, list[str]]
    events: int
    epochs: int
    exchanges: int
    #: wall-clock seconds this shard spent simulating.  On a host with
    #: fewer cores than shards this includes time lost to core contention.
    sim_wall: float
    #: CPU seconds this shard's worker process actually consumed — the
    #: contention-free cost of its partition.
    sim_cpu: float
    agreed: bool


@dataclass
class ShardedRun:
    """Merged result of a sharded churn run."""

    shards: int
    groups: int
    group_size: int
    seed: int
    epoch_length: float
    events: int
    epochs: int
    wall: float
    #: per-shard simulation walls (subject to core contention).
    shard_walls: list[float] = field(default_factory=list)
    #: per-shard CPU seconds (contention-free partition cost).
    shard_cpus: list[float] = field(default_factory=list)
    merged_digest: str = ""
    agreed: bool = True

    @property
    def critical_path(self) -> float:
        """The slowest shard's CPU cost: the wall clock of this run once
        one core per shard is available."""
        return max(self.shard_cpus) if self.shard_cpus else self.wall


def _canonical_event(group: int, event: Event) -> str:
    """One trace event as a placement-independent text line.

    Deliberately excludes ``MessageRecord.msg_id`` (a process-global
    counter whose value depends on how many group sims share one
    interpreter) while keeping everything protocol-visible: time, process,
    kind, per-process index, peer, payload type/category, version, view.
    """
    message = event.message
    if message is not None:
        payload = f"{message.category}:{type(message.payload).__name__}"
    else:
        payload = ""
    view = (
        ",".join(str(p) for p in event.view) if event.view is not None else ""
    )
    version = "" if event.version is None else str(event.version)
    peer = "" if event.peer is None else str(event.peer)
    return (
        f"{event.time:.9f}|g{group}|{event.proc}|{event.kind.value}"
        f"|{event.index}|{peer}|{payload}|{version}|{view}|{event.detail}"
    )


def _run_shard(plan: ShardPlan) -> ShardResult:
    """Advance every group of one shard through epoch-barrier rounds.

    Top-level and picklable: this is the function the worker pool runs.
    """
    from repro.core.service import MembershipCluster

    level = TraceLevel.coerce(plan.trace_level)
    started = _time.perf_counter()
    started_cpu = _time.process_time()
    clusters = []
    for spec in plan.groups:
        cluster = MembershipCluster.of_size(
            spec.size,
            prefix=f"g{spec.index}p",
            seed=spec.seed,
            delay_model=FixedDelay(1.0),
            trace_level=level,
        )
        cluster.start()
        cluster.join(f"g{spec.index}j0", at=5.0)
        cluster.crash(f"g{spec.index}p{spec.size - 1}", at=40.0)
        cluster.crash(f"g{spec.index}p0", at=60.0)
        clusters.append((spec, cluster))

    barrier = EpochBarrier([spec.index for spec, _ in clusters])
    # Per-shard RNG: shuffles intra-epoch service order.  Group results may
    # not depend on it — the determinism tests compare merged traces across
    # shard counts, so any hidden coupling breaks loudly.
    rng = random.Random(derive_group_seed(plan.root_seed, -1 - plan.shard_index))
    epoch = 0
    while True:
        boundary = (epoch + 1) * plan.epoch_length
        order = list(range(len(clusters)))
        rng.shuffle(order)
        for position in order:
            _, cluster = clusters[position]
            cluster.scheduler.run(
                until=boundary, max_events=_MAX_EVENTS_PER_EPOCH
            )
        # Close the epoch: independent churn groups never hand the barrier
        # any traffic, and the exchange validates that invariant.
        envelopes = [
            EpochEnvelope(epoch=epoch, source_group=spec.index)
            for spec, _ in clusters
        ]
        inbound = barrier.exchange(envelopes)
        if any(inbound.values()):  # pragma: no cover - contract guard
            raise ShardExchangeError(
                "independent churn groups received cross-shard messages"
            )
        epoch += 1
        if all(c.scheduler.pending() == 0 for _, c in clusters):
            break
        if epoch >= _MAX_EPOCHS:
            raise ShardExchangeError(
                f"groups still active after {epoch} epochs; runaway workload?"
            )
    sim_wall = _time.perf_counter() - started
    sim_cpu = _time.process_time() - started_cpu

    group_lines: dict[int, list[str]] = {}
    events = 0
    agreed = True
    for spec, cluster in clusters:
        events += len(cluster.trace)
        if level is TraceLevel.FULL:
            group_lines[spec.index] = [
                _canonical_event(spec.index, e) for e in cluster.trace
            ]
        else:
            group_lines[spec.index] = []
        live_states = [
            m.state
            for m in cluster.members.values()
            if not m.crashed and m.state is not None
        ]
        versions = {s.version for s in live_states}
        views = {s.view for s in live_states}
        if len(versions) > 1 or len(views) > 1:
            agreed = False
    return ShardResult(
        shard_index=plan.shard_index,
        group_lines=group_lines,
        events=events,
        epochs=epoch,
        exchanges=barrier.exchanges,
        sim_wall=sim_wall,
        sim_cpu=sim_cpu,
        agreed=agreed,
    )


def shard_churn_run(
    groups: int = 8,
    group_size: int = 25,
    shards: int = 1,
    seed: int = 0,
    epoch_length: float = DEFAULT_EPOCH_LENGTH,
    trace_level: str = "full",
    workers: Optional[int] = None,
) -> ShardedRun:
    """Run ``groups`` independent churn clusters across ``shards`` workers.

    Groups are dealt round-robin to shards, each group seeded from the
    root seed by :func:`derive_group_seed` — both choices are placement
    invariant, so the merged trace digest is identical for any ``shards``.

    ``workers`` defaults to ``shards`` (one pool process per shard).
    """
    if groups < 1 or shards < 1:
        raise ValueError("groups and shards must be positive")
    if shards > groups:
        raise ValueError(f"cannot spread {groups} groups over {shards} shards")
    specs = [
        GroupSpec(index=g, size=group_size, seed=derive_group_seed(seed, g))
        for g in range(groups)
    ]
    plans = [
        ShardPlan(
            shard_index=s,
            groups=tuple(spec for spec in specs if spec.index % shards == s),
            epoch_length=epoch_length,
            trace_level=trace_level,
            root_seed=seed,
        )
        for s in range(shards)
    ]
    started = _time.perf_counter()
    results: list[ShardResult] = parallel_map(
        _run_shard, plans, workers=workers if workers is not None else shards
    )
    wall = _time.perf_counter() - started

    merged: dict[int, list[str]] = {}
    for result in results:
        merged.update(result.group_lines)
    digest = hashlib.sha256()
    # Merge by (time, group, per-group position): a placement-independent
    # total order, because each group's internal order is its own scheduler
    # order and ties across groups break on the group index.
    lines = [
        line
        for group in sorted(merged)
        for line in merged[group]
    ]
    lines.sort(key=_merge_key)
    for line in lines:
        digest.update(line.encode())
        digest.update(b"\n")
    return ShardedRun(
        shards=shards,
        groups=groups,
        group_size=group_size,
        seed=seed,
        epoch_length=epoch_length,
        events=sum(r.events for r in results),
        epochs=max(r.epochs for r in results),
        wall=wall,
        shard_walls=[r.sim_wall for r in results],
        shard_cpus=[r.sim_cpu for r in results],
        merged_digest=digest.hexdigest(),
        agreed=all(r.agreed for r in results),
    )


def _merge_key(line: str) -> tuple[float, int, str]:
    time_text, group_text, rest = line.split("|", 2)
    return (float(time_text), int(group_text[1:]), rest)


def shard_speedup_report(
    groups: int = 8,
    group_size: int = 25,
    shard_counts: Sequence[int] = (1, 2, 4),
    seed: int = 0,
    epoch_length: float = DEFAULT_EPOCH_LENGTH,
    trace_level: str = "full",
    workers: Optional[int] = None,
) -> dict:
    """JSON-able shard sweep for the benchmark report.

    Reports, per shard count, the measured wall and the **critical path**
    (the slowest single shard's simulation wall — what the wall clock
    becomes once one core per shard is actually available).  On a
    single-core host the measured wall shows no speedup; the critical
    path is the honest scaling number, and both are recorded explicitly.
    """
    cells = []
    digests = set()
    baseline_wall: Optional[float] = None
    baseline_path: Optional[float] = None
    for shards in shard_counts:
        run = shard_churn_run(
            groups=groups,
            group_size=group_size,
            shards=shards,
            seed=seed,
            epoch_length=epoch_length,
            trace_level=trace_level,
            workers=workers,
        )
        if baseline_wall is None:
            baseline_wall = run.wall
            baseline_path = run.critical_path
        digests.add(run.merged_digest)
        cells.append(
            {
                "shards": shards,
                "groups": groups,
                "group_size": group_size,
                "events": run.events,
                "epochs": run.epochs,
                "wall_seconds": round(run.wall, 6),
                "shard_sim_walls": [round(w, 6) for w in run.shard_walls],
                "shard_sim_cpus": [round(c, 6) for c in run.shard_cpus],
                "critical_path_seconds": round(run.critical_path, 6),
                "measured_wall_speedup": round(baseline_wall / run.wall, 3)
                if run.wall
                else None,
                "critical_path_speedup": round(
                    baseline_path / run.critical_path, 3
                )
                if run.critical_path
                else None,
                "merged_trace_sha256": run.merged_digest,
                "agreed": run.agreed,
            }
        )
    return {
        "workload": "independent churn groups, epoch-barrier sharding",
        "seed": seed,
        "epoch_length": epoch_length,
        "byte_identical_across_shards": len(digests) == 1,
        "cells": cells,
    }
