"""On-disk content-addressed cache for scenario results.

``python -m repro report`` and ``python -m repro bench`` re-run the same
deterministic scenarios over and over.  A scenario's result is fully
determined by three things: the scenario name, its parameters (including
the seed), and the protocol/simulator source it ran against.  The cache
keys on exactly that triple:

    key = sha256(name + canonical-JSON(params) + source_fingerprint)

where :func:`source_fingerprint` hashes every file under
``src/repro/core`` and ``src/repro/sim`` (sorted by relative path, so the
digest is stable across filesystems).  Touch any protocol or simulator
source line and every cached entry silently misses — no staleness, no
manual invalidation.

Values must be JSON-serialisable (the tables cache message *counts*, not
cluster objects).  Each entry is one small JSON file under the cache root
(``REPRO_CACHE_DIR`` env var, else ``.repro-cache/`` in the working
directory), so the cache is trivially inspectable and `rm -rf`-able.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Iterable, Optional

__all__ = ["ScenarioCache", "source_fingerprint", "default_cache_dir"]

#: Packages whose source determines scenario outcomes.  verify/ and
#: analysis/ consume results but do not change what a scenario *does*.
_FINGERPRINT_PACKAGES = ("core", "sim")

_MISS = object()


def _package_root() -> Path:
    import repro

    return Path(repro.__file__).resolve().parent


def source_fingerprint(extra_files: Iterable[Path] = ()) -> str:
    """SHA-256 over the protocol + simulator source tree.

    Hashes ``(relative path, file bytes)`` pairs in sorted-path order so
    the digest depends only on content, never on directory enumeration
    order.  ``extra_files`` lets tests fold additional files in to prove
    that a content change flips the digest.
    """
    root = _package_root()
    digest = hashlib.sha256()
    paths: list[Path] = []
    for package in _FINGERPRINT_PACKAGES:
        paths.extend((root / package).rglob("*.py"))
    paths.extend(Path(p) for p in extra_files)
    for path in sorted(paths, key=lambda p: str(p.relative_to(root) if p.is_relative_to(root) else p)):
        rel = path.relative_to(root) if path.is_relative_to(root) else path
        digest.update(str(rel).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def default_cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path(".repro-cache")


class ScenarioCache:
    """Content-addressed store mapping (name, params, source) -> JSON value.

    The source fingerprint is computed once per cache instance (hashing the
    tree costs a few ms; doing it per lookup would dominate small runs).
    Pass ``fingerprint`` explicitly to pin or fake it in tests.
    """

    def __init__(
        self,
        root: Optional[Path] = None,
        fingerprint: Optional[str] = None,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.fingerprint = fingerprint if fingerprint is not None else source_fingerprint()
        #: lifetime counters for this cache handle — surfaced by ``repro
        #: report``/``repro bench`` so silent staleness/thrash is visible.
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _key(self, name: str, params: dict[str, Any]) -> str:
        payload = json.dumps(
            {"name": name, "params": params, "fingerprint": self.fingerprint},
            sort_keys=True,
            separators=(",", ":"),
            default=str,
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def _path(self, name: str, params: dict[str, Any]) -> Path:
        return self.root / f"{self._key(name, params)}.json"

    def get(self, name: str, params: dict[str, Any], default: Any = None) -> Any:
        """Cached value, or ``default`` on miss/corruption."""
        path = self._path(name, params)
        try:
            with path.open() as handle:
                value = json.load(handle)["value"]
        except (OSError, ValueError, KeyError):
            self.misses += 1
            return default
        self.hits += 1
        return value

    def put(self, name: str, params: dict[str, Any], value: Any) -> None:
        """Store a JSON-serialisable value (atomic rename, safe under races)."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(name, params)
        entry = {
            "name": name,
            "params": params,
            "fingerprint": self.fingerprint,
            "value": value,
        }
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(entry, sort_keys=True, default=str, indent=1))
        tmp.replace(path)
        self.stores += 1

    def stats(self) -> dict[str, int]:
        """Hit/miss/store counts accumulated on this cache handle."""
        return {"hits": self.hits, "misses": self.misses, "stores": self.stores}

    def format_stats(self) -> str:
        """One-line rendering for CLI reports."""
        return (
            f"cache ({self.root}): {self.hits} hits, "
            f"{self.misses} misses, {self.stores} stores"
        )

    def get_or_compute(self, name: str, params: dict[str, Any], compute) -> Any:
        """Return the cached value, computing and storing it on a miss."""
        value = self.get(name, params, default=_MISS)
        if value is not _MISS:
            return value
        value = compute()
        self.put(name, params, value)
        return value
