"""The benchmark driver behind ``python -m repro bench``.

Runs three families of measurements and writes one machine-readable
``BENCH_results.json``:

* **scenarios** — the §7.2/E9 scenario matrix (single/double/coordinator
  failure at several group sizes), each cell timed and its protocol
  message count recorded; the matrix shards across the
  :mod:`repro.runner.pool` worker pool.
* **explorer** — the Figure 4 concurrent-reconfigurer scenario run under
  both exploration engines (``deepcopy`` baseline vs ``snapshot`` with
  fingerprint dedup).  The comparable rate is **tree states covered per
  second**: both engines account for the same schedule tree, the snapshot
  engine just doesn't re-execute converged subtrees.
* **dedup** — a symmetric 5-process double-suspicion scenario whose
  schedule tree is astronomically larger than its state *graph*,
  demonstrating the fingerprint DAG reduction (``states`` vs
  ``tree_states``).

``--quick`` shrinks the scenario matrix for CI smoke runs; the explorer
comparison always runs (it is the headline claim and takes seconds).

Wall-clock reads in this module are the measurement itself, so they carry
``# lint: allow[DET101]`` — nothing here feeds back into simulations.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Optional

from repro.analysis.messages import breakdown
from repro.runner.pool import ScenarioJob, default_workers, run_jobs
from repro.workloads.failures import (
    double_failure_run,
    single_failure_run,
)

__all__ = [
    "run_bench",
    "check_scale_regression",
    "check_obs_overhead",
    "check_shard_section",
    "check_sharded_section",
    "check_detector_qos",
    "BENCH_FILENAME",
    "PROFILE_FILENAME",
]

BENCH_FILENAME = "BENCH_results.json"
PROFILE_FILENAME = "bench_profile.pstats"

_QUICK_SIZES = [4, 6]
_FULL_SIZES = [4, 6, 8, 12, 16]

#: the ``--scale`` n-sweep.  ``--quick`` keeps the CI-sized subset — which
#: deliberately includes the n=10,000 cell: the flat-cost work is gated on
#: that cell staying fast, so CI must actually run it.
_SCALE_SIZES = [10, 50, 100, 250, 500, 1000, 10000]
_SCALE_QUICK_SIZES = [10, 50, 100, 1000, 10000]

#: the sharded-simulator sweep (``shards`` section): independent churn
#: groups spread over 1/2/4 worker shards, merged traces digest-checked.
_SHARD_COUNTS = (1, 2, 4)
_SHARD_GROUPS = 8
_SHARD_GROUP_SIZE = 50
_SHARD_QUICK_GROUP_SIZE = 25

#: the ``--scale-sharded`` sweep (docs/SHARDING.md): total simulated leaf
#: membership per point.  The full sweep reaches 10^5 leaves — 1000 cells
#: of 100, all but two run as satellite leaf-only sims — in minutes of
#: wall clock; quick keeps the CI pair (the bounded-load gate needs two
#: sizes to have a real ratio) at two seeds.
_SHARDED_SIZES = [10_000, 30_000, 100_000]
_SHARDED_QUICK_SIZES = [1_000, 10_000]
_SHARDED_SEEDS = [1]
_SHARDED_QUICK_SEEDS = [1, 2]

#: the ``--detectors`` QoS matrix (docs/DETECTORS.md).  Heartbeat stops at
#: n=250: its O(n^2) per-round traffic makes larger cells cost minutes for
#: a number the 100->250 growth already demonstrates; the SWIM family is
#: exactly the detector that makes n=1000 affordable, so it runs there.
_DETECTOR_SIZES: dict[str, list[int]] = {
    "heartbeat": [100, 250],
    "swim": [100, 250, 500, 1000],
    "lifeguard": [100, 250, 500, 1000],
}
#: quick mode keeps two SWIM-family sizes — the O(1)-load gate compares the
#: largest n against the smallest and is vacuous with a single size, and the
#: CI smoke job exists to exercise that gate for real.
_DETECTOR_QUICK_SIZES: dict[str, list[int]] = {
    "heartbeat": [100],
    "swim": [100, 250],
    "lifeguard": [100, 250],
}
_DETECTOR_SEEDS = [1]
_DETECTOR_QUICK_SEEDS = [1, 2]

#: the Figure 4 family: coordinator and an outer member suspect each other.
_FIGURE4_PARAMS: dict[str, Any] = {
    "n": 3,
    "spurious": [("p1", "p0"), ("p0", "p1")],
}

#: two outer members race to suspect the same victim in a 5-process group:
#: hugely symmetric, so the schedule tree dwarfs the state graph.
_DEDUP_PARAMS: dict[str, Any] = {
    "n": 5,
    "spurious": [("p1", "p4"), ("p2", "p4")],
}


def _timed_scenario(fn, params: dict[str, Any]) -> dict[str, Any]:
    """Run one scenario in a worker, timing it (top-level: picklable).

    The ``*_run`` variants return the whole cluster, so each cell carries
    the trace's metric snapshot next to the timed message count — the
    ``metrics`` section the bench consumers read (docs/OBSERVABILITY.md).
    """
    start = time.perf_counter()  # lint: allow[DET101]
    cluster = fn(**params)
    wall = time.perf_counter() - start  # lint: allow[DET101]
    return {
        "wall_s": wall,
        "messages": breakdown(cluster.trace).algorithm,
        "metrics": cluster.trace.metrics_snapshot(),
    }


def _scenario_matrix(sizes: list[int]) -> list[tuple[str, Any, dict[str, Any]]]:
    specs: list[tuple[str, Any, dict[str, Any]]] = []
    for n in sizes:
        specs.append(("single-failure", single_failure_run, {"n": n, "seed": 0}))
        if n >= 6:
            specs.append(
                ("double-failure", double_failure_run, {"n": n, "seed": 0})
            )
        specs.append(
            (
                "coordinator-failure",
                single_failure_run,
                {"n": n, "seed": 0, "victim": "p0"},
            )
        )
    return specs


def _bench_scenarios(
    sizes: list[int], workers: Optional[int]
) -> list[dict[str, Any]]:
    specs = _scenario_matrix(sizes)
    jobs = [
        ScenarioJob(fn=_timed_scenario, kwargs={"fn": fn, "params": params}, label=name)
        for name, fn, params in specs
    ]
    results = run_jobs(jobs, workers=workers)
    return [
        {"name": name, "params": params, **measured}
        for (name, _fn, params), measured in zip(specs, results)
    ]


def _bench_explorer_engine(engine: str, params: dict[str, Any]) -> dict[str, Any]:
    from repro.verify.explore import explore_membership

    start = time.perf_counter()  # lint: allow[DET101]
    result = explore_membership(engine=engine, **params)
    wall = time.perf_counter() - start  # lint: allow[DET101]
    return {
        "wall_s": wall,
        "states": result.states,
        "tree_states": result.tree_states,
        "terminals": result.terminals,
        "complete": result.complete,
        "ok": result.ok,
        "tree_states_per_sec": result.tree_states / wall if wall > 0 else 0.0,
    }


def _bench_explorer() -> dict[str, Any]:
    engines = {
        "deepcopy": _bench_explorer_engine("deepcopy", _FIGURE4_PARAMS),
        "snapshot": _bench_explorer_engine("snapshot", _FIGURE4_PARAMS),
    }
    baseline = engines["deepcopy"]["tree_states_per_sec"]
    optimised = engines["snapshot"]["tree_states_per_sec"]
    return {
        "scenario": "figure4-concurrent-reconfigurers",
        "params": _FIGURE4_PARAMS,
        "engines": engines,
        "speedup_tree_states_per_sec": optimised / baseline if baseline else 0.0,
    }


def _bench_dedup() -> dict[str, Any]:
    measured = _bench_explorer_engine("snapshot", _DEDUP_PARAMS)
    states = measured["states"]
    return {
        "scenario": "symmetric-double-suspicion",
        "params": _DEDUP_PARAMS,
        **measured,
        "state_reduction_factor": measured["tree_states"] / states if states else 0.0,
    }


def _churn_cell(n: int) -> dict[str, Any]:
    """One ``--scale`` cell: join-churn-exclude throughput at size ``n``."""
    from repro.workloads.failures import churn_run
    from repro.workloads.qos import ROUND_PERIOD

    start = time.perf_counter()  # lint: allow[DET101]
    cluster = churn_run(n, seed=0, trace_level="counts")
    wall = time.perf_counter() - start  # lint: allow[DET101]
    events = cluster.scheduler.events_run
    msgs = cluster.trace.message_count(None)
    # Normalised against the canonical probe-round length so scale cells
    # and the ``detectors`` QoS matrix share one msgs/process/round axis.
    rounds = cluster.scheduler.now / ROUND_PERIOD
    return {
        "n": n,
        "wall_s": wall,
        "events": events,
        "events_per_sec": events / wall if wall > 0 else 0.0,
        "msgs": msgs,
        "msgs_per_sec": msgs / wall if wall > 0 else 0.0,
        "msgs_per_process_per_round": msgs / (n * rounds) if rounds > 0 else 0.0,
    }


def _bench_scale(sizes: list[int]) -> dict[str, Any]:
    """The n-sweep.  Cells run sequentially on purpose: sharding them across
    the worker pool would have every cell contending for the same cores and
    turn the per-n wall clocks into noise."""
    return {
        "workload": "join-churn-exclude",
        "trace_level": "counts",
        "cells": [_churn_cell(n) for n in sizes],
    }


def _bench_detectors(quick: bool) -> dict[str, Any]:
    """The ``--detectors`` section: heartbeat vs SWIM vs Lifeguard QoS.

    Cells run sequentially for the same reason the scale sweep does — the
    wall clocks are part of the payload.  The matrix crosses every
    (kind, n) pair with both chaos plans and every seed; ``--quick`` trims
    the SWIM family to n ∈ {100, 250} (two sizes, so the O(1)-load gate has
    a real ratio to check) but doubles the seeds, so the CI smoke job still
    exercises seed-to-seed variation.
    """
    from repro.workloads.qos import QOS_PLANS, ROUND_PERIOD, detector_qos_cell

    sizes = _DETECTOR_QUICK_SIZES if quick else _DETECTOR_SIZES
    seeds = _DETECTOR_QUICK_SEEDS if quick else _DETECTOR_SEEDS
    cells = [
        detector_qos_cell(kind, n, plan=plan, seed=seed)
        for plan in QOS_PLANS
        for kind, ns in sizes.items()
        for n in ns
        for seed in seeds
    ]
    return {
        "round_period": ROUND_PERIOD,
        "plans": list(QOS_PLANS),
        "seeds": list(seeds),
        "cells": cells,
    }


def _detector_cells(
    section: dict[str, Any], kind: str, plan: str, n: Optional[int] = None
) -> list[dict[str, Any]]:
    return [
        cell
        for cell in section["cells"]
        if cell["kind"] == kind
        and cell["plan"] == plan
        and (n is None or cell["n"] == n)
    ]


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def check_detector_qos(
    payload: dict[str, Any], ppr_ratio_threshold: float = 2.0
) -> list[str]:
    """Gate the ``detectors`` section: the two claims the matrix exists for.

    * SWIM's message load is O(1) in group size: mean msgs/process/round at
      the largest crash-only n must stay within ``ppr_ratio_threshold``
      times the smallest-n value (heartbeat is exempt — growing ~n is its
      documented cost).  A section with swim crash-only cells at fewer than
      two group sizes fails explicitly instead of passing vacuously.
    * Lifeguard's local-health multiplier pays off: under the slow-flaky
      plan its mean distinct false positives must not exceed SWIM's at any
      group size both ran.

    Empty list when the payload has no section (run without
    ``--detectors``); one message per violated claim otherwise.
    """
    section = payload.get("detectors")
    if section is None:
        return []
    failures = []
    swim_ns = sorted({c["n"] for c in _detector_cells(section, "swim", "crash-only")})
    if len(swim_ns) < 2:
        # With one group size lo == hi and the ratio check below cannot
        # fail — refuse to pretend the claim was tested.
        failures.append(
            "swim msgs/process/round gate is vacuous: need crash-only swim "
            f"cells at two or more group sizes, got {swim_ns or 'none'}"
        )
    else:
        lo, hi = swim_ns[0], swim_ns[-1]
        base = _mean(
            [
                c["msgs_per_process_per_round"]
                for c in _detector_cells(section, "swim", "crash-only", lo)
            ]
        )
        top = _mean(
            [
                c["msgs_per_process_per_round"]
                for c in _detector_cells(section, "swim", "crash-only", hi)
            ]
        )
        if base > 0 and top > ppr_ratio_threshold * base:
            failures.append(
                f"swim msgs/process/round grew with n: {top:.2f} at n={hi} is "
                f"more than {ppr_ratio_threshold:.1f}x the {base:.2f} at n={lo}"
            )
    lifeguard_ns = {c["n"] for c in _detector_cells(section, "lifeguard", "slow-flaky")}
    swim_flaky_ns = {c["n"] for c in _detector_cells(section, "swim", "slow-flaky")}
    for n in sorted(lifeguard_ns & swim_flaky_ns):
        swim_fp = _mean(
            [
                c["false_positives"]["distinct_targets"]
                for c in _detector_cells(section, "swim", "slow-flaky", n)
            ]
        )
        lifeguard_fp = _mean(
            [
                c["false_positives"]["distinct_targets"]
                for c in _detector_cells(section, "lifeguard", "slow-flaky", n)
            ]
        )
        if lifeguard_fp > swim_fp:
            failures.append(
                f"lifeguard false positives exceed swim's under slow-flaky at "
                f"n={n}: {lifeguard_fp:.1f} vs {swim_fp:.1f} distinct targets"
            )
    return failures


def _profile_churn(out_dir: str | Path, n: int = 1000) -> dict[str, Any]:
    """Profile one churn cell and emit cProfile/pstats artifacts.

    Writes ``bench_profile.pstats`` (binary, loadable with
    :mod:`pstats`/snakeviz) and ``bench_profile.txt`` (top functions by
    internal time) into ``out_dir`` and returns a JSON-able summary whose
    ``top`` list names the hot path — the evidence behind the per-event
    cost model in docs/PERFORMANCE.md.
    """
    import cProfile
    import pstats

    from repro.workloads.failures import churn_run

    profiler = cProfile.Profile()
    start = time.perf_counter()  # lint: allow[DET101]
    profiler.enable()
    cluster = churn_run(n, seed=0, trace_level="counts")
    profiler.disable()
    wall = time.perf_counter() - start  # lint: allow[DET101]
    events = cluster.scheduler.events_run

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    pstats_path = out / PROFILE_FILENAME
    text_path = pstats_path.with_suffix(".txt")
    profiler.dump_stats(pstats_path)

    stats = pstats.Stats(str(pstats_path))
    stats.sort_stats("tottime")
    rows: list[dict[str, Any]] = []
    for func, (cc, ncalls, tottime, cumtime, _callers) in sorted(
        stats.stats.items(), key=lambda kv: kv[1][2], reverse=True
    )[:15]:
        filename, lineno, name = func
        rows.append(
            {
                "function": f"{Path(filename).name}:{lineno}({name})",
                "ncalls": ncalls,
                "tottime_s": round(tottime, 6),
                "cumtime_s": round(cumtime, 6),
            }
        )
    with text_path.open("w") as handle:
        report = pstats.Stats(str(pstats_path), stream=handle)
        report.sort_stats("tottime")
        report.print_stats(30)
    return {
        "workload": "join-churn-exclude",
        "n": n,
        "wall_s": wall,
        "events": events,
        "events_per_sec": events / wall if wall > 0 else 0.0,
        "pstats": str(pstats_path),
        "text": str(text_path),
        "top": rows,
    }


def _bench_shards(quick: bool, workers: Optional[int]) -> dict[str, Any]:
    """The ``shards`` section: the sharded-simulator determinism sweep."""
    from repro.runner.shard import shard_speedup_report

    return shard_speedup_report(
        groups=_SHARD_GROUPS,
        group_size=_SHARD_QUICK_GROUP_SIZE if quick else _SHARD_GROUP_SIZE,
        shard_counts=_SHARD_COUNTS,
        seed=0,
        workers=workers,
    )


def _bench_sharded(quick: bool, workers: Optional[int]) -> dict[str, Any]:
    """The ``sharded`` section: total membership scaling via leaf cells.

    Each cell is one (n, seed) point of
    :func:`repro.shardgroup.bench.sharded_scale_cell` — a 3-member GMP
    core with two fully simulated cells plus one satellite leaf-only sim
    per remaining cell, every cell running the standard churn plan.
    """
    from repro.shardgroup.bench import CELL_SIZE, SHARD_DURATION, sharded_scale_cell
    from repro.workloads.qos import ROUND_PERIOD

    sizes = _SHARDED_QUICK_SIZES if quick else _SHARDED_SIZES
    seeds = _SHARDED_QUICK_SEEDS if quick else _SHARDED_SEEDS
    cells = [
        sharded_scale_cell(n, seed=seed, workers=workers)
        for n in sizes
        for seed in seeds
    ]
    return {
        "cell_size": CELL_SIZE,
        "duration": SHARD_DURATION,
        "round_period": ROUND_PERIOD,
        "seeds": list(seeds),
        "cells": cells,
    }


def check_sharded_section(
    payload: dict[str, Any], ppr_ratio_threshold: float = 2.0
) -> list[str]:
    """Gate the ``sharded`` section: the three claims the hierarchy makes.

    * **Bounded leaf load** — mean leaf msgs/process/round at the largest
      n must stay within ``ppr_ratio_threshold`` times the smallest-n
      value (cells are fixed-size, so per-leaf cost must not grow with
      total membership).  Fewer than two sizes fails explicitly instead
      of passing vacuously, mirroring the SWIM QoS gate.
    * **Leaf churn never reconfigures the core** — every control arm must
      report ``core_reconfigurations == 0``.
    * **Churn converges** — every cell's crash must end expelled, every
      admission admitted, and no roster write may be left unapplied by a
      live leaf.  Writes censored by the run horizon (issued within
      ``CONVERGENCE_GRACE`` of the end, so a dissemination cycle could
      not finish) are reported in ``censored_writes`` and exempt.

    Empty list when the payload has no section (run without
    ``--scale-sharded``); one message per violated claim otherwise.
    """
    section = payload.get("sharded")
    if section is None:
        return []
    failures = []
    sizes = sorted({c["n"] for c in section["cells"]})
    if len(sizes) < 2:
        failures.append(
            "sharded leaf-load gate is vacuous: need cells at two or more "
            f"total sizes, got {sizes or 'none'}"
        )
    else:
        lo, hi = sizes[0], sizes[-1]
        base = _mean(
            [
                c["leaf_msgs_per_process_per_round"]
                for c in section["cells"]
                if c["n"] == lo
            ]
        )
        top = _mean(
            [
                c["leaf_msgs_per_process_per_round"]
                for c in section["cells"]
                if c["n"] == hi
            ]
        )
        if base > 0 and top > ppr_ratio_threshold * base:
            failures.append(
                f"sharded leaf msgs/process/round grew with n: {top:.2f} at "
                f"n={hi} is more than {ppr_ratio_threshold:.1f}x the "
                f"{base:.2f} at n={lo}"
            )
    for cell in section["cells"]:
        label = f"n={cell['n']} seed={cell['seed']}"
        reconfigs = cell["control"]["core_reconfigurations"]
        if reconfigs != 0:
            failures.append(
                f"leaf churn forced {reconfigs} core-group "
                f"reconfiguration(s) at {label}"
            )
        if not cell["control"]["churn_applied"]:
            failures.append(f"control-arm churn incomplete at {label}")
        if not cell["satellite"]["churn_applied"]:
            failures.append(f"satellite churn incomplete at {label}")
        unconverged = (
            cell["satellite"]["unconverged_writes"]
            + cell["control"]["convergence"]["unconverged"]
        )
        if unconverged:
            failures.append(
                f"{unconverged} roster write(s) never reached every live "
                f"leaf at {label}"
            )
    return failures


def check_shard_section(payload: dict[str, Any]) -> list[str]:
    """Gate the ``shards`` section: reproducibility is non-negotiable.

    Empty list when the payload has no section; otherwise one message per
    violated invariant (traces must merge byte-identically across shard
    counts, and every sharded run must still reach agreement).
    """
    section = payload.get("shards")
    if section is None:
        return []
    failures = []
    if not section["byte_identical_across_shards"]:
        digests = {cell["merged_trace_sha256"] for cell in section["cells"]}
        failures.append(
            "sharded churn merged traces differ across shard counts: "
            f"{sorted(digests)}"
        )
    for cell in section["cells"]:
        if not cell["agreed"]:
            failures.append(
                f"sharded churn with shards={cell['shards']} ended without "
                "view agreement in at least one group"
            )
    return failures


def _obs_overhead(
    n: int = 100, reps: int = 5, attempts: int = 3, settle_frac: float = 0.05
) -> dict[str, Any]:
    """Measure what metrics capture costs on the ``--scale`` churn workload.

    Runs the churn cell at COUNTS trace level with metrics off and with a
    fresh :class:`repro.obs.Obs` per rep, *interleaving* the two
    configurations so CPU frequency drift hits both equally, and keeps
    best-of-``reps`` wall clocks (the usual defence against scheduler
    noise).  Because a burst of machine noise can still inflate one whole
    measurement window, an attempt whose apparent overhead exceeds
    ``settle_frac`` is re-measured (up to ``attempts`` times) and the
    lowest-overhead attempt wins — noise only ever *adds* wall time, so
    the minimum is the faithful estimate.  Also cross-checks that both
    configurations executed exactly the same number of simulation events:
    capture must observe the run, never perturb it.
    """
    from repro.obs import Obs
    from repro.workloads.failures import churn_run

    def run_once(with_obs: bool) -> tuple[float, int]:
        obs = Obs() if with_obs else None
        start = time.perf_counter()  # lint: allow[DET101]
        cluster = churn_run(n, seed=0, trace_level="counts", obs=obs)
        wall = time.perf_counter() - start  # lint: allow[DET101]
        return wall, cluster.scheduler.events_run

    def measure() -> dict[str, Any]:
        off_wall = on_wall = float("inf")
        off_events = on_events = 0
        for _ in range(reps):
            wall, off_events = run_once(False)
            off_wall = min(off_wall, wall)
            wall, on_events = run_once(True)
            on_wall = min(on_wall, wall)
        return {
            "workload": "join-churn-exclude",
            "n": n,
            "reps": reps,
            "metrics_off": {
                "wall_s": off_wall,
                "events": off_events,
                "events_per_sec": off_events / off_wall if off_wall > 0 else 0.0,
            },
            "metrics_on": {
                "wall_s": on_wall,
                "events": on_events,
                "events_per_sec": on_events / on_wall if on_wall > 0 else 0.0,
            },
            "overhead_frac": (
                (on_wall - off_wall) / off_wall if off_wall > 0 else 0.0
            ),
            "events_match": off_events == on_events,
        }

    run_once(False)  # warm caches/allocator outside the timed reps
    best = measure()
    for _ in range(attempts - 1):
        if best["overhead_frac"] <= settle_frac:
            break
        candidate = measure()
        if candidate["overhead_frac"] < best["overhead_frac"]:
            best = candidate
    return best


def check_obs_overhead(
    payload: dict[str, Any], threshold: float = 0.10
) -> list[str]:
    """Gate the ``obs_overhead`` section: capture must stay cheap and inert.

    Empty list when the payload has no section (run without ``--scale``) or
    the section is within bounds; one message per violated bound otherwise.
    """
    section = payload.get("obs_overhead")
    if section is None:
        return []
    failures = []
    if not section["events_match"]:
        failures.append(
            "metrics capture perturbed the simulation: metrics-on and "
            "metrics-off churn runs executed different event counts"
        )
    frac = section["overhead_frac"]
    if frac > threshold:
        failures.append(
            f"metrics-on churn run (n={section['n']}) is {frac * 100:.0f}% "
            f"slower than metrics-off (threshold {threshold * 100:.0f}%)"
        )
    return failures


def _cross_check_cache(cells: list[dict[str, Any]], cache) -> list[str]:
    """Diff freshly measured message counts against the scenario cache.

    The bench matrix and ``repro report`` deliberately share scenario
    names and params, so the cache built by one validates the other: a
    mismatch means a cached entry no longer reflects what the protocol
    does (which the source fingerprint should have prevented — flag it
    loudly).  Misses are stored so the next ``repro report`` is warm.
    """
    stale = []
    for cell in cells:
        cached = cache.get(cell["name"], cell["params"])
        if cached is None:
            cache.put(cell["name"], cell["params"], cell["messages"])
        elif cached != cell["messages"]:
            stale.append(
                f"{cell['name']} {cell['params']}: cached {cached} != "
                f"measured {cell['messages']}"
            )
    return stale


def _write_bench_metrics(path: str | Path, n: int = 10) -> Path:
    """One instrumented churn run, archived as JSONL + Prometheus text."""
    from repro.obs import Obs
    from repro.obs.exposition import write_jsonl, write_prometheus
    from repro.workloads.failures import churn_run

    obs = Obs()
    cluster = churn_run(n, seed=0, trace_level="counts", obs=obs)
    obs.record_trace(cluster.trace)
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    write_jsonl(
        out,
        obs,
        meta={"command": "bench", "workload": "join-churn-exclude", "n": n, "seed": 0},
    )
    write_prometheus(out.with_suffix(".prom"), obs.metrics)
    return out


def check_scale_regression(
    payload: dict[str, Any],
    baseline: dict[str, Any],
    threshold: float = 0.30,
) -> list[str]:
    """Compare a fresh ``scale`` section against a committed baseline.

    Returns one message per cell whose churn events/sec dropped by more
    than ``threshold`` relative to the baseline cell of the same ``n``
    (cells present on only one side are skipped — quick sweeps cover a
    prefix of the full sweep).  Empty list means no regression.
    """
    if "scale" not in payload or "scale" not in baseline:
        return ["baseline or fresh run has no 'scale' section (run with --scale)"]
    base_by_n = {cell["n"]: cell for cell in baseline["scale"]["cells"]}
    failures = []
    for cell in payload["scale"]["cells"]:
        base = base_by_n.get(cell["n"])
        if base is None or base["events_per_sec"] <= 0:
            continue
        ratio = cell["events_per_sec"] / base["events_per_sec"]
        if ratio < 1.0 - threshold:
            failures.append(
                f"n={cell['n']}: {cell['events_per_sec']:,.0f} events/s is "
                f"{(1.0 - ratio) * 100:.0f}% below baseline "
                f"{base['events_per_sec']:,.0f} events/s "
                f"(threshold {threshold * 100:.0f}%)"
            )
    return failures


def run_bench(
    quick: bool = False,
    workers: Optional[int] = None,
    out_dir: str | Path = ".",
    scale: bool = False,
    detectors: bool = False,
    sharded: bool = False,
    cache=None,
    metrics_out: str | Path | None = None,
    profile: bool = False,
) -> Path:
    """Run the full bench suite and write ``BENCH_results.json``.

    ``cache`` (a :class:`repro.runner.cache.ScenarioCache`) cross-checks
    the measured message counts against cached scenario results and
    records hit/miss/store counts in the payload; ``metrics_out`` archives
    one instrumented churn run as JSONL (plus a ``.prom`` sibling);
    ``profile`` additionally runs one churn cell under :mod:`cProfile` and
    drops ``bench_profile.pstats``/``.txt`` artifacts next to the results.
    Returns the path of the written file.
    """
    resolved_workers = workers if workers is not None else default_workers()
    payload: dict[str, Any] = {
        "schema": "repro-bench/1",
        "quick": quick,
        "workers": resolved_workers,
        "scenarios": _bench_scenarios(
            _QUICK_SIZES if quick else _FULL_SIZES, workers
        ),
        "explorer": _bench_explorer(),
        "dedup": _bench_dedup(),
    }
    if scale:
        payload["scale"] = _bench_scale(
            _SCALE_QUICK_SIZES if quick else _SCALE_SIZES
        )
        payload["shards"] = _bench_shards(quick, workers)
        payload["obs_overhead"] = _obs_overhead(n=50 if quick else 100)
    if detectors:
        payload["detectors"] = _bench_detectors(quick)
    if sharded:
        payload["sharded"] = _bench_sharded(quick, workers)
    if profile:
        payload["profile"] = _profile_churn(out_dir, n=1000)
    if cache is not None:
        stale = _cross_check_cache(payload["scenarios"], cache)
        payload["cache"] = {**cache.stats(), "stale": stale}
    if metrics_out is not None:
        payload["metrics_out"] = str(_write_bench_metrics(metrics_out))
    out = Path(out_dir) / BENCH_FILENAME
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return out


def summarize(payload: dict[str, Any]) -> str:
    """Human-readable digest of a bench payload (printed by the CLI)."""
    lines = [f"scenarios ({len(payload['scenarios'])} cells):"]
    for cell in payload["scenarios"]:
        params = cell["params"]
        extras = {k: v for k, v in params.items() if k not in ("n", "seed")}
        suffix = f" {extras}" if extras else ""
        lines.append(
            f"  {cell['name']:<22} n={params['n']:<3}{suffix} "
            f"{cell['messages']:>5} msgs  {cell['wall_s'] * 1000:7.1f} ms"
        )
    explorer = payload["explorer"]
    lines.append(f"explorer ({explorer['scenario']}):")
    for engine, row in sorted(explorer["engines"].items()):
        lines.append(
            f"  {engine:<9} {row['tree_states']:>9} tree states in "
            f"{row['wall_s']:6.2f}s  ({row['tree_states_per_sec']:>9.0f}/s)"
        )
    lines.append(
        f"  speedup: {explorer['speedup_tree_states_per_sec']:.1f}x "
        "tree states covered per second"
    )
    dedup = payload["dedup"]
    lines.append(
        f"dedup ({dedup['scenario']}): {dedup['tree_states']} tree states "
        f"as {dedup['states']} unique expansions "
        f"({dedup['state_reduction_factor']:.0f}x reduction)"
    )
    scale = payload.get("scale")
    if scale is not None:
        lines.append(
            f"scale ({scale['workload']}, trace={scale['trace_level']}):"
        )
        for cell in scale["cells"]:
            lines.append(
                f"  n={cell['n']:<5} {cell['events']:>8} events  "
                f"{cell['wall_s']:8.3f}s  {cell['events_per_sec']:>10,.0f} ev/s  "
                f"{cell['msgs_per_sec']:>10,.0f} msg/s"
            )
    detectors = payload.get("detectors")
    if detectors is not None:
        lines.append(
            f"detectors (round={detectors['round_period']:.1f}, "
            f"seeds={detectors['seeds']}):"
        )
        for cell in detectors["cells"]:
            detection = cell["detection"]
            latency = detection["mean_latency"]
            lines.append(
                f"  {cell['plan']:<11} {cell['kind']:<10} n={cell['n']:<5} "
                f"seed={cell['seed']} "
                f"{cell['msgs_per_process_per_round']:>8.2f} msg/proc/round  "
                f"latency "
                + (f"{latency:6.1f}" if latency is not None else "  MISS")
                + f"  fp={cell['false_positives']['distinct_targets']:<4}"
                f" {cell['wall_s']:7.2f}s"
            )
    sharded = payload.get("sharded")
    if sharded is not None:
        lines.append(
            f"sharded (cells of {sharded['cell_size']}, "
            f"{sharded['duration']:.0f}s sim):"
        )
        for cell in sharded["cells"]:
            control = cell["control"]
            satellite = cell["satellite"]
            convergence = control["convergence"]["max_latency"]
            lines.append(
                f"  n={cell['n']:<7} seed={cell['seed']} "
                f"cells={cell['cells']:<5} "
                f"{cell['leaf_msgs_per_process_per_round']:>6.2f} "
                "leaf msg/proc/round  "
                f"core reconfigs={control['core_reconfigurations']}  "
                "converge "
                + (f"{convergence:5.1f}s" if convergence is not None else " MISS")
                + f"  {cell['wall_s']:7.1f}s"
            )
            if satellite["unconverged_writes"]:
                lines.append(
                    f"    {satellite['unconverged_writes']} UNCONVERGED "
                    "satellite writes"
                )
            censored = satellite.get("censored_writes", 0) + control[
                "convergence"
            ].get("censored", 0)
            if censored:
                lines.append(
                    f"    {censored} write(s) censored by the run horizon"
                )
    shards = payload.get("shards")
    if shards is not None:
        lines.append(
            f"shards ({shards['workload']}): "
            + (
                "merged traces byte-identical"
                if shards["byte_identical_across_shards"]
                else "MERGED TRACES DIFFER"
            )
        )
        for cell in shards["cells"]:
            lines.append(
                f"  shards={cell['shards']} groups={cell['groups']}x"
                f"{cell['group_size']}  wall {cell['wall_seconds']:7.3f}s "
                f"(x{cell['measured_wall_speedup']:.2f})  critical path "
                f"{cell['critical_path_seconds']:7.3f}s "
                f"(x{cell['critical_path_speedup']:.2f})"
            )
    profile = payload.get("profile")
    if profile is not None:
        lines.append(
            f"profile (churn n={profile['n']}): {profile['events']} events in "
            f"{profile['wall_s']:.3f}s -> {profile['pstats']}"
        )
        for row in profile["top"][:5]:
            lines.append(
                f"  {row['tottime_s']:8.4f}s  {row['ncalls']:>9}x  "
                f"{row['function']}"
            )
    overhead = payload.get("obs_overhead")
    if overhead is not None:
        lines.append(
            f"obs overhead (churn n={overhead['n']}, best of {overhead['reps']}): "
            f"{overhead['overhead_frac'] * 100:+.1f}% wall, "
            + ("events match" if overhead["events_match"] else "EVENT COUNTS DIFFER")
        )
    cache_section = payload.get("cache")
    if cache_section is not None:
        stale = cache_section["stale"]
        lines.append(
            f"cache: {cache_section['hits']} hits, "
            f"{cache_section['misses']} misses, {cache_section['stores']} stores"
            + (f", {len(stale)} STALE entries" if stale else "")
        )
    return "\n".join(lines)
