"""The benchmark driver behind ``python -m repro bench``.

Runs three families of measurements and writes one machine-readable
``BENCH_results.json``:

* **scenarios** — the §7.2/E9 scenario matrix (single/double/coordinator
  failure at several group sizes), each cell timed and its protocol
  message count recorded; the matrix shards across the
  :mod:`repro.runner.pool` worker pool.
* **explorer** — the Figure 4 concurrent-reconfigurer scenario run under
  both exploration engines (``deepcopy`` baseline vs ``snapshot`` with
  fingerprint dedup).  The comparable rate is **tree states covered per
  second**: both engines account for the same schedule tree, the snapshot
  engine just doesn't re-execute converged subtrees.
* **dedup** — a symmetric 5-process double-suspicion scenario whose
  schedule tree is astronomically larger than its state *graph*,
  demonstrating the fingerprint DAG reduction (``states`` vs
  ``tree_states``).

``--quick`` shrinks the scenario matrix for CI smoke runs; the explorer
comparison always runs (it is the headline claim and takes seconds).

Wall-clock reads in this module are the measurement itself, so they carry
``# lint: allow[DET101]`` — nothing here feeds back into simulations.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Optional

from repro.runner.pool import ScenarioJob, default_workers, run_jobs
from repro.workloads.failures import (
    double_failure_messages,
    single_failure_messages,
)

__all__ = ["run_bench", "BENCH_FILENAME"]

BENCH_FILENAME = "BENCH_results.json"

_QUICK_SIZES = [4, 6]
_FULL_SIZES = [4, 6, 8, 12, 16]

#: the Figure 4 family: coordinator and an outer member suspect each other.
_FIGURE4_PARAMS: dict[str, Any] = {
    "n": 3,
    "spurious": [("p1", "p0"), ("p0", "p1")],
}

#: two outer members race to suspect the same victim in a 5-process group:
#: hugely symmetric, so the schedule tree dwarfs the state graph.
_DEDUP_PARAMS: dict[str, Any] = {
    "n": 5,
    "spurious": [("p1", "p4"), ("p2", "p4")],
}


def _timed_call(fn, params: dict[str, Any]) -> dict[str, Any]:
    """Run one scenario in a worker, timing it (top-level: picklable)."""
    start = time.perf_counter()  # lint: allow[DET101]
    value = fn(**params)
    wall = time.perf_counter() - start  # lint: allow[DET101]
    return {"wall_s": wall, "messages": value}


def _scenario_matrix(sizes: list[int]) -> list[tuple[str, Any, dict[str, Any]]]:
    specs: list[tuple[str, Any, dict[str, Any]]] = []
    for n in sizes:
        specs.append(("single-failure", single_failure_messages, {"n": n, "seed": 0}))
        if n >= 6:
            specs.append(
                ("double-failure", double_failure_messages, {"n": n, "seed": 0})
            )
        specs.append(
            (
                "coordinator-failure",
                single_failure_messages,
                {"n": n, "seed": 0, "victim": "p0"},
            )
        )
    return specs


def _bench_scenarios(
    sizes: list[int], workers: Optional[int]
) -> list[dict[str, Any]]:
    specs = _scenario_matrix(sizes)
    jobs = [
        ScenarioJob(fn=_timed_call, kwargs={"fn": fn, "params": params}, label=name)
        for name, fn, params in specs
    ]
    results = run_jobs(jobs, workers=workers)
    return [
        {"name": name, "params": params, **measured}
        for (name, _fn, params), measured in zip(specs, results)
    ]


def _bench_explorer_engine(engine: str, params: dict[str, Any]) -> dict[str, Any]:
    from repro.verify.explore import explore_membership

    start = time.perf_counter()  # lint: allow[DET101]
    result = explore_membership(engine=engine, **params)
    wall = time.perf_counter() - start  # lint: allow[DET101]
    return {
        "wall_s": wall,
        "states": result.states,
        "tree_states": result.tree_states,
        "terminals": result.terminals,
        "complete": result.complete,
        "ok": result.ok,
        "tree_states_per_sec": result.tree_states / wall if wall > 0 else 0.0,
    }


def _bench_explorer() -> dict[str, Any]:
    engines = {
        "deepcopy": _bench_explorer_engine("deepcopy", _FIGURE4_PARAMS),
        "snapshot": _bench_explorer_engine("snapshot", _FIGURE4_PARAMS),
    }
    baseline = engines["deepcopy"]["tree_states_per_sec"]
    optimised = engines["snapshot"]["tree_states_per_sec"]
    return {
        "scenario": "figure4-concurrent-reconfigurers",
        "params": _FIGURE4_PARAMS,
        "engines": engines,
        "speedup_tree_states_per_sec": optimised / baseline if baseline else 0.0,
    }


def _bench_dedup() -> dict[str, Any]:
    measured = _bench_explorer_engine("snapshot", _DEDUP_PARAMS)
    states = measured["states"]
    return {
        "scenario": "symmetric-double-suspicion",
        "params": _DEDUP_PARAMS,
        **measured,
        "state_reduction_factor": measured["tree_states"] / states if states else 0.0,
    }


def run_bench(
    quick: bool = False,
    workers: Optional[int] = None,
    out_dir: str | Path = ".",
) -> Path:
    """Run the full bench suite and write ``BENCH_results.json``.

    Returns the path of the written file.
    """
    resolved_workers = workers if workers is not None else default_workers()
    payload: dict[str, Any] = {
        "schema": "repro-bench/1",
        "quick": quick,
        "workers": resolved_workers,
        "scenarios": _bench_scenarios(
            _QUICK_SIZES if quick else _FULL_SIZES, workers
        ),
        "explorer": _bench_explorer(),
        "dedup": _bench_dedup(),
    }
    out = Path(out_dir) / BENCH_FILENAME
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return out


def summarize(payload: dict[str, Any]) -> str:
    """Human-readable digest of a bench payload (printed by the CLI)."""
    lines = [f"scenarios ({len(payload['scenarios'])} cells):"]
    for cell in payload["scenarios"]:
        params = cell["params"]
        extras = {k: v for k, v in params.items() if k not in ("n", "seed")}
        suffix = f" {extras}" if extras else ""
        lines.append(
            f"  {cell['name']:<22} n={params['n']:<3}{suffix} "
            f"{cell['messages']:>5} msgs  {cell['wall_s'] * 1000:7.1f} ms"
        )
    explorer = payload["explorer"]
    lines.append(f"explorer ({explorer['scenario']}):")
    for engine, row in sorted(explorer["engines"].items()):
        lines.append(
            f"  {engine:<9} {row['tree_states']:>9} tree states in "
            f"{row['wall_s']:6.2f}s  ({row['tree_states_per_sec']:>9.0f}/s)"
        )
    lines.append(
        f"  speedup: {explorer['speedup_tree_states_per_sec']:.1f}x "
        "tree states covered per second"
    )
    dedup = payload["dedup"]
    lines.append(
        f"dedup ({dedup['scenario']}): {dedup['tree_states']} tree states "
        f"as {dedup['states']} unique expansions "
        f"({dedup['state_reduction_factor']:.0f}x reduction)"
    )
    return "\n".join(lines)
