"""The benchmark driver behind ``python -m repro bench``.

Runs three families of measurements and writes one machine-readable
``BENCH_results.json``:

* **scenarios** — the §7.2/E9 scenario matrix (single/double/coordinator
  failure at several group sizes), each cell timed and its protocol
  message count recorded; the matrix shards across the
  :mod:`repro.runner.pool` worker pool.
* **explorer** — the Figure 4 concurrent-reconfigurer scenario run under
  both exploration engines (``deepcopy`` baseline vs ``snapshot`` with
  fingerprint dedup).  The comparable rate is **tree states covered per
  second**: both engines account for the same schedule tree, the snapshot
  engine just doesn't re-execute converged subtrees.
* **dedup** — a symmetric 5-process double-suspicion scenario whose
  schedule tree is astronomically larger than its state *graph*,
  demonstrating the fingerprint DAG reduction (``states`` vs
  ``tree_states``).

``--quick`` shrinks the scenario matrix for CI smoke runs; the explorer
comparison always runs (it is the headline claim and takes seconds).

Wall-clock reads in this module are the measurement itself, so they carry
``# lint: allow[DET101]`` — nothing here feeds back into simulations.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Optional

from repro.runner.pool import ScenarioJob, default_workers, run_jobs
from repro.workloads.failures import (
    double_failure_messages,
    single_failure_messages,
)

__all__ = ["run_bench", "check_scale_regression", "BENCH_FILENAME"]

BENCH_FILENAME = "BENCH_results.json"

_QUICK_SIZES = [4, 6]
_FULL_SIZES = [4, 6, 8, 12, 16]

#: the ``--scale`` n-sweep (``--quick`` keeps only the CI-sized prefix).
_SCALE_SIZES = [10, 50, 100, 250, 500, 1000]
_SCALE_QUICK_SIZES = [10, 50, 100]

#: the Figure 4 family: coordinator and an outer member suspect each other.
_FIGURE4_PARAMS: dict[str, Any] = {
    "n": 3,
    "spurious": [("p1", "p0"), ("p0", "p1")],
}

#: two outer members race to suspect the same victim in a 5-process group:
#: hugely symmetric, so the schedule tree dwarfs the state graph.
_DEDUP_PARAMS: dict[str, Any] = {
    "n": 5,
    "spurious": [("p1", "p4"), ("p2", "p4")],
}


def _timed_call(fn, params: dict[str, Any]) -> dict[str, Any]:
    """Run one scenario in a worker, timing it (top-level: picklable)."""
    start = time.perf_counter()  # lint: allow[DET101]
    value = fn(**params)
    wall = time.perf_counter() - start  # lint: allow[DET101]
    return {"wall_s": wall, "messages": value}


def _scenario_matrix(sizes: list[int]) -> list[tuple[str, Any, dict[str, Any]]]:
    specs: list[tuple[str, Any, dict[str, Any]]] = []
    for n in sizes:
        specs.append(("single-failure", single_failure_messages, {"n": n, "seed": 0}))
        if n >= 6:
            specs.append(
                ("double-failure", double_failure_messages, {"n": n, "seed": 0})
            )
        specs.append(
            (
                "coordinator-failure",
                single_failure_messages,
                {"n": n, "seed": 0, "victim": "p0"},
            )
        )
    return specs


def _bench_scenarios(
    sizes: list[int], workers: Optional[int]
) -> list[dict[str, Any]]:
    specs = _scenario_matrix(sizes)
    jobs = [
        ScenarioJob(fn=_timed_call, kwargs={"fn": fn, "params": params}, label=name)
        for name, fn, params in specs
    ]
    results = run_jobs(jobs, workers=workers)
    return [
        {"name": name, "params": params, **measured}
        for (name, _fn, params), measured in zip(specs, results)
    ]


def _bench_explorer_engine(engine: str, params: dict[str, Any]) -> dict[str, Any]:
    from repro.verify.explore import explore_membership

    start = time.perf_counter()  # lint: allow[DET101]
    result = explore_membership(engine=engine, **params)
    wall = time.perf_counter() - start  # lint: allow[DET101]
    return {
        "wall_s": wall,
        "states": result.states,
        "tree_states": result.tree_states,
        "terminals": result.terminals,
        "complete": result.complete,
        "ok": result.ok,
        "tree_states_per_sec": result.tree_states / wall if wall > 0 else 0.0,
    }


def _bench_explorer() -> dict[str, Any]:
    engines = {
        "deepcopy": _bench_explorer_engine("deepcopy", _FIGURE4_PARAMS),
        "snapshot": _bench_explorer_engine("snapshot", _FIGURE4_PARAMS),
    }
    baseline = engines["deepcopy"]["tree_states_per_sec"]
    optimised = engines["snapshot"]["tree_states_per_sec"]
    return {
        "scenario": "figure4-concurrent-reconfigurers",
        "params": _FIGURE4_PARAMS,
        "engines": engines,
        "speedup_tree_states_per_sec": optimised / baseline if baseline else 0.0,
    }


def _bench_dedup() -> dict[str, Any]:
    measured = _bench_explorer_engine("snapshot", _DEDUP_PARAMS)
    states = measured["states"]
    return {
        "scenario": "symmetric-double-suspicion",
        "params": _DEDUP_PARAMS,
        **measured,
        "state_reduction_factor": measured["tree_states"] / states if states else 0.0,
    }


def _churn_cell(n: int) -> dict[str, Any]:
    """One ``--scale`` cell: join-churn-exclude throughput at size ``n``."""
    from repro.workloads.failures import churn_run

    start = time.perf_counter()  # lint: allow[DET101]
    cluster = churn_run(n, seed=0, trace_level="counts")
    wall = time.perf_counter() - start  # lint: allow[DET101]
    events = cluster.scheduler.events_run
    msgs = cluster.trace.message_count(None)
    return {
        "n": n,
        "wall_s": wall,
        "events": events,
        "events_per_sec": events / wall if wall > 0 else 0.0,
        "msgs": msgs,
        "msgs_per_sec": msgs / wall if wall > 0 else 0.0,
    }


def _bench_scale(sizes: list[int]) -> dict[str, Any]:
    """The n-sweep.  Cells run sequentially on purpose: sharding them across
    the worker pool would have every cell contending for the same cores and
    turn the per-n wall clocks into noise."""
    return {
        "workload": "join-churn-exclude",
        "trace_level": "counts",
        "cells": [_churn_cell(n) for n in sizes],
    }


def check_scale_regression(
    payload: dict[str, Any],
    baseline: dict[str, Any],
    threshold: float = 0.30,
) -> list[str]:
    """Compare a fresh ``scale`` section against a committed baseline.

    Returns one message per cell whose churn events/sec dropped by more
    than ``threshold`` relative to the baseline cell of the same ``n``
    (cells present on only one side are skipped — quick sweeps cover a
    prefix of the full sweep).  Empty list means no regression.
    """
    if "scale" not in payload or "scale" not in baseline:
        return ["baseline or fresh run has no 'scale' section (run with --scale)"]
    base_by_n = {cell["n"]: cell for cell in baseline["scale"]["cells"]}
    failures = []
    for cell in payload["scale"]["cells"]:
        base = base_by_n.get(cell["n"])
        if base is None or base["events_per_sec"] <= 0:
            continue
        ratio = cell["events_per_sec"] / base["events_per_sec"]
        if ratio < 1.0 - threshold:
            failures.append(
                f"n={cell['n']}: {cell['events_per_sec']:,.0f} events/s is "
                f"{(1.0 - ratio) * 100:.0f}% below baseline "
                f"{base['events_per_sec']:,.0f} events/s "
                f"(threshold {threshold * 100:.0f}%)"
            )
    return failures


def run_bench(
    quick: bool = False,
    workers: Optional[int] = None,
    out_dir: str | Path = ".",
    scale: bool = False,
) -> Path:
    """Run the full bench suite and write ``BENCH_results.json``.

    Returns the path of the written file.
    """
    resolved_workers = workers if workers is not None else default_workers()
    payload: dict[str, Any] = {
        "schema": "repro-bench/1",
        "quick": quick,
        "workers": resolved_workers,
        "scenarios": _bench_scenarios(
            _QUICK_SIZES if quick else _FULL_SIZES, workers
        ),
        "explorer": _bench_explorer(),
        "dedup": _bench_dedup(),
    }
    if scale:
        payload["scale"] = _bench_scale(
            _SCALE_QUICK_SIZES if quick else _SCALE_SIZES
        )
    out = Path(out_dir) / BENCH_FILENAME
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return out


def summarize(payload: dict[str, Any]) -> str:
    """Human-readable digest of a bench payload (printed by the CLI)."""
    lines = [f"scenarios ({len(payload['scenarios'])} cells):"]
    for cell in payload["scenarios"]:
        params = cell["params"]
        extras = {k: v for k, v in params.items() if k not in ("n", "seed")}
        suffix = f" {extras}" if extras else ""
        lines.append(
            f"  {cell['name']:<22} n={params['n']:<3}{suffix} "
            f"{cell['messages']:>5} msgs  {cell['wall_s'] * 1000:7.1f} ms"
        )
    explorer = payload["explorer"]
    lines.append(f"explorer ({explorer['scenario']}):")
    for engine, row in sorted(explorer["engines"].items()):
        lines.append(
            f"  {engine:<9} {row['tree_states']:>9} tree states in "
            f"{row['wall_s']:6.2f}s  ({row['tree_states_per_sec']:>9.0f}/s)"
        )
    lines.append(
        f"  speedup: {explorer['speedup_tree_states_per_sec']:.1f}x "
        "tree states covered per second"
    )
    dedup = payload["dedup"]
    lines.append(
        f"dedup ({dedup['scenario']}): {dedup['tree_states']} tree states "
        f"as {dedup['states']} unique expansions "
        f"({dedup['state_reduction_factor']:.0f}x reduction)"
    )
    scale = payload.get("scale")
    if scale is not None:
        lines.append(
            f"scale ({scale['workload']}, trace={scale['trace_level']}):"
        )
        for cell in scale["cells"]:
            lines.append(
                f"  n={cell['n']:<5} {cell['events']:>8} events  "
                f"{cell['wall_s']:8.3f}s  {cell['events_per_sec']:>10,.0f} ev/s  "
                f"{cell['msgs_per_sec']:>10,.0f} msg/s"
            )
    return "\n".join(lines)
