"""Parallel execution engine for the reproduction harness.

Three pieces, composed by the heavy consumers (experiment tables, the
schedule explorer, ``python -m repro bench``):

* :mod:`repro.runner.pool` — a multiprocessing worker pool that shards any
  matrix of ``(scenario fn, params, seed)`` jobs across cores with
  deterministic result ordering;
* :mod:`repro.runner.cache` — an on-disk content-addressed cache keyed on
  scenario parameters plus a fingerprint of the protocol/simulator source,
  so unchanged scenarios are never re-simulated;
* :mod:`repro.runner.bench` — the benchmark driver behind
  ``python -m repro bench``, emitting machine-readable ``BENCH_*.json``.

``bench`` is not imported here: it pulls in the explorer and the analysis
tables, and the pool/cache surface must stay importable from worker
processes without that weight.
"""

from repro.runner.cache import ScenarioCache, default_cache_dir, source_fingerprint
from repro.runner.pool import ScenarioJob, default_workers, parallel_map, run_jobs
from repro.runner.shard import (
    ShardedRun,
    shard_churn_run,
    shard_speedup_report,
)

__all__ = [
    "ScenarioJob",
    "run_jobs",
    "parallel_map",
    "default_workers",
    "ScenarioCache",
    "source_fingerprint",
    "default_cache_dir",
    "ShardedRun",
    "shard_churn_run",
    "shard_speedup_report",
]
