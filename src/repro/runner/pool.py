"""Parallel scenario fan-out: shard independent jobs across cores.

Every heavy consumer in this repository — the §7.2/E9 experiment tables,
the benchmark harness, the schedule explorer — runs many *independent,
deterministic* simulations.  :func:`run_jobs` shards any matrix of
``(scenario fn, params, seed)`` jobs across a multiprocessing pool while
guaranteeing **deterministic result ordering**: results come back in job
submission order regardless of worker count or completion order, so a
parallel run is byte-identical to a serial one.

Design constraints:

* jobs must be *picklable*: top-level functions with picklable arguments
  (see :mod:`repro.workloads.failures` for the canonical scenario fns);
* ``workers=0``/``workers=1`` (or a single job) short-circuits to an
  in-process serial loop — no pool, no pickling, easiest to debug;
* a failing job raises in the parent with the original traceback chained,
  never silently drops a result;
* worker processes run simulations only — they never nest another pool.

The default worker count comes from ``REPRO_WORKERS`` (environment) or
``os.cpu_count()``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from multiprocessing import get_all_start_methods, get_context
from typing import Any, Callable, Iterable, Optional, Sequence

__all__ = ["ScenarioJob", "run_jobs", "parallel_map", "default_workers"]


@dataclass(frozen=True)
class ScenarioJob:
    """One cell of a scenario matrix: a callable plus its parameters.

    ``seed`` is kept as an explicit field (rather than folded into
    ``kwargs``) because it is the replay handle: the cache and the bench
    report both key on it.  ``None`` means the scenario takes no seed.
    """

    fn: Callable[..., Any]
    kwargs: dict[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None
    label: str = ""

    def call(self) -> Any:
        kwargs = dict(self.kwargs)
        if self.seed is not None:
            kwargs["seed"] = self.seed
        return self.fn(**kwargs)


def default_workers() -> int:
    """Worker count: ``REPRO_WORKERS`` env var, else ``os.cpu_count()``."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


def _invoke(job: ScenarioJob) -> Any:
    """Module-level trampoline so jobs pickle under any start method."""
    return job.call()


def _pool_context():
    """Prefer fork (cheap, inherits the loaded package); fall back to spawn."""
    if "fork" in get_all_start_methods():
        return get_context("fork")
    return get_context("spawn")


def run_jobs(
    jobs: Sequence[ScenarioJob],
    workers: Optional[int] = None,
    chunksize: int = 1,
) -> list[Any]:
    """Run every job, returning results in job order.

    Args:
        jobs: the scenario matrix, in the order results are wanted.
        workers: process count; ``None`` = :func:`default_workers`,
            ``<= 1`` = serial in-process execution.
        chunksize: jobs handed to a worker per dispatch; 1 gives the best
            load balance for uneven job sizes (the default matters for
            tables whose largest-n cells dominate).
    """
    jobs = list(jobs)
    if workers is None:
        workers = default_workers()
    if workers <= 1 or len(jobs) <= 1:
        return [job.call() for job in jobs]
    ctx = _pool_context()
    processes = min(workers, len(jobs))
    with ctx.Pool(processes=processes) as pool:
        # Pool.map preserves submission order: deterministic by construction.
        return pool.map(_invoke, jobs, chunksize=chunksize)


def parallel_map(
    fn: Callable[[Any], Any],
    items: Iterable[Any],
    workers: Optional[int] = None,
    chunksize: int = 1,
) -> list[Any]:
    """Order-preserving parallel map over picklable items.

    A thin convenience over :func:`run_jobs` for callers that already have
    a single top-level function of one argument (the explorer's subtree
    shards use this).
    """
    item_list = list(items)
    if workers is None:
        workers = default_workers()
    if workers <= 1 or len(item_list) <= 1:
        return [fn(item) for item in item_list]
    ctx = _pool_context()
    processes = min(workers, len(item_list))
    with ctx.Pool(processes=processes) as pool:
        return pool.map(fn, item_list, chunksize=chunksize)
