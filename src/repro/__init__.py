"""repro — Group membership for failure detection in asynchronous systems.

A from-scratch reproduction of Ricciardi & Birman, *Using Process Groups to
Implement Failure Detection in Asynchronous Environments* (Cornell TR
91-1188 / PODC 1991): the asymmetric Group Membership Protocol with
two-phase (and compressed) updates, three-phase reconfiguration with
invisible-commit detection, and the online join procedure — plus the
simulation substrate, the formal model it is specified against, property
checkers for GMP-0..GMP-5, and the baseline protocols the paper compares
with.

Quickstart::

    from repro import MembershipCluster

    cluster = MembershipCluster.of_size(5, seed=7)
    cluster.start()
    cluster.crash("p2", at=10.0)     # crash a member
    cluster.settle()                 # run to quiescence
    print(cluster.agreed_view())     # survivors agree: p2 excluded

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every reproduced table and figure.
"""

from repro.ids import ProcessId, pid
from repro.core.messages import Op, add, remove
from repro.core.member import GMPMember
from repro.core.service import GroupMembershipService, MembershipCluster

__version__ = "1.0.0"

__all__ = [
    "ProcessId",
    "pid",
    "Op",
    "add",
    "remove",
    "GMPMember",
    "MembershipCluster",
    "GroupMembershipService",
    "__version__",
]
