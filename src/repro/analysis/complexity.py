"""The paper's closed-form message-complexity bounds (Section 7.2).

All counts concern *protocol* messages for installing system views in a
group of size ``n`` (detector traffic and the FaultyNotice that makes the
coordinator aware of a suspicion are outside the paper's accounting, which
starts "when Mgr becomes aware of a failure").

The three best cases:

* plain two-phase update — at most ``3n - 5``;
* compressed update — at most ``2n - 3`` per round;
* one successful reconfiguration — at most ``5n - 9``.

The streak analysis: ``n - 1`` successive compressed exclusions cost
``(n - 1)^2`` messages in total, i.e. an average of ``n - 1`` per exclusion,
where the standard two-phase algorithm would pay about ``n/2 - 1`` more per
exclusion.  The worst case — ``tau_x`` successive failed reconfigurations —
is ``O(n^2)``.
"""

from __future__ import annotations

__all__ = [
    "two_phase_update_messages",
    "compressed_update_messages",
    "reconfiguration_messages",
    "compressed_streak_total",
    "standard_streak_total",
    "worst_case_total",
    "tolerable_failures",
]


def _require_group(n: int, minimum: int = 2) -> None:
    if n < minimum:
        raise ValueError(f"group size {n} too small (need at least {minimum})")


def two_phase_update_messages(n: int) -> int:
    """Best case #1: plain two-phase exclusion in a view of size n.

    ``(n-1)`` invites + ``(n-2)`` OKs + ``(n-2)`` commits = ``3n - 5``.
    """
    _require_group(n)
    return 3 * n - 5


def compressed_update_messages(n: int) -> int:
    """Best case #2: one compressed round in a view of size n: ``2n - 3``.

    The invitation rides on the previous commit, leaving one OK wave and
    one commit broadcast.
    """
    _require_group(n)
    return 2 * n - 3


def reconfiguration_messages(n: int) -> int:
    """Best case #3: one successful reconfiguration: ``5n - 9``.

    Three broadcasts (interrogate, propose, commit) and two response waves
    across the survivors of a view that had size n.
    """
    _require_group(n, minimum=3)
    return 5 * n - 9


def compressed_streak_total(n: int) -> int:
    """Total for ``n - 1`` successive compressed exclusions: ``(n - 1)^2``.

    The paper derives ``n^2 - 2n - 1 ~= (n-1)^2``; we use the clean square
    it rounds to ("averaging to n - 1 messages per exclusion").
    """
    _require_group(n)
    return (n - 1) ** 2


def standard_streak_total(n: int) -> int:
    """Total for the same streak under plain (uncompressed) two-phase.

    Each exclusion from a view of current size m costs ``3m - 5``; summing
    m = n, n-1, ..., 2 — about ``n/2 - 1`` more per exclusion than the
    compressed algorithm, as Section 7.2 states.
    """
    _require_group(n)
    return sum(3 * m - 5 for m in range(n, 1, -1))


def tolerable_failures(n: int) -> int:
    """``tau_x``: failures tolerable between successive views: minority.

    The majority rule means at most ``ceil(n/2) - 1`` processes may be
    suspected between two view installations.
    """
    _require_group(n)
    return (n + 1) // 2 - 1


def worst_case_total(n: int) -> int:
    """Worst case: ``tau`` successive failed reconfigurations, ``O(n^2)``.

    Each failed attempt y runs a reconfiguration of the shrinking group and
    dies at its commit; we sum the per-attempt cost ``5(n - y) - 9`` over
    the tolerable failures plus the final successful attempt.
    """
    _require_group(n, minimum=4)
    tau = tolerable_failures(n)
    total = 0
    for y in range(tau):
        total += max(reconfiguration_messages(n - y), 0)
    total += reconfiguration_messages(n - tau)
    return total
