"""Counting what a run actually sent, phase by phase.

Section 7.2's accounting starts "when Mgr becomes aware of a failure" and
excludes the detection mechanism, so :func:`protocol_messages` counts
everything in the ``protocol`` category *except* FaultyNotice and
JoinRequest (awareness traffic), and :class:`MessageBreakdown` gives the
full per-type split for the tables in EXPERIMENTS.md.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.sim.trace import RunTrace

__all__ = ["MessageBreakdown", "breakdown", "protocol_messages", "AWARENESS_TYPES"]

#: Message types that make the coordinator aware of work, which the paper's
#: §7.2 accounting treats as part of detection rather than of the algorithm.
AWARENESS_TYPES = frozenset({"FaultyNotice", "JoinRequest"})

#: Update-algorithm message types (two-phase / compressed, Figures 2/8/9).
UPDATE_TYPES = frozenset({"Invite", "UpdateOk", "Commit", "StateTransfer"})

#: Reconfiguration message types (three-phase, Figures 5/10).
RECONFIG_TYPES = frozenset(
    {"Interrogate", "InterrogateOk", "Propose", "ProposeOk", "ReconfigCommit"}
)


@dataclass
class MessageBreakdown:
    """Per-type message counts of one run."""

    by_type: Counter[str] = field(default_factory=Counter)

    @property
    def total(self) -> int:
        return sum(self.by_type.values())

    @property
    def algorithm(self) -> int:
        """Messages charged to the algorithm by the paper's accounting."""
        return sum(c for t, c in self.by_type.items() if t not in AWARENESS_TYPES)

    @property
    def awareness(self) -> int:
        return sum(c for t, c in self.by_type.items() if t in AWARENESS_TYPES)

    @property
    def update(self) -> int:
        return sum(c for t, c in self.by_type.items() if t in UPDATE_TYPES)

    @property
    def reconfiguration(self) -> int:
        return sum(c for t, c in self.by_type.items() if t in RECONFIG_TYPES)

    def format(self) -> str:
        lines = [f"total={self.total} algorithm={self.algorithm} "
                 f"(update={self.update}, reconfig={self.reconfiguration}, "
                 f"awareness={self.awareness})"]
        for name, count in sorted(self.by_type.items()):
            lines.append(f"  {name:>16}: {count}")
        return "\n".join(lines)


def breakdown(trace: RunTrace, category: str = "protocol") -> MessageBreakdown:
    """Per-type counts for one category of a run's traffic."""
    return MessageBreakdown(by_type=trace.message_counts_by_type(category))


def protocol_messages(trace: RunTrace) -> int:
    """Messages charged to the algorithm (paper §7.2 accounting)."""
    return breakdown(trace).algorithm
