"""Message-complexity analysis (Section 7.2).

:mod:`repro.analysis.complexity` holds the paper's closed-form bounds;
:mod:`repro.analysis.messages` counts what a run actually sent, broken down
by protocol phase, so the benchmarks can put measured curves next to the
paper's formulas.
"""

from repro.analysis.complexity import (
    two_phase_update_messages,
    compressed_update_messages,
    reconfiguration_messages,
    compressed_streak_total,
    standard_streak_total,
    worst_case_total,
    tolerable_failures,
)
from repro.analysis.messages import MessageBreakdown, breakdown, protocol_messages

__all__ = [
    "two_phase_update_messages",
    "compressed_update_messages",
    "reconfiguration_messages",
    "compressed_streak_total",
    "standard_streak_total",
    "worst_case_total",
    "tolerable_failures",
    "MessageBreakdown",
    "breakdown",
    "protocol_messages",
]
