"""ASCII space-time diagrams: render a trace the way the paper draws runs.

The paper's figures are space-time diagrams — horizontal process lines,
diagonal message arrows, marked events.  :func:`render` produces a textual
equivalent from any recorded trace, which the examples use to *show* an
invisible commit or a crossing reconfiguration rather than describe it.

One column per trace event keeps the layout trivial and the causality
unambiguous (time flows left to right; a send and its receive share a
column pair connected by the message id).

Example output (coordinator dies mid-commit)::

    p0 | S--S--S--*--C
    p1 | ...r--k--...
        (S send, r recv, k install, C crash, * faulty, x discard, Q quit)
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.ids import ProcessId
from repro.model.events import Event, EventKind

__all__ = ["render", "render_legend"]

_GLYPHS = {
    EventKind.START: "o",
    EventKind.SEND: "s",
    EventKind.RECV: "r",
    EventKind.FAULTY: "!",
    EventKind.OPERATING: "+",
    EventKind.REMOVE: "-",
    EventKind.ADD: "a",
    EventKind.QUIT: "Q",
    EventKind.INSTALL: "V",
    EventKind.CRASH: "X",
    EventKind.DISCARD: "x",
    EventKind.INTERNAL: "*",
}


def render_legend() -> str:
    """The glyph legend, for printing under a diagram."""
    return (
        "legend: o start   s send   r recv   ! faulty   + operating   "
        "- remove   a add\n"
        "        V install   X crash   Q quit   x discard (S1)   * internal"
    )


def render(
    events: Iterable[Event],
    kinds: Optional[set[EventKind]] = None,
    processes: Optional[list[ProcessId]] = None,
    max_columns: int = 200,
    annotate_messages: bool = True,
) -> str:
    """Render a trace as an ASCII space-time diagram.

    Args:
        events: the trace (global order = column order).
        kinds: restrict to these event kinds (default: all but SEND/RECV
            noise is often what you want — pass explicitly).
        processes: row order (default: order of first appearance).
        max_columns: truncate very long runs (a note marks truncation).
        annotate_messages: mark matching send/recv pairs with a shared
            single-letter tag above the lines where space allows.
    """
    selected = [
        e
        for e in events
        if kinds is None or e.kind in kinds
    ]
    truncated = len(selected) > max_columns
    selected = selected[:max_columns]

    if processes is None:
        processes = []
        for event in selected:
            if event.proc not in processes:
                processes.append(event.proc)
    rows: dict[ProcessId, list[str]] = {p: [] for p in processes}

    # Message pairing tags: a..z cycling, only when both ends are visible.
    tags: dict[int, str] = {}
    if annotate_messages:
        seen_sends = {}
        next_tag = 0
        for event in selected:
            if event.message is None:
                continue
            if event.kind is EventKind.SEND:
                seen_sends[event.message.msg_id] = event
            elif event.kind is EventKind.RECV:
                if event.message.msg_id in seen_sends:
                    tags[event.message.msg_id] = chr(ord("a") + next_tag % 26)
                    next_tag += 1

    tag_row: list[str] = []
    for event in selected:
        glyph_tag = " "
        if (
            annotate_messages
            and event.message is not None
            and event.message.msg_id in tags
            and event.kind in (EventKind.SEND, EventKind.RECV)
        ):
            glyph_tag = tags[event.message.msg_id]
        tag_row.append(glyph_tag)
        for proc in processes:
            if proc == event.proc:
                rows[proc].append(_GLYPHS.get(event.kind, "?"))
            else:
                rows[proc].append("-" if not _is_dead(rows[proc]) else " ")

    name_width = max((len(str(p)) for p in processes), default=4)
    lines = []
    if annotate_messages and any(t != " " for t in tag_row):
        lines.append(" " * (name_width + 3) + "".join(tag_row))
    for proc in processes:
        lines.append(f"{str(proc):>{name_width}} | " + "".join(rows[proc]))
    if truncated:
        lines.append(f"... (truncated at {max_columns} events)")
    return "\n".join(lines)


def _is_dead(row: list[str]) -> bool:
    """After a crash/quit glyph, the line goes blank."""
    for glyph in reversed(row):
        if glyph in ("X", "Q"):
            return True
        if glyph not in ("-", " "):
            return False
    return False
