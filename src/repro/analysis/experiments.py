"""Programmatic regeneration of the headline experiment tables.

The benchmark suite (``pytest benchmarks/ --benchmark-only``) runs every
experiment with timing; this module re-derives the *numbers* quickly and
without pytest, for the ``python -m repro report`` command and for anyone
embedding the reproduction in a notebook.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.complexity import (
    compressed_update_messages,
    reconfiguration_messages,
    two_phase_update_messages,
)
from repro.analysis.messages import breakdown
from repro.core.service import MembershipCluster
from repro.sim.network import FixedDelay

__all__ = ["ExperimentTable", "best_case_table", "baseline_table", "report"]


@dataclass
class ExperimentTable:
    """One rendered table: a title, a header, and aligned rows."""

    title: str
    header: list[str]
    rows: list[list[str]] = field(default_factory=list)

    def render(self) -> str:
        widths = [
            max(len(self.header[i]), *(len(r[i]) for r in self.rows))
            for i in range(len(self.header))
        ]
        lines = [self.title]
        lines.append("  " + "  ".join(h.rjust(w) for h, w in zip(self.header, widths)))
        for row in self.rows:
            lines.append(
                "  " + "  ".join(c.rjust(w) for c, w in zip(row, widths))
            )
        return "\n".join(lines)


def _single_failure(n: int, member_class=None, victim: str | None = None) -> int:
    kwargs = {} if member_class is None else {"member_class": member_class}
    cluster = MembershipCluster.of_size(n, seed=0, delay_model=FixedDelay(1.0), **kwargs)
    cluster.start()
    cluster.crash(victim or f"p{n - 1}", at=5.0)
    cluster.settle()
    return breakdown(cluster.trace).algorithm


def _double_failure(n: int) -> int:
    cluster = MembershipCluster.of_size(n, seed=0, delay_model=FixedDelay(1.0))
    cluster.start()
    cluster.crash(f"p{n - 1}", at=5.0)
    cluster.crash(f"p{n - 2}", at=5.1)
    cluster.settle()
    return breakdown(cluster.trace).algorithm


def best_case_table(sizes: list[int] | None = None) -> ExperimentTable:
    """E1/E2/E3: the three §7.2 best cases, paper vs measured."""
    sizes = sizes or [4, 6, 8, 12, 16]
    table = ExperimentTable(
        title="§7.2 best cases — paper bound vs measured protocol messages",
        header=["n", "3n-5", "meas", "2n-3", "meas", "5n-9", "meas"],
    )
    for n in sizes:
        one = _single_failure(n)
        compressed = str(_double_failure(n) - one) if n >= 6 else "-"
        reconfig = _single_failure(n, victim="p0")
        table.rows.append(
            [
                str(n),
                str(two_phase_update_messages(n)),
                str(one),
                str(compressed_update_messages(n)),
                compressed,
                str(reconfiguration_messages(n)),
                str(reconfig),
            ]
        )
    return table


def baseline_table(sizes: list[int] | None = None) -> ExperimentTable:
    """E9: one exclusion, GMP vs the related protocols."""
    from repro.baselines import AbcastMember, SymmetricMember

    sizes = sizes or [6, 12, 16, 24]
    table = ExperimentTable(
        title="E9 — one exclusion: GMP vs symmetric (Bruso) vs abcast (Moser)",
        header=["n", "GMP", "symmetric", "", "abcast", ""],
    )
    for n in sizes:
        ours = _single_failure(n)
        symmetric = _single_failure(n, member_class=SymmetricMember)
        abcast = _single_failure(n, member_class=AbcastMember)
        table.rows.append(
            [
                str(n),
                str(ours),
                str(symmetric),
                f"({symmetric / ours:.1f}x)",
                str(abcast),
                f"({abcast / ours:.1f}x)",
            ]
        )
    return table


def report() -> str:
    """Render the quick report (used by ``python -m repro report``)."""
    parts = [
        best_case_table().render(),
        "",
        baseline_table().render(),
        "",
        "Full experiment suite: pytest benchmarks/ --benchmark-only",
        "Recorded results and deviations: EXPERIMENTS.md",
    ]
    return "\n".join(parts)
