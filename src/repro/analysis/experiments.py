"""Programmatic regeneration of the headline experiment tables.

The benchmark suite (``pytest benchmarks/ --benchmark-only``) runs every
experiment with timing; this module re-derives the *numbers* quickly and
without pytest, for the ``python -m repro report`` command and for anyone
embedding the reproduction in a notebook.

Every table cell is an independent deterministic simulation, so the
tables are built as a flat job matrix handed to the
:mod:`repro.runner` worker pool (``workers`` > 1 shards the cells across
processes; results come back in matrix order, so the rendered table is
byte-identical at any worker count) and, optionally, memoised through a
:class:`repro.runner.cache.ScenarioCache` (keyed on the scenario
parameters plus a fingerprint of the protocol source, so a re-run after
an unrelated edit skips the simulations entirely).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.analysis.complexity import (
    compressed_update_messages,
    reconfiguration_messages,
    two_phase_update_messages,
)
from repro.runner.cache import ScenarioCache
from repro.runner.pool import ScenarioJob, run_jobs
from repro.workloads.failures import double_failure_messages, single_failure_messages

__all__ = ["ExperimentTable", "best_case_table", "baseline_table", "report"]


@dataclass
class ExperimentTable:
    """One rendered table: a title, a header, and aligned rows."""

    title: str
    header: list[str]
    rows: list[list[str]] = field(default_factory=list)

    def render(self) -> str:
        widths = [
            max(len(self.header[i]), *(len(r[i]) for r in self.rows))
            for i in range(len(self.header))
        ]
        lines = [self.title]
        lines.append("  " + "  ".join(h.rjust(w) for h, w in zip(self.header, widths)))
        for row in self.rows:
            lines.append(
                "  " + "  ".join(c.rjust(w) for c, w in zip(row, widths))
            )
        return "\n".join(lines)


def _gather(
    specs: list[tuple[str, Callable[..., int], dict[str, Any]]],
    workers: Optional[int],
    cache: Optional[ScenarioCache],
) -> list[int]:
    """Resolve a scenario matrix: cache hits first, the pool for the rest.

    ``specs`` is an ordered list of ``(name, fn, params)``; the returned
    values are in the same order regardless of worker count, which is what
    keeps the rendered tables byte-identical serial vs parallel.
    """
    values: list[Optional[int]] = [None] * len(specs)
    misses: list[int] = []
    for index, (name, _fn, params) in enumerate(specs):
        hit = cache.get(name, params) if cache is not None else None
        if hit is not None:
            values[index] = hit
        else:
            misses.append(index)
    jobs = [
        ScenarioJob(fn=specs[index][1], kwargs=specs[index][2], label=specs[index][0])
        for index in misses
    ]
    for index, value in zip(misses, run_jobs(jobs, workers=workers)):
        values[index] = value
        if cache is not None:
            name, _fn, params = specs[index]
            cache.put(name, params, value)
    return values  # type: ignore[return-value]


def best_case_table(
    sizes: list[int] | None = None,
    workers: Optional[int] = None,
    cache: Optional[ScenarioCache] = None,
) -> ExperimentTable:
    """E1/E2/E3: the three §7.2 best cases, paper vs measured."""
    sizes = sizes or [4, 6, 8, 12, 16]
    specs: list[tuple[str, Callable[..., int], dict[str, Any]]] = []
    for n in sizes:
        specs.append(("single-failure", single_failure_messages, {"n": n, "seed": 0}))
        if n >= 6:
            specs.append(("double-failure", double_failure_messages, {"n": n, "seed": 0}))
        specs.append(
            (
                "coordinator-failure",
                single_failure_messages,
                {"n": n, "seed": 0, "victim": "p0"},
            )
        )
    values = iter(_gather(specs, workers, cache))
    table = ExperimentTable(
        title="§7.2 best cases — paper bound vs measured protocol messages",
        header=["n", "3n-5", "meas", "2n-3", "meas", "5n-9", "meas"],
    )
    for n in sizes:
        one = next(values)
        compressed = str(next(values) - one) if n >= 6 else "-"
        reconfig = next(values)
        table.rows.append(
            [
                str(n),
                str(two_phase_update_messages(n)),
                str(one),
                str(compressed_update_messages(n)),
                compressed,
                str(reconfiguration_messages(n)),
                str(reconfig),
            ]
        )
    return table


def baseline_table(
    sizes: list[int] | None = None,
    workers: Optional[int] = None,
    cache: Optional[ScenarioCache] = None,
) -> ExperimentTable:
    """E9: one exclusion, GMP vs the related protocols."""
    from repro.baselines import AbcastMember, SymmetricMember

    sizes = sizes or [6, 12, 16, 24]
    specs: list[tuple[str, Callable[..., int], dict[str, Any]]] = []
    for n in sizes:
        specs.append(("single-failure", single_failure_messages, {"n": n, "seed": 0}))
        specs.append(
            (
                "single-failure-symmetric",
                single_failure_messages,
                {"n": n, "seed": 0, "member_class": SymmetricMember},
            )
        )
        specs.append(
            (
                "single-failure-abcast",
                single_failure_messages,
                {"n": n, "seed": 0, "member_class": AbcastMember},
            )
        )
    values = iter(_gather(specs, workers, cache))
    table = ExperimentTable(
        title="E9 — one exclusion: GMP vs symmetric (Bruso) vs abcast (Moser)",
        header=["n", "GMP", "symmetric", "", "abcast", ""],
    )
    for n in sizes:
        ours = next(values)
        symmetric = next(values)
        abcast = next(values)
        table.rows.append(
            [
                str(n),
                str(ours),
                str(symmetric),
                f"({symmetric / ours:.1f}x)",
                str(abcast),
                f"({abcast / ours:.1f}x)",
            ]
        )
    return table


def report(
    workers: Optional[int] = None, cache: Optional[ScenarioCache] = None
) -> str:
    """Render the quick report (used by ``python -m repro report``)."""
    parts = [
        best_case_table(workers=workers, cache=cache).render(),
        "",
        baseline_table(workers=workers, cache=cache).render(),
        "",
    ]
    if cache is not None:
        parts.append(cache.format_stats())
    parts += [
        "Full experiment suite: pytest benchmarks/ --benchmark-only",
        "Recorded results and deviations: EXPERIMENTS.md",
    ]
    return "\n".join(parts)
