#!/usr/bin/env python3
"""A replicated counter on view-synchronous multicast.

The paper's membership service exists so systems like ISIS can build
replicated services on top of it.  This example does exactly that: each
group member holds a counter replica; increments are view-synchronous
multicasts; a view change defines the *exact* set of operations every
survivor has applied — even when a client's increment broadcast is cut in
half by a crash.

    python examples/replicated_counter.py
"""

from __future__ import annotations

from repro import MembershipCluster
from repro.extensions.vsync import Delivery, VsyncLayer
from repro.ids import pid
from repro.properties import check_gmp, format_report
from repro.sim.failures import crash_after_matching_sends, payload_type_is
from repro.sim.network import FixedDelay


class CounterReplica:
    """One member's replica: applies increments in delivery order."""

    def __init__(self, member) -> None:
        self.value = 0
        self.applied: list[Delivery] = []
        self.layer = VsyncLayer(member, deliver=self._apply)

    def _apply(self, delivery: Delivery) -> None:
        self.value += delivery.payload
        self.applied.append(delivery)

    def increment(self, amount: int = 1) -> None:
        self.layer.multicast(amount)


def main() -> None:
    cluster = MembershipCluster.of_size(5, prefix="rep", seed=5, delay_model=FixedDelay(1.0))
    replicas = {p: CounterReplica(m) for p, m in cluster.members.items()}
    # rep3 will crash after its increment reaches only ONE other replica —
    # the classic torn-broadcast scenario view synchrony exists to fix.
    crash_after_matching_sends(
        cluster.network,
        cluster.resolve("rep3"),
        payload_type_is("VsMessage"),
        after=1,
        detail="dies mid-increment",
    )
    cluster.start()
    cluster.run(until=5.0)

    print("replicas increment concurrently...")
    replicas[pid("rep0")].increment(10)
    replicas[pid("rep1")].increment(20)
    cluster.run(until=8.0)
    print("rep3 increments by 100 and dies mid-broadcast...")
    replicas[pid("rep3")].increment(100)
    cluster.settle()

    print("\nafter rep3's exclusion, every surviving replica agrees:")
    for p, member in sorted(cluster.members.items(), key=lambda kv: kv[0].name):
        if member.is_member:
            replica = replicas[p]
            ops = [(d.origin.name, d.payload) for d in replica.applied]
            print(f"  {p}: value={replica.value}  applied={ops}")

    values = {replicas[p].value for p, m in cluster.members.items() if m.is_member}
    assert len(values) == 1, "replicas diverged!"
    print(
        f"\nthe torn increment (+100) was flushed to all survivors before the\n"
        f"view change: agreed value = {values.pop()}"
    )

    report = check_gmp(cluster.trace, cluster.initial_view)
    print()
    print(format_report(report))


if __name__ == "__main__":
    main()
