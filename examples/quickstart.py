#!/usr/bin/env python3
"""Quickstart: a membership group surviving failures and admitting joiners.

Runs a six-member group through a member crash, a coordinator crash (which
forces a reconfiguration), and a join — then prints every system view the
group agreed on and checks the full GMP specification over the run.

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import MembershipCluster
from repro.properties import check_gmp, format_report


def main() -> None:
    cluster = MembershipCluster.of_size(6, seed=2024)
    cluster.start()

    print("initial view:", ", ".join(m.name for m in cluster.initial_view))
    print()

    # An ordinary member crashes: the coordinator excludes it.
    cluster.crash("p4", at=10.0)

    # The coordinator itself crashes: the next-ranked member must detect it,
    # interrogate the survivors, and take over (three-phase reconfiguration).
    cluster.crash("p0", at=50.0)

    # A new process asks to join the group.
    cluster.join("newcomer", at=90.0)

    cluster.settle()

    print("system view sequence agreed by the group:")
    report = check_gmp(cluster.trace, cluster.initial_view)
    for view in report.system_views:
        members = ", ".join(str(m) for m in view.members)
        print(f"  Sys^{view.version} = {{{members}}}")
    print()

    coordinator = cluster.live_members()[0].state.mgr
    print(f"final coordinator: {coordinator}")
    print(f"final agreed view: {[str(m) for m in cluster.agreed_view()]}")
    print(f"protocol messages sent: {cluster.trace.message_count()}")
    print()
    print(format_report(report))


if __name__ == "__main__":
    main()
