#!/usr/bin/env python3
"""Live asyncio cluster: the same protocol under real concurrency.

The protocol state machines are sans-I/O, so the identical
:class:`~repro.core.member.GMPMember` code that runs in the deterministic
simulator here runs on a real asyncio event loop, with wall-clock heartbeat
failure detection and jittered in-memory message delays.

    python examples/asyncio_cluster.py
"""

from __future__ import annotations

import asyncio

from repro.aio import AioMembershipRuntime
from repro.properties import check_gmp, format_report


def show(runtime: AioMembershipRuntime, label: str) -> None:
    print(f"\n--- {label} (t={runtime.scheduler.now:5.2f}s) ---")
    for proc, (version, view) in sorted(
        runtime.views().items(), key=lambda kv: (kv[0].name, kv[0].incarnation)
    ):
        members = ", ".join(str(m) for m in view)
        print(f"  {proc}: v{version} {{{members}}}")


async def main() -> None:
    runtime = AioMembershipRuntime(
        [f"node{i}" for i in range(5)],
        detector="heartbeat",
        heartbeat_period=0.05,
        heartbeat_timeout=0.25,
    )
    runtime.start()
    await runtime.run_for(0.2)
    show(runtime, "steady state")

    print("\ncrashing node2 ...")
    runtime.crash("node2")
    agreed = await runtime.wait_for_agreement(timeout=10.0)
    show(runtime, f"after detection and exclusion (agreement={agreed})")

    print("\ncrashing the coordinator node0 ...")
    runtime.crash("node0")
    agreed = await runtime.wait_for_agreement(timeout=10.0)
    show(runtime, f"after live reconfiguration (agreement={agreed})")
    survivor = runtime.live_members()[0]
    print(f"  new coordinator: {survivor.state.mgr}")

    print("\njoining node5 ...")
    joiner = runtime.join("node5")
    deadline = asyncio.get_event_loop().time() + 10.0
    while asyncio.get_event_loop().time() < deadline:
        if runtime.members[joiner].is_member and runtime.in_agreement():
            break
        await asyncio.sleep(0.02)
    show(runtime, "after the join")

    report = check_gmp(runtime.trace, runtime.initial_view, check_liveness=False)
    print()
    print(format_report(report))
    print(f"\nheartbeat messages exchanged: {runtime.trace.message_count('detector')}")
    print(f"protocol messages exchanged:  {runtime.trace.message_count('protocol')}")


if __name__ == "__main__":
    asyncio.run(main())
