#!/usr/bin/env python3
"""Replay the paper's adversarial scenarios and watch the proofs at work.

Runs Figure 3 (coordinator dies mid-commit), Figure 11 / Claim 7.2 (two
competing proposals for one version, with the two-phase strawman shown
diverging), and Claim 7.1 (the one-phase strawman diverging) — printing the
decisive protocol events of each run.

    python examples/adversarial_replay.py
"""

from __future__ import annotations

from repro.analysis.diagram import render, render_legend
from repro.baselines import OnePhaseMember, TwoPhaseReconfigMember
from repro.model.events import EventKind
from repro.properties import check_gmp
from repro.workloads.scenarios import run_claim71, run_figure3, run_figure11

DIAGRAM_KINDS = {
    EventKind.SEND,
    EventKind.RECV,
    EventKind.FAULTY,
    EventKind.REMOVE,
    EventKind.INSTALL,
    EventKind.CRASH,
    EventKind.QUIT,
}


def banner(text: str) -> None:
    print()
    print("=" * 72)
    print(text)
    print("=" * 72)


def narrate(cluster, kinds=(EventKind.CRASH, EventKind.QUIT, EventKind.INSTALL, EventKind.INTERNAL)) -> None:
    for event in cluster.trace.events:
        if event.kind not in kinds:
            continue
        if event.kind is EventKind.INSTALL:
            members = ",".join(str(m) for m in (event.view or ()))
            print(f"  t={event.time:7.2f}  {event.proc} installs v{event.version} {{{members}}}")
        elif event.kind is EventKind.INTERNAL and event.detail:
            print(f"  t={event.time:7.2f}  {event.proc} {event.detail}")
        elif event.kind in (EventKind.CRASH, EventKind.QUIT):
            detail = f" ({event.detail})" if event.detail else ""
            print(f"  t={event.time:7.2f}  {event.proc} {event.kind.value}{detail}")


def verdict(cluster) -> str:
    report = check_gmp(cluster.trace, cluster.initial_view, check_liveness=False)
    if report.ok:
        return "GMP: PASS"
    return "GMP: FAIL — " + "; ".join(str(v) for v in report.violations[:2])


def main() -> None:
    banner("Figure 3: the coordinator dies in the middle of a commit broadcast")
    cluster = run_figure3(n=5, commit_sends_before_crash=1)
    narrate(cluster)
    print()
    print(render(cluster.trace.events, kinds=DIAGRAM_KINDS, max_columns=140))
    print(render_legend())
    print(" ", verdict(cluster))
    print(
        "  -> the one member that saw the commit is not alone for long: the\n"
        "     reconfigurer detects the possibly-invisible commit from the\n"
        "     respondents' plans and completes the same version for everyone."
    )

    banner("Figure 11 / Claim 7.2: two competing proposals for version 1")
    cluster = run_figure11()
    narrate(cluster)
    print(" ", verdict(cluster))
    print(
        "  -> 'determined ... candidates=2' is GetStable at work: only the\n"
        "     junior proposer's operation could have committed invisibly\n"
        "     (Proposition 5.6), so remove(m) is propagated."
    )

    banner("Claim 7.2 strawman: the same schedule, two-phase reconfiguration")
    cluster = run_figure11(member_class=TwoPhaseReconfigMember, strawman=True)
    narrate(cluster, kinds=(EventKind.CRASH, EventKind.INSTALL))
    print(" ", verdict(cluster))
    print(
        "  -> without the proposal phase the dead reconfigurer's plan never\n"
        "     spread; the next initiator trusted the visible (wrong) plan\n"
        "     and installed a divergent version 1."
    )

    banner("Claim 7.1 strawman: one-phase updates under the R/S split")
    cluster = run_claim71(member_class=OnePhaseMember)
    narrate(cluster, kinds=(EventKind.INSTALL,))
    print(" ", verdict(cluster))
    print(
        "  -> each side installed its own version 1; one phase cannot\n"
        "     arbitrate crossing suspicions.  The real protocol on this\n"
        "     schedule installs nothing until further detections arrive:"
    )
    cluster = run_claim71()
    print("    ", verdict(cluster), "(blocked, not diverged)")


if __name__ == "__main__":
    main()
