#!/usr/bin/env python3
"""A mutual-monitoring service — the paper's motivating application.

A set of servers "co-operate to perform some task [and] monitor one
another".  Each embeds the membership service and uses realistic heartbeat
failure detection, so *perceived* failures — the paper's central notion —
actually occur: a slow-but-live server can be suspected, excluded, and must
rejoin as a new incarnation.

The demo runs three acts:

  1. steady state — heartbeats keep everyone trusted;
  2. a real crash — detected by timeout, excluded by the coordinator;
  3. a *spurious* suspicion — a live server is accused (we script the
     accusation to make the run deterministic), excluded per GMP-5, learns
     of its exclusion, quits, and rejoins under a fresh incarnation.

    python examples/monitoring_service.py
"""

from __future__ import annotations

from repro import GroupMembershipService, MembershipCluster
from repro.properties import check_gmp, format_report


def banner(text: str) -> None:
    print()
    print(f"--- {text} ---")


def show_views(cluster: MembershipCluster) -> None:
    for proc, (version, view) in sorted(
        cluster.views().items(), key=lambda kv: kv[0].name
    ):
        members = ", ".join(str(m) for m in view)
        print(f"  {proc}: version {version}, view {{{members}}}")


def main() -> None:
    cluster = MembershipCluster.of_size(
        5,
        prefix="srv",
        seed=7,
        detector="scripted",  # deterministic demo; see asyncio_cluster.py
    )                         # for wall-clock heartbeat detection
    cluster.start()

    # Application handles, as a deployed service would hold them.
    services = {
        name: GroupMembershipService(cluster, name)
        for name in ("srv0", "srv1", "srv2", "srv3", "srv4")
    }

    banner("act 1: steady state")
    cluster.run(until=5.0)
    show_views(cluster)

    banner("act 2: srv3 crashes for real")
    cluster.crash("srv3", at=6.0)
    # Monitoring timeouts fire at its peers.
    for observer in ("srv0", "srv1", "srv2", "srv4"):
        cluster.suspect(observer, "srv3", at=10.0)
    cluster.settle()
    show_views(cluster)

    banner("act 3: srv4 is *wrongly* suspected (it is alive)")
    # srv1's monitoring times out on srv4 during a latency spike.
    cluster.suspect("srv1", "srv4", at=cluster.scheduler.now + 5.0)
    cluster.settle()
    print("srv4 membership status:", services["srv4"].is_member())
    print("srv4 process state: quit =", cluster.member("srv4").quit)
    show_views(cluster)
    print()
    print(
        "GMP-5 in action: once suspected, srv4 had to leave the view —"
        " perceived failure is indistinguishable from real failure."
    )

    banner("act 4: srv4 rejoins as a new incarnation")
    rejoined = cluster.join("srv4")
    cluster.settle()
    print("rejoined as:", rejoined)
    show_views(cluster)

    banner("specification check over the whole run")
    report = check_gmp(cluster.trace, cluster.initial_view)
    print(format_report(report))


if __name__ == "__main__":
    main()
