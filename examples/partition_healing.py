#!/usr/bin/env python3
"""Network partition: the majority side proceeds, the minority blocks.

The paper's majority rule (Section 4.3) exists precisely for this: during a
partition each side may believe the other failed, but only a side holding a
majority of the current view can install new views.  The minority side
blocks — safely — and after the partition heals its members discover they
have been excluded and rejoin as new incarnations.

    python examples/partition_healing.py
"""

from __future__ import annotations

from repro import MembershipCluster
from repro.properties import check_gmp, format_report


def show(cluster: MembershipCluster, label: str) -> None:
    print(f"\n--- {label} ---")
    for proc, (version, view) in sorted(
        cluster.views().items(), key=lambda kv: (kv[0].name, kv[0].incarnation)
    ):
        members = ", ".join(str(m) for m in view)
        print(f"  {proc}: v{version} {{{members}}}")


def main() -> None:
    cluster = MembershipCluster.of_size(5, prefix="node", seed=11, detector="scripted")
    cluster.start()
    cluster.run(until=5.0)

    majority = ["node0", "node1", "node2"]
    minority = ["node3", "node4"]

    print("partitioning:", majority, "|", minority)
    cluster.partition(majority, minority)
    # Each side times out on the other.
    for a in majority:
        for b in minority:
            cluster.suspect(a, b, at=10.0)
            cluster.suspect(b, a, at=10.0)
    cluster.run(until=60.0)
    show(cluster, "during the partition")
    print(
        "\nthe minority cannot assemble a majority: node3 blocked "
        "(or quit) without installing anything — safety over availability."
    )

    cluster.heal()
    cluster.settle()
    show(cluster, "after healing")

    print("\nminority members rejoin as new incarnations:")
    for name in minority:
        rejoined = cluster.join(name)
        print("  rejoining:", rejoined)
    cluster.settle()
    show(cluster, "after re-admission")

    report = check_gmp(cluster.trace, cluster.initial_view, check_liveness=False)
    print()
    print(format_report(report))


if __name__ == "__main__":
    main()
