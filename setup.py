"""Setup shim for environments whose setuptools cannot build PEP 517 wheels.

All real metadata lives in pyproject.toml; this file only enables
``pip install -e . --no-use-pep517`` on toolchains without the ``wheel``
package.
"""

from setuptools import setup

setup()
