"""E18 (extension) — failure-detector quality vs. membership churn.

The paper's central observation is that in an asynchronous system failure
is only ever *perceived*: "a transient event could prevent a live process
from sending or receiving messages, giving rise to spurious failure
'detections'".  The protocol is proven safe under any detector; this
experiment quantifies the *operational* trade-off the detector's timeout
creates:

* an aggressive timeout detects real crashes fast but wrongfully excludes
  slow-but-live members (who must then rejoin as new incarnations);
* a conservative timeout never errs but leaves dead members in the view
  for longer.

Safety (GMP) holds at every point of the sweep — that is the paper's
theorem; the curve below is the price sheet for choosing a detector.
"""

from __future__ import annotations

from repro.core.service import MembershipCluster
from repro.properties import check_gmp
from repro.sim.network import UniformDelay

from conftest import record_rows

#: network delays: usually ~1, with a heavy tail up to 6 time units.
DELAYS = UniformDelay(0.5, 6.0)
TIMEOUTS = [4.0, 5.0, 6.0, 12.0]
QUIET_SEEDS = range(8)


def wrongful_exclusions(timeout: float, seed: int) -> tuple[int, bool]:
    """Run a *crash-free* group; count live members wrongfully excluded."""
    cluster = MembershipCluster.of_size(
        6,
        seed=seed,
        detector="heartbeat",
        heartbeat_period=2.0,
        heartbeat_timeout=timeout,
        delay_model=DELAYS,
    )
    cluster.start()
    cluster.run(until=300.0, max_events=2_000_000)
    report = check_gmp(cluster.trace, cluster.initial_view, check_liveness=False)
    wrongful = sum(1 for m in cluster.members.values() if m.quit)
    return wrongful, report.ok


def crash_detection_latency(timeout: float, seed: int) -> float:
    """Time from a real crash to agreement among survivors."""
    cluster = MembershipCluster.of_size(
        5,
        seed=seed,
        detector="heartbeat",
        heartbeat_period=2.0,
        heartbeat_timeout=timeout,
        delay_model=UniformDelay(0.5, 2.0),  # healthy network for this leg
    )
    cluster.start()
    cluster.crash("p4", at=50.0)
    cluster.run(until=51.0)
    cluster.run_until_agreement(until=2_000.0, max_events=2_000_000)
    return cluster.scheduler.now - 50.0


def test_timeout_tradeoff(benchmark):
    def run():
        results = {}
        for timeout in TIMEOUTS:
            wrongful_total = 0
            all_safe = True
            for seed in QUIET_SEEDS:
                wrongful, safe = wrongful_exclusions(timeout, seed)
                wrongful_total += wrongful
                all_safe &= safe
            latency = crash_detection_latency(timeout, seed=1)
            results[timeout] = (wrongful_total, all_safe, latency)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for timeout, (wrongful, safe, latency) in sorted(results.items()):
        rows.append(
            f"  timeout={timeout:5.1f}   wrongful exclusions: {wrongful:2d} "
            f"across {len(QUIET_SEEDS)} quiet runs   "
            f"real-crash detection latency: {latency:6.1f}   GMP: "
            f"{'PASS' if safe else 'FAIL'}"
        )
        assert safe  # the theorem: safety at every operating point
    # The trade-off shape: aggressive timeouts err, conservative ones don't…
    assert results[TIMEOUTS[0]][0] > 0
    assert results[TIMEOUTS[-1]][0] == 0
    # …and detection latency grows with the timeout.
    assert results[TIMEOUTS[-1]][2] > results[TIMEOUTS[0]][2]
    record_rows(
        benchmark,
        "E18: detector timeout vs wrongful exclusions vs detection latency "
        "(delays U(0.5, 6.0), heartbeat every 2)",
        "  timeout | wrongful exclusions (8 quiet runs) | crash latency | safety",
        rows,
    )
