"""E18 (extension) — failure-detector quality vs. membership churn.

The paper's central observation is that in an asynchronous system failure
is only ever *perceived*: "a transient event could prevent a live process
from sending or receiving messages, giving rise to spurious failure
'detections'".  The protocol is proven safe under any detector; this
experiment quantifies the *operational* trade-off the detector's timeout
creates:

* an aggressive timeout detects real crashes fast but wrongfully excludes
  slow-but-live members (who must then rejoin as new incarnations);
* a conservative timeout never errs but leaves dead members in the view
  for longer.

Safety (GMP) holds at every point of the sweep — that is the paper's
theorem; the curve below is the price sheet for choosing a detector.

Two experiments live here:

* ``test_timeout_tradeoff`` — the original E18 sweep over heartbeat
  timeouts (wrongful exclusions vs detection latency at one group size);
* ``test_detector_qos_matrix`` — the head-to-head matrix (E20): heartbeat
  vs SWIM vs Lifeguard on detection latency, false positives and
  msgs/process/round under the crash-only and slow-flaky chaos plans of
  :mod:`repro.workloads.qos`.  This is the same matrix ``repro bench
  --detectors`` commits to ``BENCH_results.json`` (docs/DETECTORS.md
  explains how to read it), shrunk to benchmark-friendly sizes, with the
  O(1)-message and fewer-false-positive claims asserted as shape.
"""

from __future__ import annotations

from repro.core.service import MembershipCluster
from repro.properties import check_gmp
from repro.runner.bench import check_detector_qos
from repro.sim.network import UniformDelay
from repro.workloads.qos import detector_qos_cell

from conftest import record_rows

#: network delays: usually ~1, with a heavy tail up to 6 time units.
DELAYS = UniformDelay(0.5, 6.0)
TIMEOUTS = [4.0, 5.0, 6.0, 12.0]
QUIET_SEEDS = range(8)


def wrongful_exclusions(timeout: float, seed: int) -> tuple[int, bool]:
    """Run a *crash-free* group; count live members wrongfully excluded."""
    cluster = MembershipCluster.of_size(
        6,
        seed=seed,
        detector="heartbeat",
        heartbeat_period=2.0,
        heartbeat_timeout=timeout,
        delay_model=DELAYS,
    )
    cluster.start()
    cluster.run(until=300.0, max_events=2_000_000)
    report = check_gmp(cluster.trace, cluster.initial_view, check_liveness=False)
    wrongful = sum(1 for m in cluster.members.values() if m.quit)
    return wrongful, report.ok


def crash_detection_latency(timeout: float, seed: int) -> float:
    """Time from a real crash to agreement among survivors."""
    cluster = MembershipCluster.of_size(
        5,
        seed=seed,
        detector="heartbeat",
        heartbeat_period=2.0,
        heartbeat_timeout=timeout,
        delay_model=UniformDelay(0.5, 2.0),  # healthy network for this leg
    )
    cluster.start()
    cluster.crash("p4", at=50.0)
    cluster.run(until=51.0)
    cluster.run_until_agreement(until=2_000.0, max_events=2_000_000)
    return cluster.scheduler.now - 50.0


def test_timeout_tradeoff(benchmark):
    def run():
        results = {}
        for timeout in TIMEOUTS:
            wrongful_total = 0
            all_safe = True
            for seed in QUIET_SEEDS:
                wrongful, safe = wrongful_exclusions(timeout, seed)
                wrongful_total += wrongful
                all_safe &= safe
            latency = crash_detection_latency(timeout, seed=1)
            results[timeout] = (wrongful_total, all_safe, latency)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for timeout, (wrongful, safe, latency) in sorted(results.items()):
        rows.append(
            f"  timeout={timeout:5.1f}   wrongful exclusions: {wrongful:2d} "
            f"across {len(QUIET_SEEDS)} quiet runs   "
            f"real-crash detection latency: {latency:6.1f}   GMP: "
            f"{'PASS' if safe else 'FAIL'}"
        )
        assert safe  # the theorem: safety at every operating point
    # The trade-off shape: aggressive timeouts err, conservative ones don't…
    assert results[TIMEOUTS[0]][0] > 0
    assert results[TIMEOUTS[-1]][0] == 0
    # …and detection latency grows with the timeout.
    assert results[TIMEOUTS[-1]][2] > results[TIMEOUTS[0]][2]
    record_rows(
        benchmark,
        "E18: detector timeout vs wrongful exclusions vs detection latency "
        "(delays U(0.5, 6.0), heartbeat every 2)",
        "  timeout | wrongful exclusions (8 quiet runs) | crash latency | safety",
        rows,
    )


# --------------------------------------------------------------- E20: matrix

#: benchmark-friendly shrink of the BENCH_results.json matrix — heartbeat's
#: O(n^2) traffic makes its large cells the expensive ones, so it stops at
#: n=60 while the SWIM family demonstrates flatness over a 5x size range.
MATRIX_SIZES = {"heartbeat": [30, 60], "swim": [30, 60, 150], "lifeguard": [30, 60, 150]}
MATRIX_PLANS = ("crash-only", "slow-flaky")
MATRIX_SEED = 1


def test_detector_qos_matrix(benchmark):
    def run():
        return [
            detector_qos_cell(kind, n, plan=plan, seed=MATRIX_SEED)
            for plan in MATRIX_PLANS
            for kind, sizes in MATRIX_SIZES.items()
            for n in sizes
        ]

    cells = benchmark.pedantic(run, rounds=1, iterations=1)
    by = {(c["kind"], c["n"], c["plan"]): c for c in cells}

    def ppr(kind, n, plan="crash-only"):
        return by[(kind, n, plan)]["msgs_per_process_per_round"]

    # Heartbeat's per-process load grows ~n (it pings its whole view)…
    assert ppr("heartbeat", 60) > 1.7 * ppr("heartbeat", 30)
    # …while SWIM stays O(1) over a 5x size range, far below heartbeat.
    assert ppr("swim", 150) < 2.0 * ppr("swim", 30)
    assert ppr("swim", 60) < ppr("heartbeat", 60) / 10
    # Every real crash is detected on the healthy plan, with zero false
    # positives; under slow-flaky, Lifeguard's LHM pays off vs plain SWIM.
    for kind, sizes in MATRIX_SIZES.items():
        for n in sizes:
            cell = by[(kind, n, "crash-only")]
            assert cell["detection"]["detected"] == cell["detection"]["victims"]
            assert cell["false_positives"]["distinct_targets"] == 0
    for n in MATRIX_SIZES["lifeguard"]:
        assert (
            by[("lifeguard", n, "slow-flaky")]["false_positives"]["distinct_targets"]
            <= by[("swim", n, "slow-flaky")]["false_positives"]["distinct_targets"]
        )
    # The committed-matrix gate agrees with the shape assertions above.
    assert check_detector_qos({"detectors": {"cells": cells}}) == []

    rows = [
        f"  {c['plan']:<11} {c['kind']:<10} n={c['n']:<4} "
        f"{c['msgs_per_process_per_round']:>7.2f} msg/proc/round   "
        f"latency "
        + (
            f"{c['detection']['mean_latency']:6.1f}"
            if c["detection"]["mean_latency"] is not None
            else "  MISS"
        )
        + f"   false positives: {c['false_positives']['distinct_targets']}"
        for c in cells
    ]
    record_rows(
        benchmark,
        "E20: detector QoS matrix — heartbeat vs SWIM vs Lifeguard "
        f"(seed={MATRIX_SEED}, 25 probe rounds)",
        "  plan | detector | n | msgs/proc/round | detection latency | false pos",
        rows,
    )
