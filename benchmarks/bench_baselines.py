"""E9 — message-cost comparison against the related protocols (§1, §8).

"Bruso's solution is symmetric and requires an order of magnitude more
messages in all situations"; Moser et al. assume an underlying
fault-tolerant atomic broadcast whose ordering/stability traffic the
paper's protocol avoids; "our solution is an order of magnitude cheaper
than ([15], [5])".

One exclusion per protocol, swept over group sizes.
"""

from __future__ import annotations

from repro.analysis import breakdown, two_phase_update_messages
from repro.baselines import AbcastMember, SymmetricMember

from conftest import assert_safe, record_rows, single_failure_run

SIZES = [4, 6, 8, 12, 16, 24]


def test_single_exclusion_cost_comparison(benchmark):
    def run():
        results = {}
        for n in SIZES:
            ours = single_failure_run(n)
            symmetric = single_failure_run(n, member_class=SymmetricMember)
            abcast = single_failure_run(n, member_class=AbcastMember)
            for cluster in (ours, symmetric, abcast):
                assert_safe(cluster)
            results[n] = (
                breakdown(ours.trace).algorithm,
                breakdown(symmetric.trace).algorithm,
                breakdown(abcast.trace).algorithm,
            )
        return results

    results = benchmark(run)
    rows = []
    for n in SIZES:
        ours, symmetric, abcast = results[n]
        rows.append(
            f"  n={n:3d}   GMP = {ours:4d} (paper 3n-5 = {two_phase_update_messages(n):4d})   "
            f"symmetric = {symmetric:5d} ({symmetric / ours:4.1f}x)   "
            f"abcast = {abcast:5d} ({abcast / ours:4.1f}x)"
        )
        assert ours == two_phase_update_messages(n)
        assert symmetric > ours and abcast > ours
        if n >= 8:  # the gap opens as n grows (both baselines are O(n^2))
            assert symmetric > 3 * ours
            assert abcast > 2 * ours
    # "Order of magnitude" materialises as n grows.
    ours24, symmetric24, abcast24 = results[24]
    assert symmetric24 >= 10 * ours24
    record_rows(
        benchmark,
        "E9 (§1/§8): one exclusion — GMP vs symmetric (Bruso) vs abcast (Moser)",
        "  group size | GMP | symmetric | atomic-broadcast",
        rows,
    )


def test_quadratic_vs_linear_scaling(benchmark):
    """The baselines scale quadratically; GMP scales linearly."""

    def run():
        out = {}
        for n in (6, 12, 24):
            out[n] = (
                breakdown(single_failure_run(n).trace).algorithm,
                breakdown(
                    single_failure_run(n, member_class=SymmetricMember).trace
                ).algorithm,
            )
        return out

    results = benchmark(run)
    ours6, sym6 = results[6]
    ours24, sym24 = results[24]
    ratio_ours = ours24 / ours6
    ratio_sym = sym24 / sym6
    rows = [
        f"  GMP:       cost(24)/cost(6) = {ratio_ours:4.1f}  (linear predicts ~4)",
        f"  symmetric: cost(24)/cost(6) = {ratio_sym:4.1f}  (quadratic predicts ~16)",
    ]
    assert ratio_ours < 6
    assert ratio_sym > 10
    record_rows(
        benchmark,
        "E9b: scaling exponents",
        "  protocol | growth from n=6 to n=24",
        rows,
    )
