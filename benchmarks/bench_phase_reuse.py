"""E16 (the paper's §8 future work) — reconfiguration phase reuse.

"Similar to the way we compressed the update algorithm, we would pare down
required communication when failures of reconfiguration initiators are
continuous."  Implemented as
:attr:`repro.core.member.GMPMember.reuse_phases`: a reconfigurer whose
Phase I responses prove a dead predecessor's proposal already reached a
majority inherits that phase and commits directly.

Benchmarked as an ablation: the initiator-cascade workload with the
optimisation off vs on.
"""

from __future__ import annotations

from repro.analysis import breakdown
from repro.core.service import MembershipCluster
from repro.model.events import EventKind
from repro.sim.failures import crash_after_matching_sends, payload_type_is
from repro.sim.network import FixedDelay

from conftest import assert_safe, record_rows


def run_cascade(n: int, reuse: bool) -> tuple[int, int, int]:
    """p0 crashes; the first reconfigurer dies right after proposing.
    Returns (protocol messages, reuse events, casualties)."""
    cluster = MembershipCluster.of_size(
        n,
        seed=0,
        delay_model=FixedDelay(1.0),
        member_kwargs={"reuse_phases": reuse},
    )
    crash_after_matching_sends(
        cluster.network,
        cluster.resolve("p1"),
        payload_type_is("Propose"),
        after=n - 1,
        detail="initiator dies after proposing",
    )
    cluster.start()
    cluster.crash("p0", at=5.0)
    cluster.settle(max_events=1_000_000)
    assert_safe(cluster)
    reuses = sum(
        1
        for e in cluster.trace.events_of_kind(EventKind.INTERNAL)
        if e.detail.startswith("reusing predecessor's proposal phase")
    )
    return breakdown(cluster.trace).algorithm, reuses, len(cluster.trace.crashed())


def test_phase_reuse_ablation(benchmark):
    def run():
        return {
            n: (run_cascade(n, reuse=False), run_cascade(n, reuse=True))
            for n in (6, 8, 12, 16)
        }

    results = benchmark(run)
    rows = []
    for n, ((plain_cost, _, plain_dead), (opt_cost, reuses, opt_dead)) in sorted(
        results.items()
    ):
        saved = plain_cost - opt_cost
        rows.append(
            f"  n={n:3d}   off: {plain_cost:4d} msgs, {plain_dead} dead   "
            f"on: {opt_cost:4d} msgs, {opt_dead} dead   "
            f"saved {saved:3d} msgs via {reuses} inheritance(s)"
        )
        assert reuses >= 1
        assert opt_cost < plain_cost
        # The successor inherits instead of re-proposing: it also dodges
        # its own propose-time death trigger — fewer casualties.
        assert opt_dead <= plain_dead
    record_rows(
        benchmark,
        "E16 (§8 future work): reconfiguration phase reuse, off vs on",
        "  group size | unoptimised | optimised",
        rows,
    )
