"""E6/E7 — the optimality results of §7.3 (Claims 7.1 and 7.2).

* Claim 7.1: a one-phase update algorithm cannot solve GMP when the
  coordinator can fail.  We run the claim's R/S split against the one-phase
  strawman (GMP-3 violated) and against the real protocol (safe).
* Claim 7.2: a two-phase reconfiguration cannot determine which of two
  competing proposals was committed invisibly.  We run the Figure 11
  schedule against the two-phase strawman (GMP-3 violated) and the real
  three-phase protocol (safe, with GetStable demonstrably disambiguating
  two candidate proposals).
"""

from __future__ import annotations

from repro.baselines import OnePhaseMember, TwoPhaseReconfigMember
from repro.model.events import EventKind
from repro.properties import check_gmp
from repro.workloads.scenarios import run_claim71, run_figure11

from conftest import record_rows


def test_one_phase_violates_claim71(benchmark):
    def run():
        strawman = run_claim71(member_class=OnePhaseMember)
        real = run_claim71()
        return (
            check_gmp(strawman.trace, strawman.initial_view, check_liveness=False),
            check_gmp(real.trace, real.initial_view, check_liveness=False),
        )

    strawman_report, real_report = benchmark(run)
    assert strawman_report.violated("GMP-3")
    assert real_report.ok
    record_rows(
        benchmark,
        "E6 (Claim 7.1): one-phase update under the R/S split",
        "  protocol | verdict",
        [
            f"  one-phase strawman | GMP-3 VIOLATED "
            f"({len(strawman_report.violations)} divergent installs)",
            "  three-phase GMP    | safe (blocks pending further detection; "
            "no view installed without a majority)",
        ],
    )


def test_two_phase_reconfig_violates_claim72(benchmark):
    def run():
        strawman = run_figure11(member_class=TwoPhaseReconfigMember, strawman=True)
        real = run_figure11()
        return (
            check_gmp(strawman.trace, strawman.initial_view, check_liveness=False),
            check_gmp(real.trace, real.initial_view, check_liveness=True),
            real,
        )

    strawman_report, real_report, real = benchmark(run)
    assert strawman_report.violated("GMP-3")
    assert real_report.ok
    # The real protocol's later reconfigurer provably faced two proposals
    # and chose the junior proposer's (Proposition 5.6 / GetStable).
    determinations = [
        e.detail
        for e in real.trace.events_of_kind(EventKind.INTERNAL)
        if e.proc.name == "e" and e.detail.startswith("determined")
    ]
    assert determinations and "candidates=2" in determinations[0]
    survivor = real.live_members()[0]
    assert str(survivor.state.seq[0]) == "remove(m)"
    record_rows(
        benchmark,
        "E7 (Claim 7.2 / Figure 11): invisible-commit disambiguation",
        "  protocol | verdict",
        [
            "  two-phase strawman  | GMP-3 VIOLATED (guessed the senior "
            "proposer's plan; diverged from the witness)",
            "  three-phase GMP     | safe — GetStable faced 2 candidates and "
            "propagated the junior proposer's remove(m)",
        ],
    )
