"""T1 — Table 1 of §4.2: the reconfiguration-initiation matrix.

Reproduces all four rows (p's actual state × q's belief about p) and checks
which processes initiate reconfiguration, exactly as the table lists:

    p up,     q thinks p up      ->  q: No          p: Yes
    p failed, q thinks p up      ->  q: Eventually  p: No
    p up,     q thinks p failed  ->  q: Yes         p: Yes
    p failed, q thinks p failed  ->  q: Yes         p: No
"""

from __future__ import annotations

from repro.model.events import EventKind
from repro.workloads.scenarios import TABLE1_EXPECTED, initiators_of, run_table1_row

from conftest import assert_safe, record_rows


def q_initiation_time(cluster) -> float | None:
    for event in cluster.trace.events_of_kind(EventKind.INTERNAL):
        if event.proc.name == "q" and event.detail.startswith(
            "initiating reconfiguration"
        ):
            return event.time
    return None


def test_table1_initiation_matrix(benchmark):
    def run():
        results = []
        for row in TABLE1_EXPECTED:
            cluster = run_table1_row(row)
            results.append(
                (row, initiators_of(cluster), q_initiation_time(cluster), cluster)
            )
        return results

    results = benchmark(run)
    rows = []
    for i, (row, initiators, q_time, cluster) in enumerate(results, start=1):
        assert_safe(cluster)
        p_initiated = "p" in initiators
        q_initiated = "q" in initiators
        assert p_initiated == row.p_initiates
        assert q_initiated == (row.q_initiates in ("yes", "eventually"))
        q_rendered = (
            "no"
            if not q_initiated
            else f"yes (t={q_time:.0f})"
        )
        rows.append(
            f"  row {i}: p {'up    ' if row.p_actually_up else 'failed'} | "
            f"q thinks p {'up    ' if row.q_thinks_p_up else 'failed'} | "
            f"q initiates: {q_rendered:12s} (paper: {row.q_initiates:10s}) | "
            f"p initiates: {str(p_initiated):5s} (paper: {row.p_initiates})"
        )
    # "Eventually" (row 2) means later than the immediate cases (rows 3/4).
    row2_time = results[1][2]
    row4_time = results[3][2]
    assert row2_time is not None and row4_time is not None
    assert row2_time > row4_time
    record_rows(
        benchmark,
        "T1 (Table 1): multiple reconfiguration initiations",
        "  p actual state | q's belief | q initiates | p initiates",
        rows,
    )
