"""E17 (extension) — exhaustive schedule exploration coverage.

Model-checking the implementation: enumerate every FIFO-respecting
interleaving of small failure scenarios and check GMP on each terminal run.
The paper proves safety over all asynchronous schedules; this experiment
*executes* all of them (for configurations small enough to enumerate) over
the real protocol code.
"""

from __future__ import annotations

from repro.verify import explore_membership

from conftest import record_rows


def test_exhaustive_coverage(benchmark):
    def run():
        return {
            "member crash (n=3)": explore_membership(3, crash_names=["p2"]),
            "coordinator crash (n=4)": explore_membership(4, crash_names=["p0"]),
            "crossing spurious suspicions (n=3)": explore_membership(
                3, spurious=[("p1", "p0"), ("p0", "p1")]
            ),
            "gossip-only detection (n=4)": explore_membership(
                4, crash_names=["p3"], observers=["p1"]
            ),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name, result in results.items():
        assert result.complete, f"{name}: exploration should be exhaustive"
        assert result.ok, f"{name}: a schedule violated GMP"
        rows.append(
            f"  {name:38s} {result.terminals:6d} schedules, "
            f"{result.states:6d} states, {len(result.outcomes)} outcome(s) — all safe"
        )
    record_rows(
        benchmark,
        "E17: exhaustive interleaving exploration (every schedule checked)",
        "  scenario | schedules | states | distinct outcomes",
        rows,
    )


def test_bounded_two_failure_coverage(benchmark):
    def run():
        return explore_membership(
            4, crash_names=["p2", "p3"], max_states=25_000
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.ok
    rows = [
        f"  explored {result.states} states / {result.terminals} schedules "
        f"(bounded: complete={result.complete}) — all safe, "
        f"{len(result.outcomes)} outcome(s)"
    ]
    record_rows(
        benchmark,
        "E17b: two concurrent failures, bounded exploration",
        "  coverage",
        rows,
    )
