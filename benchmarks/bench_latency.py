"""E14 (extension) — view-change latency and design ablations.

The paper analyses message complexity, not latency; a downstream adopter
cares about both.  These benchmarks measure, in simulation time units
(1 unit = one network delay), how long an exclusion takes from the *crash
instant* to agreement among survivors, decomposing detector delay from
protocol rounds — and ablate the paper's design choices:

* asymmetric two-phase vs. three-phase reconfiguration cost in *latency*;
* majority mode vs. basic mode;
* compressed vs. uncompressed streaks (latency, complementing E4's counts).
"""

from __future__ import annotations

from repro.core.service import MembershipCluster
from repro.sim.network import FixedDelay

from conftest import assert_safe, record_rows


def time_to_agreement(
    n: int,
    victim: str,
    detector_delay: float = 5.0,
    majority_updates: bool = True,
) -> float:
    cluster = MembershipCluster.of_size(
        n,
        seed=0,
        delay_model=FixedDelay(1.0),
        detector_delay=detector_delay,
        majority_updates=majority_updates,
    )
    cluster.start()
    crash_time = 5.0
    cluster.crash(victim, at=crash_time)
    cluster.run(until=crash_time + 0.01)
    assert cluster.run_until_agreement(until=crash_time + 1000.0)
    assert_safe(cluster)
    return cluster.scheduler.now - crash_time


def test_exclusion_vs_reconfiguration_latency(benchmark):
    """An ordinary exclusion needs 2 protocol rounds; losing the
    coordinator needs detection + 3 reconfiguration phases."""

    def run():
        results = {}
        for n in (4, 8, 16):
            results[n] = (
                time_to_agreement(n, victim=f"p{n - 1}"),
                time_to_agreement(n, victim="p0"),
            )
        return results

    results = benchmark(run)
    rows = []
    for n, (member_lat, mgr_lat) in sorted(results.items()):
        rows.append(
            f"  n={n:3d}   member crash -> agreement: {member_lat:5.1f}   "
            f"coordinator crash -> agreement: {mgr_lat:5.1f}"
        )
        # Both are detector (5.0) + a constant number of 1.0-delay rounds:
        # flat in n (the protocol has no sequential per-member phase).
        assert member_lat < mgr_lat  # three phases cost more than two
        assert mgr_lat < 25.0
    # Latency must not grow with group size (rounds are broadcasts).
    assert abs(results[16][0] - results[4][0]) < 2.0
    record_rows(
        benchmark,
        "E14: crash-to-agreement latency (time units; delay=1, detector=5)",
        "  group size | member exclusion | coordinator reconfiguration",
        rows,
    )


def test_detector_delay_dominates_latency(benchmark):
    """Ablation: the failure detector, not the protocol, sets the floor —
    the paper's 'we are not concerned with the mechanism' is quantified."""

    def run():
        return {
            d: time_to_agreement(6, victim="p5", detector_delay=d)
            for d in (2.0, 5.0, 10.0, 20.0)
        }

    results = benchmark(run)
    rows = []
    protocol_part = None
    for delay, latency in sorted(results.items()):
        protocol_part = latency - delay
        rows.append(
            f"  detector delay {delay:5.1f} -> agreement in {latency:5.1f} "
            f"(protocol part: {protocol_part:4.1f})"
        )
    # The protocol part is a small constant; detection dominates.
    parts = [lat - d for d, lat in results.items()]
    assert max(parts) - min(parts) < 1.5
    assert max(parts) < 8.0
    record_rows(
        benchmark,
        "E14b: detector delay vs protocol rounds in total latency",
        "  detector delay | total latency | protocol-only part",
        rows,
    )


def test_majority_mode_latency_ablation(benchmark):
    """Ablation: the majority rule costs nothing in latency on clean runs —
    its price is availability under majority loss (E10), not speed."""

    def run():
        return {
            mode: time_to_agreement(8, victim="p7", majority_updates=mode)
            for mode in (True, False)
        }

    results = benchmark(run)
    rows = [
        f"  majority rule ON : {results[True]:5.1f}",
        f"  majority rule OFF: {results[False]:5.1f}",
    ]
    assert abs(results[True] - results[False]) < 0.5
    record_rows(
        benchmark,
        "E14c: majority-rule latency ablation (single failure, 8 members)",
        "  mode | crash-to-agreement",
        rows,
    )
