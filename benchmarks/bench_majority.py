"""E12 — Figure 4: the majority requirement makes reconfiguration unique.

Two concurrent reconfigurers with crossing suspicions: the majority rule
must allow at most one of them to install a view (GMP-2's uniqueness).
We run the Figure 4 schedule, plus a partitioned variant in which *neither*
side holds a majority — then nobody may install anything.
"""

from __future__ import annotations

from repro.core.service import MembershipCluster
from repro.model.events import EventKind
from repro.sim.network import FixedDelay
from repro.workloads.scenarios import initiators_of, run_figure4

from conftest import assert_safe, record_rows


def test_concurrent_reconfigurers_unique_view(benchmark):
    cluster = benchmark(run_figure4)
    assert_safe(cluster)
    assert initiators_of(cluster) == {"q", "r"}
    # Exactly one process assumed the coordinator role per view transition:
    # all surviving members agree on the final coordinator.
    coordinators = {
        m.state.mgr.name for m in cluster.live_members() if m.state is not None
    }
    assert len(coordinators) == 1
    installs_v1 = {
        e.view
        for e in cluster.trace.events_of_kind(EventKind.INSTALL)
        if e.version == 1
    }
    assert len(installs_v1) == 1  # GMP-2: version 1 is unique
    record_rows(
        benchmark,
        "E12 (Figure 4): two concurrent reconfigurers",
        "  metric | value",
        [
            f"  initiators:      q and r (both)",
            f"  version 1 views: {len(installs_v1)} (unique)",
            f"  final coordinator: {coordinators.pop()}",
        ],
    )


def test_no_majority_no_view(benchmark):
    """Split 3/3: neither side can reconfigure — both block, safely."""

    def run():
        cluster = MembershipCluster.of_size(
            6, seed=0, detector="scripted", delay_model=FixedDelay(1.0)
        )
        cluster.start()
        side_a = ["p0", "p2", "p4"]
        side_b = ["p1", "p3", "p5"]
        for a in side_a:
            for b in side_b:
                cluster.suspect(a, b, at=5.0)
                cluster.suspect(b, a, at=5.0)
        cluster.settle(max_events=1_000_000)
        return cluster

    cluster = benchmark(run)
    assert_safe(cluster)
    for _, (version, _) in cluster.views().items():
        assert version == 0
    record_rows(
        benchmark,
        "E12b (§4.3): symmetric 3/3 split — no majority anywhere",
        "  outcome",
        ["  no view installed by either side; safety preserved (blocked)"],
    )


def test_majority_side_of_partition_wins(benchmark):
    """A 4/2 belief split: only the 4-side can install views."""

    def run():
        cluster = MembershipCluster.of_size(
            6, seed=0, detector="scripted", delay_model=FixedDelay(1.0)
        )
        cluster.start()
        majority = ["p0", "p1", "p2", "p3"]
        minority = ["p4", "p5"]
        for a in majority:
            for b in minority:
                cluster.suspect(a, b, at=5.0)
                cluster.suspect(b, a, at=5.0)
        cluster.settle(max_events=1_000_000)
        return cluster

    cluster = benchmark(run)
    assert_safe(cluster)
    views = {
        p.name: (version, tuple(m.name for m in view))
        for p, (version, view) in cluster.views().items()
    }
    # The majority side excluded the minority...
    for name in ("p0", "p1", "p2", "p3"):
        if name in views:
            version, view = views[name]
            assert version == 2 and set(view) == {"p0", "p1", "p2", "p3"}
    # ...and the minority side installed nothing.
    for name in ("p4", "p5"):
        if name in views:
            version, _ = views[name]
            assert version == 0
    record_rows(
        benchmark,
        "E12c: 4/2 split — only the majority side proceeds",
        "  side | outcome",
        [
            "  majority {p0..p3} | installed versions 1-2, excluded p4, p5",
            "  minority {p4, p5} | blocked at version 0",
        ],
    )
