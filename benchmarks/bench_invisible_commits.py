"""E8 — Figure 3: the coordinator dies mid-commit; reconfiguration restores.

"If Mgr fails in the middle of an update commit broadcast no system view
will exist" — we sweep how many members the truncated commit reached (0 of
the scenario is unreachable: the first send defines 1) and verify that in
every case the reconfiguration detects the possibly-invisible commit,
completes the interrupted version identically, and re-establishes a unique
system view (GMP-2/GMP-3).
"""

from __future__ import annotations

from repro.model.events import EventKind
from repro.properties import check_gmp, format_report
from repro.workloads.scenarios import run_figure3

from conftest import record_rows

GROUP = 6


def test_interrupted_commit_sweep(benchmark):
    def run():
        results = {}
        for reached in range(1, GROUP - 1):
            cluster = run_figure3(n=GROUP, commit_sends_before_crash=reached)
            report = check_gmp(cluster.trace, cluster.initial_view)
            results[reached] = (cluster, report)
        return results

    results = benchmark(run)
    rows = []
    final_views = set()
    for reached, (cluster, report) in sorted(results.items()):
        assert report.ok, format_report(report)
        # Who actually installed version 1 from the dying coordinator?
        early = sorted(
            e.proc.name
            for e in cluster.trace.events_of_kind(EventKind.INSTALL)
            if e.version == 1 and e.time < 12.0 and e.proc.name != "p0"
        )
        final = tuple(m.name for m in cluster.agreed_view())
        final_views.add(final)
        rows.append(
            f"  commit reached {reached} member(s) "
            f"(early installers: {early or ['none']}) -> final view {list(final)}, "
            f"GMP: PASS"
        )
    # However far the commit got, the run converges to the same final view.
    assert len(final_views) == 1
    record_rows(
        benchmark,
        "E8 (Figure 3): Mgr crash mid-commit, swept over crash points",
        "  crash point | early installers | outcome",
        rows,
    )


def test_interrupted_version_completed_identically(benchmark):
    """The version the dying coordinator partially committed is completed
    with the *same* operation by the reconfigurer (stably-defined proposals
    are unique, Corollary 5.2)."""

    def run():
        clusters = [
            run_figure3(n=GROUP, commit_sends_before_crash=k)
            for k in range(1, GROUP - 1)
        ]
        return clusters

    clusters = benchmark(run)
    rows = []
    for k, cluster in enumerate(clusters, start=1):
        version1 = {
            e.view
            for e in cluster.trace.events_of_kind(EventKind.INSTALL)
            if e.version == 1
        }
        assert len(version1) == 1  # every install of v1 is identical
        rows.append(
            f"  crash after {k} send(s): version 1 unique across "
            f"{sum(1 for e in cluster.trace.events_of_kind(EventKind.INSTALL) if e.version == 1)} installers"
        )
    record_rows(
        benchmark,
        "E8b (Corollary 5.2): interrupted versions complete identically",
        "  crash point | uniqueness of version 1",
        rows,
    )
