"""Shared helpers for the benchmark harness.

Every benchmark reproduces one table/figure/claim from the paper (see
DESIGN.md §3 for the experiment index and EXPERIMENTS.md for recorded
results).  Conventions:

* each benchmark runs the scenario via the ``benchmark`` fixture (so
  ``pytest benchmarks/ --benchmark-only`` times it) and asserts the *shape*
  of the paper's claim;
* measured quantities are attached to ``benchmark.extra_info`` and printed,
  so a benchmark run regenerates the paper-vs-measured rows.
"""

from __future__ import annotations

from repro.core.service import MembershipCluster
from repro.properties import check_gmp, format_report
from repro.sim.network import FixedDelay


def single_failure_run(
    n: int, seed: int = 0, member_class=None, victim: str | None = None
) -> MembershipCluster:
    """One crash of a junior member in a group of size n, fixed delays."""
    kwargs = {} if member_class is None else {"member_class": member_class}
    cluster = MembershipCluster.of_size(
        n, seed=seed, delay_model=FixedDelay(1.0), **kwargs
    )
    cluster.start()
    cluster.crash(victim or f"p{n - 1}", at=5.0)
    cluster.settle()
    return cluster


def coordinator_failure_run(n: int, seed: int = 0) -> MembershipCluster:
    """Crash the coordinator: one full reconfiguration."""
    cluster = MembershipCluster.of_size(n, seed=seed, delay_model=FixedDelay(1.0))
    cluster.start()
    cluster.crash("p0", at=5.0)
    cluster.settle()
    return cluster


def assert_safe(cluster: MembershipCluster, liveness: bool = False) -> None:
    report = check_gmp(cluster.trace, cluster.initial_view, check_liveness=liveness)
    assert report.ok, format_report(report)


def record_rows(benchmark, title: str, header: str, rows: list[str]) -> None:
    """Attach a rendered table to the benchmark and print it."""
    table = "\n".join([title, header] + rows)
    benchmark.extra_info["table"] = table
    print("\n" + table)
