"""Shared helpers for the benchmark harness.

Every benchmark reproduces one table/figure/claim from the paper (see
DESIGN.md §3 for the experiment index and EXPERIMENTS.md for recorded
results).  Conventions:

* each benchmark runs the scenario via the ``benchmark`` fixture (so
  ``pytest benchmarks/ --benchmark-only`` times it) and asserts the *shape*
  of the paper's claim;
* measured quantities are attached to ``benchmark.extra_info`` and printed,
  so a benchmark run regenerates the paper-vs-measured rows.
"""

from __future__ import annotations

from repro.core.service import MembershipCluster
from repro.properties import check_gmp, format_report
from repro.workloads.failures import (  # noqa: F401  (re-exported to benchmarks)
    coordinator_failure_run,
    single_failure_run,
)


def assert_safe(cluster: MembershipCluster, liveness: bool = False) -> None:
    report = check_gmp(cluster.trace, cluster.initial_view, check_liveness=liveness)
    assert report.ok, format_report(report)


def record_rows(benchmark, title: str, header: str, rows: list[str]) -> None:
    """Attach a rendered table to the benchmark and print it."""
    table = "\n".join([title, header] + rows)
    benchmark.extra_info["table"] = table
    print("\n" + table)
