"""E4 — §7.2's streak analysis: n-1 successive exclusions.

Paper claims: with the compressed algorithm, excluding n-1 members one
after another ("none of which are Mgr") costs about ``(n-1)^2`` messages in
total — an average of ``n-1`` per exclusion — where the plain two-phase
algorithm would pay roughly ``n/2 - 1`` more per exclusion.

The paper's count assumes every remaining member answers every round, so
the victims are *suspected while still operational* (a stream of exclusion
requests, the setting of Section 3.1's basic algorithm — each quits upon
meeting its own removal).  We stagger one suspicion per round at the
coordinator, which chains every exclusion through the compressed path, and
compare the measured totals to ``(n-1)^2`` and to the plain two-phase sum.
"""

from __future__ import annotations

from repro.analysis import breakdown, compressed_streak_total, standard_streak_total
from repro.core.service import MembershipCluster
from repro.sim.network import FixedDelay

from conftest import assert_safe, record_rows

SIZES = [4, 6, 8, 12, 16]


def run_streak(n: int, compressed: bool = True) -> int:
    """Exclude p{n-1}..p1 one at a time; return protocol message count.

    ``compressed=True`` staggers suspicions one per round so each commit
    carries the next invitation; ``compressed=False`` spaces them far apart
    so every exclusion pays for a full two-phase round.
    """
    cluster = MembershipCluster.of_size(
        n,
        seed=0,
        delay_model=FixedDelay(1.0),
        detector="scripted",
        majority_updates=False,  # §3.1 basic algorithm, as in the analysis
    )
    cluster.start()
    spacing = 2.0 if compressed else 50.0
    for k, victim in enumerate(f"p{i}" for i in range(n - 1, 0, -1)):
        cluster.suspect("p0", victim, at=5.0 + spacing * k + (0.5 if k else 0.0))
    cluster.settle()
    assert_safe(cluster)
    assert [m.name for m in cluster.agreed_view()] == ["p0"]
    return breakdown(cluster.trace).algorithm


def test_compressed_streak(benchmark):
    measured = benchmark(lambda: {n: run_streak(n) for n in SIZES})
    rows = []
    for n in SIZES:
        paper = compressed_streak_total(n)
        standard = standard_streak_total(n)
        avg = measured[n] / (n - 1)
        rows.append(
            f"  n={n:3d}   paper (n-1)^2 = {paper:4d}   measured = {measured[n]:4d} "
            f"(avg {avg:5.1f}/exclusion)   plain two-phase sum = {standard:4d}"
        )
        # Shape claims: the streak total tracks (n-1)^2 (within one
        # broadcast width per round) and clearly beats the plain sum.
        assert abs(measured[n] - paper) <= 2 * n
        assert measured[n] < standard
    record_rows(
        benchmark,
        "E4 (§7.2): n-1 successive exclusions via the compressed algorithm",
        "  group size | paper compressed total | measured | plain total",
        rows,
    )


def test_plain_streak_costs_more(benchmark):
    """Spacing the failures out disables compression; the same workload
    then costs the full two-phase sum, about n/2 - 1 more per exclusion."""

    def run():
        return {
            n: (run_streak(n, compressed=True), run_streak(n, compressed=False))
            for n in SIZES
        }

    measured = benchmark(run)
    rows = []
    for n in SIZES:
        fast, slow = measured[n]
        saving = (slow - fast) / (n - 1)
        rows.append(
            f"  n={n:3d}   compressed = {fast:4d}   plain = {slow:4d}   "
            f"saving/exclusion = {saving:5.2f}   paper ~ n/2 - 1 = {n / 2 - 1:5.2f}"
        )
        assert slow > fast
        assert saving >= n / 2 - 2.5
    record_rows(
        benchmark,
        "E4b (§7.2): per-exclusion saving of compression",
        "  group size | compressed total | plain total | measured saving | paper",
        rows,
    )
