"""E13 — the Appendix's epistemic results, checked over traces.

* With a surviving coordinator, the composition of every installed view is
  *concurrent common knowledge* along its install cut (each member receives
  the commit from one committer in one indivisible broadcast, so the cut is
  locally distinguishable).
* When the coordinator dies mid-commit, the interrupted version loses that
  status — only the hindsight chain ``K_p \\bar{\\Diamond} IsSysView(x-1)``
  (Equation 4) survives — and the first stably recommitted version regains
  it.
"""

from __future__ import annotations

from repro.model.knowledge import KnowledgeAnalysis
from repro.workloads.scenarios import run_figure3

from conftest import assert_safe, record_rows, single_failure_run


def test_knowledge_with_surviving_coordinator(benchmark):
    def run():
        cluster = single_failure_run(6)
        return cluster, KnowledgeAnalysis(cluster.trace.events)

    cluster, analysis = benchmark(run)
    assert_safe(cluster)
    assert analysis.view_holds_along_cut(1)
    assert analysis.hindsight_holds()
    assert analysis.common_knowledge_versions() == [1]
    record_rows(
        benchmark,
        "E13 (Appendix): Mgr survives — concurrent common knowledge attained",
        "  version | IsSysView cut | hindsight (Eq. 4) | concurrent common knowledge",
        ["  1       | consistent    | holds             | YES (locally distinguishable)"],
    )


def test_knowledge_with_interrupted_commit(benchmark):
    def run():
        cluster = run_figure3(n=6, commit_sends_before_crash=2)
        return cluster, KnowledgeAnalysis(cluster.trace.events)

    cluster, analysis = benchmark(run)
    assert_safe(cluster)
    # Version 1's installs straddle the dying coordinator's commit and the
    # reconfigurer's re-commit: not one indivisible broadcast.
    assert not analysis.is_locally_distinguishable(1)
    # Hindsight knowledge (Equation 4) still holds for every install.
    assert analysis.hindsight_holds()
    # The stable regime returns: the final version (committed wholly by the
    # new coordinator) is locally distinguishable again.
    common = analysis.common_knowledge_versions()
    final = max(
        view.version
        for seq in analysis._sequences.values()  # noqa: SLF001 - test introspection
        for view in seq
    )
    assert final in common
    rows = [
        "  1 (interrupted) | consistent | holds | NO (two committers)",
        f"  {final} (final)       | consistent | holds | YES",
    ]
    record_rows(
        benchmark,
        "E13b (Appendix): Mgr dies mid-commit — knowledge degrades, then recovers",
        "  version | IsSysView cut | hindsight | concurrent common knowledge",
        rows,
    )


def test_hindsight_chain_depth(benchmark):
    """(E\\Diamond)^y: each install grounds knowledge of ALL previous views
    — verified by checking every hindsight point across a multi-version
    run."""

    def run():
        cluster = single_failure_run(7)
        cluster2 = None
        # Drive three successive versions in one run.
        from repro.core.service import MembershipCluster
        from repro.sim.network import FixedDelay

        cluster2 = MembershipCluster.of_size(7, seed=3, delay_model=FixedDelay(1.0))
        cluster2.start()
        cluster2.crash("p6", at=5.0)
        cluster2.crash("p5", at=40.0)
        cluster2.crash("p4", at=80.0)
        cluster2.settle()
        return cluster2, KnowledgeAnalysis(cluster2.trace.events)

    cluster, analysis = benchmark(run)
    assert_safe(cluster, liveness=True)
    points = analysis.hindsight_points()
    by_version = {}
    for point in points:
        by_version.setdefault(point.version, []).append(point.witnessed)
    rows = []
    for version in sorted(by_version):
        witnessed = all(by_version[version])
        rows.append(
            f"  install of v{version + 1} grounds knowledge of v{version}: "
            f"{'holds' if witnessed else 'FAILS'} "
            f"({len(by_version[version])} installers)"
        )
        assert witnessed
    record_rows(
        benchmark,
        "E13c (Appendix, Eq. 4): hindsight knowledge across versions",
        "  claim | verdict",
        rows,
    )
