"""E1/E2/E3 — the three best-case message-complexity bounds of §7.2.

Paper claims (per view installation in a group of size n):

* plain two-phase update:   at most ``3n - 5`` messages,
* compressed update round:  at most ``2n - 3`` messages,
* one reconfiguration:      at most ``5n - 9`` messages.

Each benchmark sweeps n, measures what the implementation actually sent
(protocol messages, §7.2 accounting — detector and awareness traffic
excluded), and asserts the measured curve tracks the paper's bound.
"""

from __future__ import annotations

from repro.analysis import (
    breakdown,
    compressed_update_messages,
    reconfiguration_messages,
    two_phase_update_messages,
)
from repro.core.service import MembershipCluster
from repro.sim.network import FixedDelay

from conftest import assert_safe, coordinator_failure_run, record_rows, single_failure_run

SIZES = [4, 6, 8, 12, 16, 24, 32]


def test_two_phase_update(benchmark):
    """E1: one exclusion via the plain two-phase algorithm."""

    def run():
        return {n: breakdown(single_failure_run(n).trace).algorithm for n in SIZES}

    measured = benchmark(run)
    rows = []
    for n in SIZES:
        paper = two_phase_update_messages(n)
        rows.append(f"  n={n:3d}   paper 3n-5 = {paper:4d}   measured = {measured[n]:4d}")
        assert measured[n] == paper  # exact match under clean conditions
    record_rows(
        benchmark,
        "E1 (§7.2): plain two-phase exclusion",
        "  group size | paper bound | measured protocol messages",
        rows,
    )


def test_compressed_update(benchmark):
    """E2: the second of two back-to-back exclusions rides the commit.

    Sizes start at 6: two concurrent crashes exceed ``tau`` for n < 5, and
    the paper's streak analysis presumes the failures are tolerable.
    """

    def run():
        results = {}
        for n in [s for s in SIZES if s >= 6]:
            cluster = MembershipCluster.of_size(
                n, seed=1, delay_model=FixedDelay(1.0)
            )
            cluster.start()
            cluster.crash(f"p{n - 1}", at=5.0)
            cluster.crash(f"p{n - 2}", at=5.1)
            cluster.settle()
            assert_safe(cluster)
            total = breakdown(cluster.trace).algorithm
            results[n] = total - two_phase_update_messages(n)
        return results

    measured = benchmark(run)
    rows = []
    for n in sorted(measured):
        paper = compressed_update_messages(n)
        rows.append(f"  n={n:3d}   paper 2n-3 = {paper:4d}   measured = {measured[n]:4d}")
        # The compressed round must beat a plain round of the shrunken view
        # and stay within the paper's bound.
        assert measured[n] <= paper
        assert measured[n] < two_phase_update_messages(n - 1)
    record_rows(
        benchmark,
        "E2 (§7.2): compressed update round (invitation rides the commit)",
        "  group size | paper bound | measured protocol messages",
        rows,
    )


def test_reconfiguration(benchmark):
    """E3: one successful reconfiguration after the coordinator crashes."""

    def run():
        results = {}
        for n in SIZES:
            cluster = coordinator_failure_run(n)
            assert_safe(cluster)
            results[n] = breakdown(cluster.trace).algorithm
        return results

    measured = benchmark(run)
    rows = []
    for n in SIZES:
        paper = reconfiguration_messages(n)
        rows.append(f"  n={n:3d}   paper 5n-9 = {paper:4d}   measured = {measured[n]:4d}")
        # Counting conventions differ by about one broadcast width
        # (DESIGN.md §4); the 5n shape must hold exactly.
        assert abs(measured[n] - paper) <= n
    record_rows(
        benchmark,
        "E3 (§7.2): three-phase reconfiguration",
        "  group size | paper bound | measured protocol messages",
        rows,
    )
