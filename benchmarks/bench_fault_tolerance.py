"""E10 — fault-tolerance boundaries (§3.1 remarks, §4.3, §7 remarks).

* Basic algorithm (Mgr never fails): tolerates ``|Memb| - 1`` failures.
* Full algorithm: "only a minority of failures can be tolerated between
  successive system views"; a majority of concurrent failures blocks all
  progress ("no algorithm can make progress unless some recoveries occur")
  but never violates safety.
"""

from __future__ import annotations

from repro.analysis import tolerable_failures
from repro.core.service import MembershipCluster
from repro.sim.network import FixedDelay

from conftest import assert_safe, record_rows


def run_concurrent_crashes(n: int, k: int, majority_updates: bool = True):
    cluster = MembershipCluster.of_size(
        n, seed=0, delay_model=FixedDelay(1.0), majority_updates=majority_updates
    )
    cluster.start()
    for i in range(k):
        cluster.crash(f"p{n - 1 - i}", at=5.0 + 0.1 * i)
    cluster.settle(max_events=2_000_000)
    return cluster


def test_minority_tolerated_majority_blocks(benchmark):
    n = 9
    tau = tolerable_failures(n)  # 4

    def run():
        tolerated = run_concurrent_crashes(n, tau)
        blocked = run_concurrent_crashes(n, tau + 1)
        return tolerated, blocked

    tolerated, blocked = benchmark(run)
    assert_safe(tolerated, liveness=True)
    assert len(tolerated.agreed_view()) == n - tau
    assert_safe(blocked)  # safety holds...
    # ...but no progress was possible: no surviving member installed a view
    # (the coordinator could never assemble a majority).
    surviving_versions = {v for v, _ in blocked.views().values()}
    assert surviving_versions <= {0}
    record_rows(
        benchmark,
        "E10 (§4.3): concurrent-failure tolerance in a group of 9",
        "  concurrent crashes | outcome",
        [
            f"  {tau} (= tau)      | excluded all, final view of {n - tau}, GMP incl. liveness: PASS",
            f"  {tau + 1} (> tau)      | blocked (no view installed), safety: PASS",
        ],
    )


def test_tolerance_sweep(benchmark):
    """Sweep k from 1 to majority: progress iff k <= tau."""
    n = 7
    tau = tolerable_failures(n)

    def run():
        return {k: run_concurrent_crashes(n, k) for k in range(1, tau + 2)}

    clusters = benchmark(run)
    rows = []
    for k, cluster in sorted(clusters.items()):
        assert_safe(cluster)
        progressed = any(v > 0 for v, _ in cluster.views().values())
        expected = k <= tau
        assert progressed == expected
        rows.append(
            f"  k={k}  progress={'yes' if progressed else 'BLOCKED':7s} "
            f"(paper: {'tolerated' if expected else 'beyond tau'})"
        )
    record_rows(
        benchmark,
        f"E10b: concurrent-crash sweep in a group of {n} (tau = {tau})",
        "  crashes | outcome",
        rows,
    )


def test_basic_mode_tolerates_all_but_mgr(benchmark):
    """§3.1: the basic algorithm survives |Memb| - 1 failures."""
    n = 8

    def run():
        return run_concurrent_crashes(n, n - 1, majority_updates=False)

    cluster = benchmark(run)
    assert_safe(cluster, liveness=True)
    assert [m.name for m in cluster.agreed_view()] == ["p0"]
    record_rows(
        benchmark,
        "E10c (§3.1): basic algorithm under |Memb|-1 failures",
        "  crashes | outcome",
        [f"  {n - 1} of {n} | coordinator alone survives at version {cluster.agreed_version()}"],
    )
