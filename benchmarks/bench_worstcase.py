"""E5 — §7.2's worst case: successive failed reconfigurations, O(n^2).

Each new reconfigurer dies in its commit broadcast, forcing the next-ranked
survivor to start over; the paper bounds the total at O(|Sys|^2) across the
``tau`` tolerable failures.  We script exactly that cascade and check the
measured totals grow quadratically, tracking the closed form.
"""

from __future__ import annotations

from repro.analysis import breakdown, tolerable_failures, worst_case_total
from repro.core.service import MembershipCluster
from repro.sim.failures import crash_after_matching_sends, payload_type_is
from repro.sim.network import FixedDelay

from conftest import assert_safe, record_rows

SIZES = [6, 8, 12, 16, 20]


def run_cascade(n: int) -> int:
    """Crash p0, then crash each successive reconfigurer mid-commit."""
    cluster = MembershipCluster.of_size(n, seed=0, delay_model=FixedDelay(1.0))
    tau = tolerable_failures(n)
    # p1..p_{tau-1} each die after their first ReconfigCommit send; the
    # tau-th initiator survives and stabilises the group.
    for i in range(1, tau):
        crash_after_matching_sends(
            cluster.network,
            cluster.resolve(f"p{i}"),
            payload_type_is("ReconfigCommit"),
            after=1,
            detail=f"worst-case cascade victim {i}",
        )
    cluster.start()
    cluster.crash("p0", at=5.0)
    cluster.settle(max_events=2_000_000)
    assert_safe(cluster)
    return breakdown(cluster.trace).algorithm


def test_worst_case_cascade(benchmark):
    measured = benchmark(lambda: {n: run_cascade(n) for n in SIZES})
    rows = []
    for n in SIZES:
        paper = worst_case_total(n)
        rows.append(
            f"  n={n:3d}  tau={tolerable_failures(n):2d}   "
            f"paper O(n^2) total ~ {paper:5d}   measured = {measured[n]:5d}"
        )
    # Quadratic shape: scaling n by ~3x (6 -> 20) must scale cost by far
    # more than 3x (it would be ~3x if the cost were linear).
    assert measured[20] > 5 * measured[6]
    # And the measured totals track the closed form within a factor of two.
    for n in SIZES:
        assert measured[n] <= 2 * worst_case_total(n) + 4 * n
    record_rows(
        benchmark,
        "E5 (§7.2): tau successive failed reconfigurations (worst case)",
        "  group size | paper closed form | measured protocol messages",
        rows,
    )
